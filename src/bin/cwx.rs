//! `cwx` — command-line frontend for the ClusterWorX reproduction.
//!
//! ```text
//! cwx run      MANIFEST.toml [--seed X] [--out DIR] [--coverage FILE]
//!              [--snapshot-at SECS]... [--snapshots DIR] [--resume-from FILE]
//! cwx bisect   MANIFEST.toml [--seed X] [--out DIR]
//! cwx simulate --nodes 32 --secs 600 [--seed 42] [--store DIR] [--fan-fail 4@300]...
//! cwx clone    --nodes 100 --image-mb 650 [--loss 0.005] [--unicast]
//! cwx lite     [--ticks 5]
//! cwx history  --store DIR [--node N --monitor KEY] [--res raw|10s|5m|1h] [--chart]
//! cwx history  --store DIR --monitor KEY --agg p99 --window 1h [--group-by rack]
//! cwx chaos    list | run <scenario> [--seed X] [--toml FILE] [--verbose] [--report FILE]
//! cwx fed      sim [--clusters N --nodes M --secs S --seed X]
//! cwx fed      serve [--listen ADDR --secs S] | join [--head ADDR --cluster C --nodes N]
//! cwx ingest   serve [--listen ADDR --secs S --mode reactor|thread --lanes N --store DIR]
//! cwx ingest   drive [--addr ADDR --conns N --frames N --interval-ms MS --keys K]
//! cwx help
//! ```
//!
//! Exit codes are uniform across every subcommand: 0 success, 1 an
//! assertion or census check failed, 2 an invariant was violated,
//! 3 bad usage / bad manifest / operational error.

use clusterworx::world::schedule_fault;
use clusterworx::{dashboard, Cluster, ClusterConfig, LiteMonitor, WorkloadMix};
use cwx_clone::protocol::{run_clone, CloneConfig, RepairStrategy};
use cwx_hw::node::Fault;
use cwx_monitor::snapshot::Sensors;
use cwx_net::FAST_ETHERNET_BPS;
use cwx_util::time::{SimDuration, SimTime};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cwx run MANIFEST.toml [--seed X] [--out DIR] [--coverage FILE] [--snapshot-at SECS]... [--snapshots DIR] [--resume-from FILE]\n  cwx bisect MANIFEST.toml [--seed X] [--out DIR]\n  cwx simulate --nodes N --secs S [--seed X] [--store DIR] [--fan-fail NODE@SECS]... [--dump-history FILE --dump-node N]\n  cwx clone --nodes N --image-mb M [--loss P] [--unicast]\n  cwx lite [--ticks N]\n  cwx history --store DIR [--node N --monitor KEY] [--from S] [--to S] [--res raw|10s|5m|1h] [--chart]\n  cwx history --store DIR --monitor KEY --agg rate|avg|min|max|sum|count|p50|p95|p99 --window 10s|5m|1h|SECS [--group-by all|rack|node] [--node N] [--from S] [--to S] [--max-scan N]\n  cwx chaos list\n  cwx chaos run SCENARIO [--seed X] [--verbose] [--report FILE]\n  cwx chaos run --toml FILE [--seed X] [--verbose] [--report FILE]\n  cwx fed sim [--clusters N] [--nodes M] [--secs S] [--seed X] [--uplink SECS]\n  cwx fed serve [--listen ADDR] [--secs S] [--stale-after SECS]\n  cwx fed join [--head ADDR] [--cluster C] [--nodes N] [--secs S] [--interval-ms MS]\n  cwx ingest serve [--listen ADDR] [--secs S] [--mode reactor|thread] [--lanes N] [--nodes-per-group N] [--retention N] [--store DIR]\n  cwx ingest drive [--addr ADDR] [--conns N] [--frames N] [--interval-ms MS] [--keys K] [--threads T]\n  cwx help\n\nexit codes (uniform across subcommands):\n  0  success: every invariant held, every assertion passed\n  1  an assertion failed (manifest [assertions], federation census)\n  2  an invariant was violated\n  3  bad usage, bad manifest, or operational error"
    );
    std::process::exit(3);
}

/// Tiny flag parser: `--key value` pairs plus repeatable `--fan-fail`.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), args[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                eprintln!("unexpected argument: {a}");
                usage();
            }
        }
        Args { pairs, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn cmd_simulate(args: &Args) {
    let nodes: u32 = args.get("nodes", 16);
    let secs: u64 = args.get("secs", 600);
    let seed: u64 = args.get("seed", 42);
    let store_dir = args
        .pairs
        .iter()
        .find(|(k, _)| k == "store")
        .map(|(_, v)| std::path::PathBuf::from(v));
    if let Some(dir) = &store_dir {
        println!("history persists to {} (reruns recover it)", dir.display());
    }
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: nodes,
        seed,
        workload: WorkloadMix::Mixed,
        store_dir,
        ..Default::default()
    });
    for spec in args.all("fan-fail") {
        let Some((node, at)) = spec.split_once('@') else {
            eprintln!("--fan-fail wants NODE@SECS, got {spec}");
            usage();
        };
        let (node, at): (u32, u64) = match (node.parse(), at.parse()) {
            (Ok(n), Ok(a)) => (n, a),
            _ => usage(),
        };
        schedule_fault(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs(at),
            node,
            Fault::FanFailure,
        );
        println!("scheduled fan failure: node{node:03} at t={at}s");
    }
    sim.run_for(SimDuration::from_secs(secs));
    let w = sim.world();
    // persistently-backed history: trim WAL replay on the next open
    w.server.history().flush();
    println!("{}", dashboard::render(w, sim.now()));
    let st = w.server.stats();
    println!(
        "server: {} reports / {} values / {} B on the wire / {} decode errors",
        st.reports_rx, st.values_rx, st.bytes_rx, st.decode_errors
    );
    let action_log = w.action_log();
    if !action_log.is_empty() {
        println!("actions taken:");
        for a in &action_log {
            println!("  {}: node{:03} {:?}", a.time, a.node, a.action);
        }
    }
    for m in w.server.outbox() {
        println!("mail: {}", m.subject);
    }
    if let Some((_, path)) = args.pairs.iter().find(|(k, _)| k == "dump-history") {
        let node: u32 = args.get("dump-node", 0);
        let csv = w.server.history().export_node_csv(node);
        match std::fs::write(path, &csv) {
            Ok(()) => println!(
                "wrote {} bytes of node{node:03} history to {path}",
                csv.len()
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn cmd_clone(args: &Args) {
    let nodes: u32 = args.get("nodes", 100);
    let image_mb: u64 = args.get("image-mb", 650);
    let loss: f64 = args.get("loss", 0.005);
    let seed: u64 = args.get("seed", 42);
    let strategy = if args.flag("unicast") {
        RepairStrategy::Unicast
    } else {
        RepairStrategy::MulticastRoundRobin
    };
    let cfg = CloneConfig {
        image_bytes: image_mb << 20,
        strategy,
        ..CloneConfig::default()
    };
    println!(
        "cloning {image_mb} MiB to {nodes} nodes ({}), {:.2}% chunk loss...",
        if args.flag("unicast") {
            "unicast baseline"
        } else {
            "reliable multicast"
        },
        loss * 100.0
    );
    let r = run_clone(seed, nodes, FAST_ETHERNET_BPS, loss, cfg);
    println!(
        "stream {:.1}s | all data {:.1}s | all nodes up {:.1} min | wire {:.2} GB | {} repairs | {} failed",
        r.stream_secs,
        r.data_complete_secs,
        r.makespan_secs / 60.0,
        r.wire_bytes as f64 / 1e9,
        r.repair_chunks,
        r.failed_nodes
    );
}

fn cmd_lite(args: &Args) {
    let ticks: u64 = args.get("ticks", 5);
    let src = cwx_proc::source::RealProc::new();
    if !src.available() {
        eprintln!("no /proc on this host; `cwx lite` needs Linux");
        std::process::exit(3);
    }
    let mut lite = LiteMonitor::new(src, "localhost").expect("lite monitor");
    println!("ClusterWorX Lite on the local /proc ({ticks} ticks, 1 s apart):");
    let mut now = SimTime::ZERO;
    for i in 0..ticks {
        now += SimDuration::from_secs(1);
        std::thread::sleep(std::time::Duration::from_secs(1));
        let tick = lite
            .tick(
                now,
                Sensors {
                    fan_rpm: 6000.0,
                    power_watts: 120.0,
                    udp_echo_ok: true,
                    ..Default::default()
                },
            )
            .expect("tick");
        let load = lite
            .history()
            .latest(0, &cwx_monitor::monitor::MonitorKey::new("load.one"))
            .map(|s| s.value)
            .unwrap_or(f64::NAN);
        let memfree = lite
            .history()
            .latest(0, &cwx_monitor::monitor::MonitorKey::new("mem.free"))
            .map(|s| s.value)
            .unwrap_or(f64::NAN);
        println!(
            "  tick {i}: {} changed values | load {load:.2} | mem free {:.0} MB | {} events",
            tick.changed_values,
            memfree / 1024.0,
            tick.fired.len()
        );
    }
}

/// Parse a window spec: `10s`, `5m`, `1h`, or plain seconds.
fn parse_window(s: &str) -> Option<u64> {
    const SEC: u64 = 1_000_000_000;
    let (num, mult) = match s.as_bytes().last()? {
        b's' => (&s[..s.len() - 1], SEC),
        b'm' => (&s[..s.len() - 1], 60 * SEC),
        b'h' => (&s[..s.len() - 1], 3_600 * SEC),
        _ => (s, SEC),
    };
    let n: u64 = num.parse().ok()?;
    (n > 0).then_some(n * mult)
}

fn cmd_history(args: &Args) {
    use cwx_monitor::history::HistoryStore;
    use cwx_monitor::monitor::MonitorKey;
    use cwx_store::disk::{DiskStore, StoreConfig};
    use cwx_store::{Resolution, Store};

    let Some((_, dir)) = args.pairs.iter().find(|(k, _)| k == "store") else {
        eprintln!("`cwx history` needs --store DIR");
        usage();
    };
    // inspection must not create a store that isn't there
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("no store at {dir}");
        std::process::exit(3);
    }
    let store = match DiskStore::open(std::path::Path::new(dir), StoreConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not open store at {dir}: {e}");
            std::process::exit(3);
        }
    };
    let rec = store.recovery();
    println!(
        "store {dir}: {} samples in {} segments | recovery: {} WAL records replayed, {} torn bytes truncated, {} segments quarantined",
        store.total_samples(),
        rec.segments_loaded,
        rec.wal_records,
        rec.wal_truncated_bytes,
        rec.segments_quarantined
    );

    let monitor = args
        .pairs
        .iter()
        .rev()
        .find(|(k, _)| k == "monitor")
        .map(|(_, v)| v.clone());
    let node_arg = args
        .pairs
        .iter()
        .rev()
        .find(|(k, _)| k == "node")
        .map(|(_, v)| v.clone());
    // aggregation query path: `--agg p99 --window 1h [--group-by rack]`
    // runs through the admission-controlled query executor, answering
    // from the coarsest stored tier that satisfies the window
    if let Some((_, agg_s)) = args.pairs.iter().rev().find(|(k, _)| k == "agg") {
        use cwx_store::{AggFunc, QueryExecutor, QueryGroup, QueryLimits, QuerySpec};

        let Some(agg) = AggFunc::parse(agg_s) else {
            eprintln!("--agg wants rate|avg|min|max|sum|count|p50|p95|p99, got {agg_s}");
            usage();
        };
        let Some(monitor) = monitor else {
            eprintln!("`cwx history --agg` needs --monitor KEY");
            usage();
        };
        let window_s: String = args.get("window", "10s".into());
        let Some(window_nanos) = parse_window(&window_s) else {
            eprintln!("--window wants 10s / 5m / 1h / SECS, got {window_s}");
            usage();
        };
        let from = SimTime::ZERO + SimDuration::from_secs(args.get("from", 0u64));
        let to = match args.pairs.iter().rev().find(|(k, _)| k == "to") {
            Some((_, v)) => {
                SimTime::ZERO + SimDuration::from_secs(v.parse().unwrap_or_else(|_| usage()))
            }
            None => store
                .series()
                .iter()
                .filter(|(_, k)| *k == monitor)
                .filter_map(|(n, k)| store.latest(*n, k).map(|s| s.time))
                .max()
                .unwrap_or(SimTime::ZERO),
        };
        // group membership: the nodes that actually hold this monitor
        let mut nodes: Vec<u32> = store
            .series()
            .into_iter()
            .filter(|(_, k)| *k == monitor)
            .map(|(n, _)| n)
            .collect();
        if let Some(node_str) = &node_arg {
            let node: u32 = node_str.parse().unwrap_or_else(|_| usage());
            nodes.retain(|&n| n == node);
        }
        nodes.sort_unstable();
        nodes.dedup();
        let group_by: String = args.get("group-by", "all".into());
        let groups: Vec<QueryGroup> = match group_by.as_str() {
            "all" => vec![QueryGroup {
                key: "all".into(),
                nodes,
            }],
            // chassis topology: rack0 = nodes 0-9, rack1 = 10-19, ...
            "rack" => {
                let mut by_rack: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
                for n in nodes {
                    by_rack.entry(n / 10).or_default().push(n);
                }
                by_rack
                    .into_iter()
                    .map(|(r, nodes)| QueryGroup {
                        key: format!("rack{r}"),
                        nodes,
                    })
                    .collect()
            }
            "node" => nodes
                .into_iter()
                .map(|n| QueryGroup {
                    key: format!("node{n:03}"),
                    nodes: vec![n],
                })
                .collect(),
            other => {
                eprintln!("--group-by wants all, rack or node, got {other}");
                usage();
            }
        };
        let spec = QuerySpec {
            monitor,
            from,
            to,
            window_nanos,
            agg,
            groups,
            max_scan: args.get("max-scan", 0u64),
        };
        let exec = QueryExecutor::new(std::sync::Arc::new(store), QueryLimits::default());
        match exec.execute(spec) {
            Ok(r) => {
                eprintln!(
                    "served from {:?} tier | {} raw samples + {} buckets scanned | {} shards fell back",
                    r.stats.tier, r.stats.scanned_raw, r.stats.scanned_buckets, r.stats.fallback_shards
                );
                println!("group,window_start_secs,{},count", agg.name());
                for g in &r.groups {
                    for p in &g.points {
                        println!(
                            "{},{:.0},{},{}",
                            g.key,
                            p.start.as_secs_f64(),
                            p.value,
                            p.count
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("query failed: {e}");
                std::process::exit(3);
            }
        }
        return;
    }

    let (Some(monitor), Some(node_str)) = (monitor, node_arg) else {
        // no series selected: list what the store holds
        println!(
            "{:<8} {:<20} {:>9} {:>14}",
            "node", "monitor", "samples", "latest"
        );
        for (node, key) in store.series() {
            let n = store.range(node, &key, SimTime::ZERO, SimTime::MAX).len();
            let latest = store
                .latest(node, &key)
                .map(|s| format!("{:.3}", s.value))
                .unwrap_or_default();
            println!("node{node:03}  {key:<20} {n:>9} {latest:>14}");
        }
        return;
    };
    let node: u32 = node_str.parse().unwrap_or_else(|_| usage());
    let from = SimTime::ZERO + SimDuration::from_secs(args.get("from", 0u64));
    let to = match args.pairs.iter().rev().find(|(k, _)| k == "to") {
        Some((_, v)) => {
            SimTime::ZERO + SimDuration::from_secs(v.parse().unwrap_or_else(|_| usage()))
        }
        None => SimTime::MAX,
    };
    let key = MonitorKey::new(monitor.as_str());
    if args.flag("chart") {
        let to = if to == SimTime::MAX {
            store
                .latest(node, &monitor)
                .map(|s| s.time)
                .unwrap_or(SimTime::ZERO)
        } else {
            to
        };
        let history = HistoryStore::with_backend(Box::new(store));
        print!(
            "{}",
            dashboard::chart(&history, node, &key, from, to, 72, 12)
        );
        return;
    }
    match args.get::<String>("res", "raw".into()).as_str() {
        "raw" => {
            println!("time_secs,value");
            for s in store.range(node, &monitor, from, to) {
                println!("{:.3},{}", s.time.as_secs_f64(), s.value);
            }
        }
        tier @ ("10s" | "5m" | "1h") => {
            let res = match tier {
                "10s" => Resolution::TenSeconds,
                "5m" => Resolution::FiveMinutes,
                _ => Resolution::OneHour,
            };
            println!("bucket_start_secs,count,min,mean,max,last");
            for b in store.range_agg(node, &monitor, from, to, res) {
                println!(
                    "{:.0},{},{:.4},{:.4},{:.4},{:.4}",
                    b.start.as_secs_f64(),
                    b.count,
                    b.min,
                    b.mean,
                    b.max,
                    b.last
                );
            }
        }
        other => {
            eprintln!("--res wants raw, 10s, 5m or 1h, got {other}");
            usage();
        }
    }
}

/// Parse a manifest path plus the shared `--seed` override.
fn load_manifest(path: &str, args: &Args) -> cwx_scenario::Manifest {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("could not read {path}: {e}");
        std::process::exit(3);
    });
    let mut manifest = cwx_scenario::Manifest::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(3);
    });
    if let Some((_, seed)) = args.pairs.iter().rev().find(|(k, _)| k == "seed") {
        manifest.set_seed(seed.parse().unwrap_or_else(|_| usage()));
    }
    manifest
}

/// `cwx run MANIFEST.toml`: the unified scenario runtime. Executes the
/// manifest headless, writes `result.json` and `junit.xml` into
/// `--out` (default `.`), optionally merges this run into a
/// `--coverage` scoreboard file, and exits with the outcome code.
/// `--snapshot-at SECS` (repeatable, on top of the manifest's
/// `[checkpoints]`) captures world snapshots into `--snapshots DIR`
/// (default `--out`); `--resume-from FILE` replays and byte-verifies a
/// previously captured snapshot before continuing the run.
fn cmd_run(rest: &[String]) {
    use cwx_scenario::{run_scenario_with, RunOptions, Scoreboard};
    use cwx_util::snapshot::SnapshotFile;

    let (path, flag_args) = match rest.split_first() {
        Some((first, more)) if !first.starts_with("--") => (first.as_str(), more),
        _ => {
            eprintln!("`cwx run` wants a manifest path");
            usage();
        }
    };
    let args = Args::parse(flag_args);
    let manifest = load_manifest(path, &args);

    let mut opts = RunOptions::default();
    for v in args.all("snapshot-at") {
        match v.parse::<f64>() {
            Ok(t) => opts.snapshot_at.push(t),
            Err(_) => {
                eprintln!("--snapshot-at wants a time in simulated seconds, got {v:?}");
                std::process::exit(3);
            }
        }
    }
    if let Some((_, snap_path)) = args.pairs.iter().rev().find(|(k, _)| k == "resume-from") {
        let bytes = std::fs::read(snap_path).unwrap_or_else(|e| {
            eprintln!("could not read {snap_path}: {e}");
            std::process::exit(3);
        });
        let file = SnapshotFile::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("{snap_path}: {e}");
            std::process::exit(3);
        });
        opts.resume = Some(file);
    }

    println!("scenario `{}` from {path}", manifest.name());
    let r = run_scenario_with(&manifest, &opts).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(3);
    });
    for line in &r.summary {
        println!("{line}");
    }

    let out_dir = std::path::PathBuf::from(args.get::<String>("out", ".".into()));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("could not create {}: {e}", out_dir.display());
        std::process::exit(3);
    }
    for (name, content) in [("result.json", &r.result_json), ("junit.xml", &r.junit)] {
        let p = out_dir.join(name);
        match std::fs::write(&p, content) {
            Ok(()) => println!("wrote {}", p.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", p.display());
                std::process::exit(3);
            }
        }
    }
    if !r.snapshots.is_empty() {
        let snap_dir = std::path::PathBuf::from(
            args.get::<String>("snapshots", out_dir.display().to_string()),
        );
        if let Err(e) = std::fs::create_dir_all(&snap_dir) {
            eprintln!("could not create {}: {e}", snap_dir.display());
            std::process::exit(3);
        }
        for file in &r.snapshots {
            let t = file.t_nanos as f64 / 1e9;
            let p = snap_dir.join(format!("snapshot-t{t}.cwxsnap"));
            match std::fs::write(&p, file.encode()) {
                Ok(()) => println!(
                    "wrote {} ({} sections, world at t={t}s)",
                    p.display(),
                    file.sections.len()
                ),
                Err(e) => {
                    eprintln!("could not write {}: {e}", p.display());
                    std::process::exit(3);
                }
            }
        }
    }
    if let Some((_, cov_path)) = args.pairs.iter().rev().find(|(k, _)| k == "coverage") {
        // merge into an existing scoreboard so one file accumulates a
        // whole CI job's worth of runs
        let mut board = match std::fs::read_to_string(cov_path) {
            Ok(t) => Scoreboard::from_json(&t).unwrap_or_else(|e| {
                eprintln!("{cov_path}: not a coverage scoreboard ({e}); refusing to overwrite");
                std::process::exit(3);
            }),
            Err(_) => Scoreboard::new(),
        };
        board.record(&r.coverage);
        match std::fs::write(cov_path, board.to_json()) {
            Ok(()) => println!(
                "coverage -> {cov_path}: {} runs, {} cells covered, {} faults / {} states never exercised",
                board.runs(),
                board.cells(),
                board.uncovered_faults().len(),
                board.uncovered_states().len()
            ),
            Err(e) => {
                eprintln!("could not write {cov_path}: {e}");
                std::process::exit(3);
            }
        }
    }
    std::process::exit(r.outcome.exit_code());
}

/// `cwx bisect MANIFEST.toml`: binary-search a failing scenario's
/// fault schedule for the minimal chronological prefix that still
/// fails, print the culprit fault, and write `bisect.json` into
/// `--out` (default `.`). Exits 0 when the bisection completes, 3 when
/// there is nothing to bisect or a probe errors out.
fn cmd_bisect(rest: &[String]) {
    use cwx_scenario::bisect_scenario;

    let (path, flag_args) = match rest.split_first() {
        Some((first, more)) if !first.starts_with("--") => (first.as_str(), more),
        _ => {
            eprintln!("`cwx bisect` wants a manifest path");
            usage();
        }
    };
    let args = Args::parse(flag_args);
    let manifest = load_manifest(path, &args);
    println!(
        "bisecting `{}` from {path} ({} faults)",
        manifest.name(),
        manifest.fault_count()
    );
    let r = bisect_scenario(&manifest).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(3);
    });
    for line in r.summary() {
        println!("{line}");
    }
    let out_dir = std::path::PathBuf::from(args.get::<String>("out", ".".into()));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("could not create {}: {e}", out_dir.display());
        std::process::exit(3);
    }
    let p = out_dir.join("bisect.json");
    match std::fs::write(&p, r.to_json(&manifest.fault_schedule())) {
        Ok(()) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", p.display());
            std::process::exit(3);
        }
    }
}

fn cmd_chaos(rest: &[String]) {
    use cwx_chaos::{scenario, SCENARIO_NAMES};
    use cwx_scenario::{run_scenario, Manifest, Mode, Outcome};

    match rest.split_first().map(|(s, t)| (s.as_str(), t)) {
        Some(("list", _)) => {
            println!(
                "{:<18} {:>6} {:>8} {:>8} {:>7}",
                "scenario", "nodes", "active_s", "settle_s", "faults"
            );
            for name in SCENARIO_NAMES.iter().copied().chain(["soak"]) {
                let c = scenario(name).expect("canned scenario");
                println!(
                    "{:<18} {:>6} {:>8.0} {:>8.0} {:>7}",
                    c.name,
                    c.n_nodes,
                    c.duration_secs,
                    c.settle_secs,
                    c.events.len()
                );
            }
        }
        Some(("run", tail)) => {
            // peel an optional bare scenario name before flag parsing
            // (the flag parser rejects bare words)
            let (name, flag_args) = match tail.split_first() {
                Some((first, more)) if !first.starts_with("--") => (Some(first.as_str()), more),
                _ => (None, tail),
            };
            let args = Args::parse(flag_args);
            // this subcommand is a thin shim: both entry points lower
            // into a scenario manifest and ride the `cwx run` runtime
            let mut manifest = match (name, args.pairs.iter().find(|(k, _)| k == "toml")) {
                (Some(n), None) => Manifest::from_campaign(&scenario(n).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {n} (try `cwx chaos list`)");
                    std::process::exit(3);
                })),
                (None, Some((_, path))) => {
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("could not read {path}: {e}");
                        std::process::exit(3);
                    });
                    let m = Manifest::parse(&text).unwrap_or_else(|e| {
                        eprintln!("{path}: {e}");
                        std::process::exit(3);
                    });
                    if !matches!(m.mode, Mode::Chaos(_)) {
                        eprintln!("{path} is a federation manifest; run it with `cwx run {path}`");
                        std::process::exit(3);
                    }
                    m
                }
                _ => {
                    eprintln!("`cwx chaos run` wants a scenario name or --toml FILE");
                    usage();
                }
            };
            if let Some((_, seed)) = args.pairs.iter().rev().find(|(k, _)| k == "seed") {
                manifest.set_seed(seed.parse().unwrap_or_else(|_| usage()));
            }
            let campaign = manifest.campaign().expect("chaos manifest");
            println!(
                "campaign {} | seed {} | {} nodes | {} faults over {:.0}s (+{:.0}s settle)",
                campaign.name,
                campaign.seed,
                campaign.n_nodes,
                campaign.events.len(),
                campaign.duration_secs,
                campaign.settle_secs
            );
            if args.flag("verbose") {
                for ev in &campaign.events {
                    println!("  t={:>7.1}s  {}", ev.at_secs, ev.kind);
                }
            }
            let r = run_scenario(&manifest);
            for line in &r.summary {
                println!("{line}");
            }
            // --report PATH always writes result.json there; a failing
            // run writes invariant_report.json even without the flag,
            // so CI never has to grep human output
            let report_path = args
                .pairs
                .iter()
                .rev()
                .find(|(k, _)| k == "report")
                .map(|(_, v)| v.clone());
            let write_report = |path: &str| match std::fs::write(path, &r.result_json) {
                Ok(()) => println!("wrote machine-readable report to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            };
            if let Some(path) = &report_path {
                write_report(path);
            }
            if r.outcome != Outcome::Pass && report_path.is_none() {
                write_report("invariant_report.json");
            }
            std::process::exit(r.outcome.exit_code());
        }
        _ => usage(),
    }
}

fn cmd_fed(rest: &[String]) {
    use clusterworx::{RealTimeConfig, RealTimeDeployment, RetryPolicy};
    use cwx_fed::HeadServer;

    let Some((sub, tail)) = rest.split_first() else {
        eprintln!("`cwx fed` wants sim, serve or join");
        usage();
    };
    let args = Args::parse(tail);
    match sub.as_str() {
        // deterministic in-process federation: a thin shim lowering
        // the legacy flags into a scenario manifest, so `fed sim` and
        // `cwx run` share one runtime (the census check becomes a
        // census_match assertion -> exit 1 on mismatch)
        "sim" => {
            let clusters: u16 = args.get("clusters", 4);
            let nodes: u32 = args.get("nodes", 16);
            let secs: u64 = args.get("secs", 600);
            let seed: u64 = args.get("seed", 42);
            let mut manifest =
                cwx_scenario::Manifest::federation("fed-sim", clusters, nodes, seed, secs as f64);
            if let cwx_scenario::Mode::Federation(spec) = &mut manifest.mode {
                spec.uplink_secs = args.get("uplink", 10u64) as f64;
            }
            let r = cwx_scenario::run_scenario(&manifest);
            for line in &r.summary {
                println!("{line}");
            }
            std::process::exit(r.outcome.exit_code());
        }
        // realtime head process: accept sub-servers over TCP
        "serve" => {
            let listen: String = args.get("listen", "127.0.0.1:7411".to_string());
            let secs: u64 = args.get("secs", 60);
            let stale: u64 = args.get("stale-after", 10);
            let head = HeadServer::start(
                &listen,
                SimDuration::from_secs(stale),
                RetryPolicy::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("could not bind {listen}: {e}");
                std::process::exit(3);
            });
            println!("federation head on {} for {}s", head.addr(), secs);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
            while std::time::Instant::now() < deadline {
                std::thread::sleep(
                    std::time::Duration::from_secs(5)
                        .min(deadline.saturating_duration_since(std::time::Instant::now())),
                );
                let now = head.now();
                let h = head.head();
                let guard = h.lock().unwrap();
                let fleet = guard.aggregate(now);
                println!(
                    "t={:>5.0}s  {} clusters ({} stale) | {} nodes | up {} | {} alarms",
                    now.as_secs_f64(),
                    fleet.clusters,
                    fleet.stale,
                    fleet.total_nodes,
                    fleet.counts.up,
                    guard.stats().alarms_rx
                );
            }
            let h = head.head();
            let hash = h.lock().unwrap().audit_hash();
            println!("final audit hash {hash:016x}");
            head.shutdown();
        }
        // realtime sub-server process: run a local deployment and
        // export it to a head
        "join" => {
            let head_addr: String = args.get("head", "127.0.0.1:7411".to_string());
            let cluster: u16 = args.get("cluster", 0);
            let nodes: u32 = args.get("nodes", 8);
            let secs: u64 = args.get("secs", 60);
            let interval_ms: u64 = args.get("interval-ms", 1000);
            println!("cluster {cluster}: {nodes} nodes joining head {head_addr} for {secs}s");
            let dep = RealTimeDeployment::start(RealTimeConfig {
                n_nodes: nodes,
                ..RealTimeConfig::default()
            });
            let stop = std::sync::atomic::AtomicBool::new(false);
            let stats = std::thread::scope(|s| {
                let stopper = s.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_secs(secs));
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
                let r = cwx_fed::join_loop(
                    &dep,
                    cluster,
                    &head_addr,
                    std::time::Duration::from_millis(interval_ms),
                    &stop,
                );
                let _ = stopper.join();
                r
            })
            .unwrap_or_else(|e| {
                eprintln!("could not reach head at {head_addr}: {e}");
                std::process::exit(3);
            });
            let (sent, ingested) = dep.shutdown();
            println!(
                "done: {} exports | {} commands applied | {} reconnects | local stack {} sent / {} ingested",
                stats.exports, stats.commands, stats.reconnects, sent, ingested
            );
        }
        other => {
            eprintln!("unknown fed subcommand: {other}");
            usage();
        }
    }
}

fn cmd_ingest(rest: &[String]) {
    use clusterworx::actions::ControlPlane;
    use clusterworx::ingest::{drive, IngestConfig, IngestMode, IngestServer, LoadConfig};
    use clusterworx::server::Server;
    use cwx_store::disk::{DiskStore, StoreConfig};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let Some((sub, tail)) = rest.split_first() else {
        eprintln!("`cwx ingest` wants serve or drive");
        usage();
    };
    let args = Args::parse(tail);
    match sub.as_str() {
        // realtime ingest front door: accept CWB1 agent streams
        "serve" => {
            let listen: String = args.get("listen", "127.0.0.1:7420".to_string());
            let secs: u64 = args.get("secs", 60);
            let mode = match args.get::<String>("mode", "reactor".into()).as_str() {
                "thread" | "thread-per-conn" => IngestMode::ThreadPerConn,
                _ => IngestMode::Reactor,
            };
            let lanes: usize = args.get("lanes", 4);
            let nodes_per_group: u32 = args.get("nodes-per-group", 10);
            let retention: usize = args.get("retention", 64);
            let _ = cwx_net::reactor::raise_nofile_limit();
            let store = args
                .pairs
                .iter()
                .find(|(k, _)| k == "store")
                .map(|(_, dir)| {
                    let cfg = StoreConfig {
                        n_shards: lanes,
                        nodes_per_group,
                        ..StoreConfig::default()
                    };
                    Arc::new(
                        DiskStore::open(std::path::Path::new(dir), cfg).unwrap_or_else(|e| {
                            eprintln!("could not open store {dir}: {e}");
                            std::process::exit(3);
                        }),
                    )
                });
            let server = Arc::new(parking_lot::RwLock::new(Server::new(
                "ingest",
                SimDuration::from_secs(5),
                retention,
                SimDuration::from_secs(3600),
            )));
            let control = Arc::new(parking_lot::Mutex::new(ControlPlane::new(4096)));
            let ingest = IngestServer::start(
                IngestConfig {
                    listen,
                    mode,
                    n_lanes: lanes,
                    nodes_per_group,
                    ..IngestConfig::default()
                },
                server,
                store,
                control,
                Instant::now(),
            )
            .unwrap_or_else(|e| {
                eprintln!("could not start ingest server: {e}");
                std::process::exit(3);
            });
            println!(
                "ingest server ({}) on {} for {}s",
                match mode {
                    IngestMode::Reactor => "reactor",
                    IngestMode::ThreadPerConn => "thread-per-conn",
                },
                ingest.addr(),
                secs
            );
            let deadline = Instant::now() + Duration::from_secs(secs);
            while Instant::now() < deadline {
                std::thread::sleep(
                    Duration::from_secs(5).min(deadline.saturating_duration_since(Instant::now())),
                );
                let s = ingest.stats();
                println!(
                    "conns {} (accepted {}, evicted {}) | frames {} | samples {} | bp {} | decode errs {}",
                    s.active,
                    s.accepted,
                    s.evicted,
                    s.frames,
                    s.samples,
                    s.backpressure_trips,
                    s.decode_errors
                );
            }
            let lat = ingest.latency();
            let total = ingest.shutdown();
            println!(
                "done: {} reports ingested | ingest latency p50 {:.0}us p99 {:.0}us max {:.0}us",
                total, lat.p50_us, lat.p99_us, lat.max_us
            );
        }
        // synthetic agent fleet: stream frames at a fixed cadence
        "drive" => {
            let addr: String = args.get("addr", "127.0.0.1:7420".to_string());
            let conns: usize = args.get("conns", 100);
            let frames: u64 = args.get("frames", 10);
            let interval_ms: u64 = args.get("interval-ms", 1000);
            let keys: usize = args.get("keys", 8);
            let threads: usize = args.get("threads", 8);
            let _ = cwx_net::reactor::raise_nofile_limit();
            let stats = drive(LoadConfig {
                addr: addr.clone(),
                conns,
                frames_per_conn: frames,
                interval: Duration::from_millis(interval_ms),
                writer_threads: threads,
                keys,
                ..LoadConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("could not reach ingest server at {addr}: {e}");
                std::process::exit(3);
            });
            println!(
                "done: {} connected | {} frames / {} samples sent | {} write errors",
                stats.connected, stats.frames_sent, stats.samples_sent, stats.write_errors
            );
        }
        other => {
            eprintln!("unknown ingest subcommand: {other}");
            usage();
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    if cmd == "run" {
        return cmd_run(rest);
    }
    if cmd == "bisect" {
        return cmd_bisect(rest);
    }
    if cmd == "chaos" {
        return cmd_chaos(rest);
    }
    if cmd == "fed" {
        return cmd_fed(rest);
    }
    if cmd == "ingest" {
        return cmd_ingest(rest);
    }
    let args = Args::parse(rest);
    match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "clone" => cmd_clone(&args),
        "lite" => cmd_lite(&args),
        "history" => cmd_history(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}
