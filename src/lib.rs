//! Facade crate for the ClusterWorX reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests in this repository (and downstream users who just
//! want "the whole system") can depend on a single crate.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! full system inventory and experiment index.

pub use clusterworx;
pub use cwx_bios as bios;
pub use cwx_clone as clone;
pub use cwx_events as events;
pub use cwx_hw as hw;
pub use cwx_icebox as icebox;
pub use cwx_monitor as monitor;
pub use cwx_net as net;
pub use cwx_proc as procfs;
pub use cwx_util as util;
pub use slurm_lite as slurm;
