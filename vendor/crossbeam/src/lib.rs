//! Offline stand-in for `crossbeam`.
//!
//! Implements the `crossbeam::channel` subset the workspace uses: MPMC
//! `bounded`/`unbounded` channels with blocking `send`/`recv`,
//! disconnect-on-last-drop semantics and cloneable senders/receivers.
//! Built on `Mutex` + two `Condvar`s; slower than real crossbeam under
//! contention, but semantically equivalent for the report-ingest rates
//! this repository drives through it.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like the real crate.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message like the real crate.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message like the real crate.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout.
        Timeout(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half. Clone freely; the channel disconnects when the
    /// last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Clone freely (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Errors only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails immediately when the bounded channel
        /// is full instead of waiting for a receiver.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send, blocking at most `timeout` while the bounded channel
        /// stays full. Disconnect wins over timeout.
        pub fn send_timeout(
            &self,
            msg: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        st = self
                            .shared
                            .not_full
                            .wait_timeout(st, deadline - now)
                            .unwrap()
                            .0;
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// True when a bounded channel is at capacity right now.
        pub fn is_full(&self) -> bool {
            let st = self.shared.state.lock().unwrap();
            match st.cap {
                Some(cap) => st.queue.len() >= cap,
                None => false,
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty. Errors only
        /// when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive, blocking at most `timeout` while the channel stays
        /// empty. Disconnect (empty + no senders) wins over timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap()
                    .0;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // unblock senders so they observe the disconnect
                self.shared.not_full.notify_all();
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `cap` messages; `send` blocks when full
    /// (backpressure). `cap == 0` is rounded up to 1 (the stand-in has
    /// no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }
}

/// Scoped threads (the `crossbeam::thread` subset the workspace uses).
///
/// Implements `scope`/`Scope::spawn`/`ScopedJoinHandle` over
/// `std::thread::scope`. Like the real crate, `scope` returns `Err`
/// with the panic payload when any unjoined child panicked, instead of
/// propagating the panic.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle into a running scope; spawn borrows-capturing threads
    /// through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Owns a spawned scoped thread until joined (or until the scope
    /// ends, which joins it implicitly).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (`Err`
        /// if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing `scope` call; the
        /// closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope that joins every spawned thread before
    /// returning. Returns `Err` if `f` or any child thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the receiver drains one
            true
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!t.is_finished(), "send should be blocked on a full channel");
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(t.join().unwrap());
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn send_errors_when_receiver_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn mpmc_many_to_many() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}

#[cfg(test)]
mod thread_tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut parts = vec![0u64; 8];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = parts
                .chunks_mut(3)
                .enumerate()
                .map(|(k, chunk)| {
                    s.spawn(move |_| {
                        for v in chunk.iter_mut() {
                            *v = k as u64 + 1;
                        }
                        chunk.iter().sum::<u64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, parts.iter().sum::<u64>());
        assert_eq!(parts, vec![1, 1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn panicked_child_surfaces_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("shard exploded"));
        });
        assert!(r.is_err());
    }
}
