//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros and `black_box` — measuring with `std::time::Instant` and
//! printing a mean time (and derived throughput) per benchmark. No
//! statistics, plots or baselines; the numbers are indicative, which is
//! all the offline container can support.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id that is only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark id.
pub trait IntoBenchmarkId {
    /// Convert into the canonical id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher<'a> {
    measurement: Duration,
    warm_up: Duration,
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time `routine`, first warming up, then running as many
    /// iterations as fit the configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up and calibration: how many iterations fit the window?
        let warm_deadline = Instant::now() + self.warm_up.min(Duration::from_millis(300));
        let mut calibrated = 0u64;
        let cal_start = Instant::now();
        loop {
            black_box(routine());
            calibrated += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = cal_start.elapsed().as_secs_f64() / calibrated as f64;
        let window = self.measurement.min(Duration::from_secs(2)).as_secs_f64();
        let iters = ((window / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some((start.elapsed(), iters));
    }
}

fn report(id: &str, result: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = result else {
        println!("{id:<52} (no measurement)");
        return;
    };
    let per_iter_ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
    let time = if per_iter_ns >= 1e9 {
        format!("{:.3} s", per_iter_ns / 1e9)
    } else if per_iter_ns >= 1e6 {
        format!("{:.3} ms", per_iter_ns / 1e6)
    } else if per_iter_ns >= 1e3 {
        format!("{:.3} us", per_iter_ns / 1e3)
    } else {
        format!("{per_iter_ns:.1} ns")
    };
    let thrpt = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!(
                "  thrpt: {:.1} MiB/s",
                b as f64 / (per_iter_ns / 1e9) / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.0} elem/s", n as f64 / (per_iter_ns / 1e9))
        }
        None => String::new(),
    };
    println!("{id:<52} time: {time}/iter{thrpt}  ({iters} iters)");
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepted for CLI compatibility; the stand-in ignores argv.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the sample count (accepted, unused: the stand-in times one
    /// calibrated batch).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("── bench group: {name} ──");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_id();
        let mut result = None;
        f(&mut Bencher {
            measurement: self.measurement,
            warm_up: self.warm_up,
            result: &mut result,
        });
        report(&id, result, None);
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Declare the work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_id();
        let mut result = None;
        f(&mut Bencher {
            measurement: self.criterion.measurement,
            warm_up: self.criterion.warm_up,
            result: &mut result,
        });
        report(&id, result, self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into_id();
        let mut result = None;
        f(
            &mut Bencher {
                measurement: self.criterion.measurement,
                warm_up: self.criterion.warm_up,
                result: &mut result,
            },
            input,
        );
        report(&id, result, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a group runner function over one or more targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        targets = target
    }

    #[test]
    fn group_runs_to_completion() {
        quick();
    }
}
