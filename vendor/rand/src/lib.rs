//! Offline stand-in for the `rand` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! small slice of the `rand` 0.9 API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), the [`Rng`] extension trait
//! with `random`/`random_range`/`random_bool`, and [`SeedableRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream real `StdRng` uses, but every consumer in this
//! workspace only requires a *deterministic, well-distributed* stream
//! from a `u64` seed, which this provides. Swapping the real crate back
//! in requires no source changes.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the usual
    /// convention, and the only constructor this workspace calls).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's domain; `f64` is uniform in `[0, 1)`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = <u128 as StandardSample>::sample(rng) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = <u128 as StandardSample>::sample(rng) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + <f64 as StandardSample>::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The namespace the real crate exposes generators under.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.random_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = r.random_range(5i64..=5);
            assert_eq!(b, 5);
            let c = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&c));
        }
    }

    #[test]
    fn mean_of_f64_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
