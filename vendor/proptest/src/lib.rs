//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the `proptest` 1.x API this workspace's
//! property tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`Strategy`] implementations for numeric
//! ranges, tuples, `any::<T>()`, simple `[class]{m,n}` string patterns
//! and `collection::vec`, plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed, and failing cases are **not shrunk** —
//! the failing case index and seed are printed instead so a failure is
//! reproducible. That preserves what the tests check (properties hold
//! over randomized inputs) without the real crate's machinery.

use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // the real default is 256; 64 keeps the full offline suite quick
        // while still exercising each property broadly
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u128) -> u128 {
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n.max(1)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Marker for types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // finite, wide-ranged floats (the real crate also generates
        // specials; tests here only need broad finite coverage)
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * 10f64.powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // printable ASCII keeps generated text debuggable
        (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

/// String pattern strategy: supports literals, `[a-z0-9 :]` classes and
/// `{n}` / `{m,n}` quantifiers — the grammar subset used in this
/// workspace. Unsupported regex syntax is treated as literal characters.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // one atom: a class or a literal
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..].iter().position(|&c| c == ']').map(|p| i + p);
                let Some(close) = close else {
                    out.push(chars[i]);
                    i += 1;
                    continue;
                };
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.extend(char::from_u32(c));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // optional quantifier
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
                match close {
                    Some(close) => {
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => {
                                (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0))
                            }
                            None => {
                                let n = body.trim().parse().unwrap_or(1);
                                (n, n)
                            }
                        }
                    }
                    None => (1usize, 1usize),
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u128) as usize;
            for _ in 0..n {
                if !alphabet.is_empty() {
                    let pick = rng.below(alphabet.len() as u128) as usize;
                    out.push(alphabet[pick]);
                }
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element, size)` — vectors with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run `cases` randomized executions of `body`. Used by the
/// [`proptest!`] macro expansion; not public API in the real crate.
pub fn run_cases(config: &ProptestConfig, test_path: &str, mut body: impl FnMut(&mut TestRng)) {
    // per-test deterministic base seed so failures reproduce, with an
    // env override for exploring other streams
    let mut base: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        base = (base ^ b as u64).wrapping_mul(0x100000001b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            base = v;
        }
    }
    for case in 0..config.cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = TestRng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest stand-in: property `{test_path}` failed at case {case}/{} \
                 (seed {seed}; rerun with PROPTEST_SEED={seed} to isolate)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Assert inside a property (stand-in: plain `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `arg in strategy` binding is sampled per
/// case and the body run [`ProptestConfig::cases`] times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                $crate::run_cases(&cfg, concat!(module_path!(), "::", stringify!($name)), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                });
            }
        )+
    };
    ($($tt:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($tt)+
        }
    };
}

/// The glob import the real crate recommends.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn tuples_and_patterns(pair in (0u32..4, 0u32..4), s in "[a-c]{2,5}") {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(_x in any::<bool>()) {
            // runs without error; case count is covered by determinism below
            prop_assert!(true);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = super::TestRng::new(9);
        let mut b = super::TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
