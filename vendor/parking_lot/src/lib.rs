//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: `lock()`/`read()`/`write()` return guards directly
//! (no `Result`), and a poisoned lock is recovered rather than
//! propagated — matching `parking_lot`'s no-poisoning semantics closely
//! enough for every call site here.

use std::sync;

/// Mutual exclusion lock with infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(5));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot has no poisoning; neither do we
        assert_eq!(*m.lock(), 0);
    }
}
