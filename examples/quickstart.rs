//! Quickstart: build a simulated 32-node cluster, let ClusterWorX manage
//! it for ten simulated minutes, and look around.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clusterworx::{dashboard, Cluster, ClusterConfig, WorkloadMix};
use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::SimDuration;

fn main() {
    // a 32-node cluster with a realistic workload mix, LinuxBIOS
    // firmware and the monitoring pipeline at product settings
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 32,
        seed: 2003,
        workload: WorkloadMix::Mixed,
        ..Default::default()
    });

    // ten simulated minutes: nodes power on (sequenced through the ICE
    // Boxes), boot, start their agents, and report
    sim.run_for(SimDuration::from_secs(600));

    let now = sim.now();
    let world = sim.world();

    println!("{}", dashboard::render(world, now));

    let stats = world.server.stats();
    println!(
        "server: {} reports, {} values, {} wire bytes, {} decode errors",
        stats.reports_rx, stats.values_rx, stats.bytes_rx, stats.decode_errors
    );

    // historical graphing: chart one node's CPU over the run
    let key = MonitorKey::new("cpu.util_pct");
    let buckets =
        world
            .server
            .history()
            .downsample(5, &key, cwx_util::time::SimTime::ZERO, now, 12);
    println!(
        "\nnode005 cpu.util_pct history ({} buckets):",
        buckets.len()
    );
    for b in buckets {
        let bar = "#".repeat((b.mean / 4.0) as usize);
        println!(
            "  t={:>6.0}s  mean={:>5.1}%  {bar}",
            b.start.as_secs_f64(),
            b.mean
        );
    }

    // compare performance between nodes (paper: "compare performance
    // between nodes")
    let mut rows = world.server.history().latest_across_nodes(&key);
    rows.sort_by(|a, b| b.1.value.partial_cmp(&a.1.value).unwrap());
    println!("\nbusiest nodes right now:");
    for (node, sample) in rows.iter().take(5) {
        println!("  node{node:03}: {:.1}% cpu", sample.value);
    }

    println!("\nemails sent: {}", world.server.outbox().len());
    assert_eq!(world.up_count(), 32, "every node should be up");
}
