//! The full loop: SLURM-lite schedules jobs onto the managed cluster,
//! the jobs physically load the nodes, ClusterWorX watches it all, and
//! when hardware dies mid-job the two systems cooperate — the event
//! engine powers the node down, the scheduler requeues the work.
//!
//! ```text
//! cargo run --release --example managed_workload
//! ```

use clusterworx::scheduler::{attach_scheduler, submit_job};
use clusterworx::world::schedule_fault;
use clusterworx::{dashboard, Cluster, ClusterConfig, Groups, WorkloadMix};
use cwx_hw::node::Fault;
use cwx_util::time::SimDuration;
use slurm_lite::{JobRequest, JobState, SchedulerKind};

fn main() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 16,
        seed: 1234,
        workload: WorkloadMix::Idle, // jobs provide the load
        ..Default::default()
    });
    attach_scheduler(
        &mut sim,
        SchedulerKind::Backfill,
        SimDuration::from_secs(10),
    );
    sim.run_for(SimDuration::from_secs(120)); // boot

    // a small queue: one wide job, several small ones
    let jobs = vec![
        ("alice", 8, 7200, 5400),
        ("bob", 2, 3600, 1800),
        ("carol", 4, 3600, 2400),
        ("dave", 2, 1800, 900),
        ("erin", 8, 7200, 6000),
    ];
    for (user, nodes, limit, runtime) in jobs {
        let id = submit_job(&mut sim, JobRequest::batch(user, nodes, limit, runtime)).unwrap();
        println!("submitted {id} ({user}, {nodes} nodes, {runtime}s)");
    }
    sim.run_for(SimDuration::from_secs(300));

    println!("\nafter 5 minutes:");
    println!("{}", dashboard::render(sim.world(), sim.now()));
    {
        let ctl = &sim.world().scheduler.as_ref().unwrap().controller;
        for j in ctl.jobs() {
            println!(
                "  {}: {:?}{} on {:?}",
                j.id,
                j.state,
                if j.backfilled { " [backfilled]" } else { "" },
                j.allocation
            );
        }
    }

    // hardware failure mid-job
    let victim = {
        let ctl = &sim.world().scheduler.as_ref().unwrap().controller;
        ctl.jobs()
            .find(|j| j.state == JobState::Running)
            .unwrap()
            .allocation[0]
    };
    println!("\ninjecting fan failure on allocated node{victim:03}...");
    let at = sim.now() + SimDuration::from_secs(10);
    schedule_fault(&mut sim, at, victim, Fault::FanFailure);
    sim.run_for(SimDuration::from_secs(400));

    let w = sim.world();
    let ctl = &w.scheduler.as_ref().unwrap().controller;
    println!(
        "scheduler stats: {} submitted, {} completed, {} node-failed (requeued), queue {}",
        ctl.stats().submitted,
        ctl.stats().completed,
        ctl.stats().node_failed,
        ctl.queue_len()
    );
    for mail in w.server.outbox() {
        println!("mail: {}", mail.subject);
    }

    // group view of the damage
    let groups = Groups::by_rack(16);
    for name in ["rack0", "rack1"] {
        let s = clusterworx::groups::summarize(w, &groups, name);
        println!(
            "{}: {}/{} up, mean cpu {:.0}%, max temp {:.1} C",
            s.name, s.up, s.members, s.mean_cpu_pct, s.max_temp_c
        );
    }

    assert!(ctl.stats().node_failed >= 1);
    assert!(w
        .server
        .outbox()
        .iter()
        .any(|m| m.event == "cpu-fan-failure"));
    println!("\njob requeued, node contained, administrator informed — the loop closed.");
}
