//! Disk cloning (paper §4): build an image in the Image Manager, push it
//! to a cluster with reliable multicast, and compare against the unicast
//! baseline that multicast replaced.
//!
//! ```text
//! cargo run --release --example cluster_cloning
//! ```

use cwx_bios::Firmware;
use cwx_clone::image::{ImageKind, ImageManager};
use cwx_clone::protocol::{run_clone, CloneConfig, RepairStrategy};
use cwx_net::FAST_ETHERNET_BPS;

fn main() {
    // the Image Manager: prebuilt images plus a custom build
    let mut mgr = ImageManager::with_prebuilt();
    println!("prebuilt images:");
    for img in mgr.list() {
        println!(
            "  {:>12}  {:?}  {:>5} MiB  v{}  checksum {:016x}",
            img.name,
            img.kind,
            img.size_bytes >> 20,
            img.version,
            img.checksum
        );
    }
    let custom = mgr.build(
        "rh73-mpi",
        ImageKind::HardDisk,
        720 << 20,
        &["kernel-2.4.18", "mpich-1.2.4", "pbs-mom"],
    );
    // a kernel update bumps the version — "update the kernel on all
    // nodes" then reclone
    mgr.update(custom, &["kernel-2.4.20"], 12 << 20).unwrap();
    let image = mgr.get(custom).unwrap();
    println!(
        "\ncustom image: {} v{} ({} MiB)",
        image.name,
        image.version,
        image.size_bytes >> 20
    );

    let n = 100;
    let cfg = CloneConfig {
        image_bytes: image.size_bytes,
        chunk_bytes: 1 << 20,
        pace_bps: 4 << 20,
        strategy: RepairStrategy::MulticastRoundRobin,
        firmware: Firmware::LinuxBios,
        ..CloneConfig::default()
    };

    println!(
        "\ncloning {} MiB to {n} nodes over one fast Ethernet (0.5% chunk loss)...",
        image.size_bytes >> 20
    );
    let mc = run_clone(42, n, FAST_ETHERNET_BPS, 0.005, cfg.clone());
    println!(
        "  multicast: stream {:.1}s, all data at {:.1}s, all nodes rebooted at {:.1} min",
        mc.stream_secs,
        mc.data_complete_secs,
        mc.makespan_secs / 60.0
    );
    println!(
        "  wire: {:.2} GB, {} repair chunks, {} polls, {} failed nodes",
        mc.wire_bytes as f64 / 1e9,
        mc.repair_chunks,
        mc.polls,
        mc.failed_nodes
    );

    println!("\nsame push with per-node unicast (the pre-multicast baseline)...");
    let uni = run_clone(
        42,
        n,
        FAST_ETHERNET_BPS,
        0.005,
        CloneConfig {
            strategy: RepairStrategy::Unicast,
            ..cfg
        },
    );
    println!(
        "  unicast: all nodes rebooted at {:.1} min, wire {:.2} GB",
        uni.makespan_secs / 60.0,
        uni.wire_bytes as f64 / 1e9
    );

    println!(
        "\nmulticast wins {:.1}x on completion time and {:.1}x on wire bytes",
        uni.makespan_secs / mc.makespan_secs,
        uni.wire_bytes as f64 / mc.wire_bytes as f64
    );
    assert!(uni.makespan_secs > mc.makespan_secs);
}
