//! SLURM-lite (paper §6): submit a synthetic workload to a 64-node
//! cluster under three scheduling policies, then demonstrate controller
//! failover.
//!
//! ```text
//! cargo run --release --example job_scheduling
//! ```

use cwx_util::rng::rng;
use slurm_lite::sched::maui_like_priority;
use slurm_lite::trace::{generate, run_trace, TraceConfig};
use slurm_lite::{Controller, JobRequest, SchedulerKind};

fn main() {
    let cfg = TraceConfig {
        cluster_nodes: 64,
        mean_interarrival_secs: 45.0,
        ..TraceConfig::default()
    };
    let trace = generate(&mut rng(2003), &cfg, 500);
    println!(
        "generated {} jobs (Poisson arrivals, log-uniform runtimes)",
        trace.len()
    );

    for (label, kind, maui) in [
        ("FIFO", SchedulerKind::Fifo, false),
        ("EASY backfill", SchedulerKind::Backfill, false),
        (
            "backfill + Maui-like priority",
            SchedulerKind::Backfill,
            true,
        ),
    ] {
        let mut ctl = Controller::new(64, kind);
        if maui {
            ctl.set_priority_fn(maui_like_priority);
        }
        let makespan = run_trace(&mut ctl, &trace);
        let s = ctl.stats();
        println!(
            "  {label:<30} makespan {:>6.1} h  mean wait {:>6.0} s  util {:>5.1}%  backfilled {:>3}",
            makespan.as_secs_f64() / 3600.0,
            s.total_wait_secs / s.submitted as f64,
            ctl.utilization(makespan) * 100.0,
            s.backfilled
        );
    }

    // interactive-style API walkthrough
    println!("\nAPI walkthrough:");
    let mut ctl = Controller::new(8, SchedulerKind::Backfill);
    let t0 = cwx_util::time::SimTime::ZERO;
    let a = ctl
        .submit(t0, JobRequest::batch("alice", 4, 3600, 1800))
        .unwrap();
    let b = ctl
        .submit(t0, JobRequest::batch("bob", 8, 3600, 600))
        .unwrap();
    let c = ctl
        .submit(t0, JobRequest::batch("carol", 2, 600, 300))
        .unwrap();
    ctl.advance(t0);
    for id in [a, b, c] {
        let j = ctl.job(id).unwrap();
        println!(
            "  {} ({}, {} nodes): {:?}{}",
            id,
            j.request.user,
            j.request.nodes,
            j.state,
            if j.backfilled { " [backfilled]" } else { "" }
        );
    }

    // failover: replicate, kill the primary, replica finishes everything
    println!("\ncontroller failover:");
    let mut replica = ctl.clone();
    drop(ctl); // the control node dies
    while let Some(next) = replica.next_completion() {
        replica.advance(next);
    }
    let s = replica.stats();
    println!(
        "  replica finished the work: {} completed, {} timed out, queue {}",
        s.completed,
        s.timed_out,
        replica.queue_len()
    );
    assert_eq!(s.completed + s.timed_out, 3);
}
