//! The paper's flagship event-engine scenario (§5.2): a CPU fan fails on
//! a loaded node; ClusterWorX notices the probe reading, powers the node
//! down through its ICE Box before the CPU burns, and mails the
//! administrator exactly once.
//!
//! ```text
//! cargo run --release --example thermal_event
//! ```

use clusterworx::world::schedule_fault;
use clusterworx::{Cluster, ClusterConfig, WorkloadMix, World};
use cwx_hw::node::Fault;
use cwx_hw::HealthState;
use cwx_util::time::{SimDuration, SimTime};

fn main() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 10,
        seed: 7,
        workload: WorkloadMix::Constant(0.95), // fully loaded cluster
        ..Default::default()
    });

    // warm up to thermal steady state
    sim.run_for(SimDuration::from_secs(400));
    let victim = 4u32;
    let t_fault = sim.now() + SimDuration::from_secs(10);
    println!("injecting fan failure on node{victim:03} at t={t_fault}");
    schedule_fault(&mut sim, t_fault, victim, Fault::FanFailure);

    // watch the story unfold
    let mut acted_at: Option<SimTime> = None;
    for _ in 0..3000 {
        if !sim.step() {
            break;
        }
        if acted_at.is_none() {
            if let Some(a) = sim.world().action_log().iter().find(|a| a.node == victim) {
                acted_at = Some(a.time);
                let temp = sim.world().nodes[victim as usize].hw.temperature_c();
                println!(
                    "t={}: event engine executed {:?} on node{victim:03} (cpu at {temp:.1} C)",
                    a.time, a.action
                );
                break;
            }
        }
    }
    let acted_at = acted_at.expect("the event engine must act");
    println!(
        "detection-to-action latency: {:.1}s",
        acted_at.since(t_fault).as_secs_f64()
    );

    // let the mail flush and the node cool down
    sim.run_for(SimDuration::from_secs(120));
    let world = sim.world();

    let node = &world.nodes[victim as usize];
    assert_ne!(node.hw.health(), HealthState::Burned, "CPU must be saved");
    println!(
        "node{victim:03}: health={:?}, temperature now {:.1} C (cooling, power off)",
        node.hw.health(),
        node.hw.temperature_c()
    );

    println!("\nadministrator mailbox:");
    for mail in world.server.outbox() {
        println!("  subject: {}", mail.subject);
        for line in mail.body.lines() {
            println!("    {line}");
        }
    }
    let fan_mails = world
        .server
        .outbox()
        .iter()
        .filter(|m| m.event == "cpu-fan-failure")
        .count();
    assert_eq!(fan_mails, 1, "smart notification: exactly one email");

    // post-mortem: what the ICE Box captured from the node's console
    let (bx, port) = World::rack_of(victim);
    let log = world.iceboxes[bx].console_log(port);
    println!("\nICE Box console capture for node{victim:03} (last lines):");
    for line in log.lines().rev().take(3).collect::<Vec<_>>().iter().rev() {
        println!("  | {line}");
    }
}
