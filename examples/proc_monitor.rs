//! Run the ClusterWorX monitoring agent against the *real* `/proc` of
//! this machine (paper §5.3): the four-level gathering ladder, then a
//! few live agent ticks with consolidation and compression.
//!
//! Falls back to the synthetic /proc off-Linux.
//!
//! ```text
//! cargo run --release --example proc_monitor
//! ```

use std::time::Duration;

use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::snapshot::Sensors;
use cwx_proc::gather::{GatherLevel, MemInfoGatherer};
use cwx_proc::source::{ProcSource, RealProc};
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::time::{SimDuration, SimTime};

fn ladder<S: ProcSource + Clone>(src: &S) {
    println!("gathering ladder on /proc/meminfo (paper: 85 / 4173 / 14031 / 33855 samples/s):");
    for level in GatherLevel::ALL {
        let mut g = MemInfoGatherer::new(src.clone(), level).expect("gatherer");
        let t0 = std::time::Instant::now();
        let mut n = 0u64;
        while t0.elapsed() < Duration::from_millis(300) {
            std::hint::black_box(g.sample().expect("sample"));
            n += 1;
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        println!("  {:<10} {:>12.0} samples/s", level.label(), rate);
    }
}

fn drive<S: ProcSource + Clone>(src: S, label: &str) {
    println!("\nlive agent over {label} (delta consolidation + LZSS compression):");
    let mut agent = Agent::new(src, AgentConfig::default()).expect("agent");
    let mut now = SimTime::ZERO;
    for tick in 0..5 {
        now += SimDuration::from_secs(5);
        std::thread::sleep(Duration::from_millis(150)); // let real counters move
        let out = agent
            .tick(
                now,
                Sensors {
                    udp_echo_ok: true,
                    cpu_temp_c: 47.0,
                    ..Default::default()
                },
            )
            .expect("tick");
        println!(
            "  tick {tick}: {:>3} values changed, {:>5} B raw -> {:>4} B wire",
            out.report.values.len(),
            out.raw_len,
            out.wire_len
        );
        if tick == 0 {
            let interesting = [
                "mem.total",
                "mem.free",
                "load.one",
                "cpu.count",
                "uptime.secs",
            ];
            for (k, v) in &out.report.values {
                if interesting.contains(&k.as_str()) {
                    println!("         {k} = {}", v.render());
                }
            }
        }
    }
    let stats = agent.stats();
    println!(
        "  totals: {} ticks, {} B raw, {} B on the wire ({:.1}x reduction)",
        stats.ticks,
        stats.raw_bytes,
        stats.wire_bytes,
        stats.raw_bytes as f64 / stats.wire_bytes as f64
    );
}

fn main() {
    let real = RealProc::new();
    if real.available() {
        println!("monitoring the real /proc of this machine\n");
        ladder(&real);
        drive(real, "real /proc");
    } else {
        println!("no /proc here; using the synthetic backend\n");
        let synth = SyntheticProc::default();
        ladder(&synth);
        let driver = synth.clone();
        // make the synthetic node do something between ticks
        std::thread::spawn(move || loop {
            driver.with_state(|s| s.tick(1.0, 0.5));
            std::thread::sleep(Duration::from_millis(100));
        });
        drive(synth, "synthetic /proc");
    }
}
