//! Drive an ICE Box directly over its management protocols (paper §3):
//! SIMP on the serial line, NIMP over Ethernet, and the SNMP table —
//! power sequencing, probes, reset, and the 16 KiB console capture.
//!
//! ```text
//! cargo run --release --example icebox_console
//! ```

use cwx_icebox::chassis::{IceBox, PortEffect, PortId, ProbeReading};
use cwx_icebox::protocol::{parse_nimp, parse_simp, render_response, Command, PortSel, Response};
use cwx_icebox::snmp;
use cwx_util::time::SimTime;

/// A minimal command interpreter: what the embedded controller does with
/// a decoded command.
fn execute(ib: &mut IceBox, now: SimTime, cmd: Command) -> (Response, Vec<PortEffect>) {
    let mut effects = Vec::new();
    let resp = match cmd {
        Command::PowerOn(sel) => {
            for p in ports(sel) {
                effects.extend(ib.power_on(now, p));
            }
            Response::Ok
        }
        Command::PowerOff(sel) => {
            for p in ports(sel) {
                effects.extend(ib.power_off(p));
            }
            Response::Ok
        }
        Command::PowerCycle(sel) => {
            for p in ports(sel) {
                effects.extend(ib.power_off(p));
                effects.extend(ib.power_on(now, p));
            }
            Response::Ok
        }
        Command::Reset(sel) => {
            for p in ports(sel) {
                effects.extend(ib.reset(p));
            }
            Response::Ok
        }
        Command::Status => Response::Status(
            (0..10u8)
                .map(|i| {
                    let p = PortId(i);
                    (p, ib.relay_on(p), ib.probe(p).unwrap_or_default())
                })
                .collect(),
        ),
        Command::Temps => Response::Temps(
            (0..10u8)
                .map(|i| (PortId(i), ib.probe(PortId(i)).unwrap_or_default().temp_c))
                .collect(),
        ),
        Command::Console(p) => Response::Console(ib.console_log(p)),
        Command::ClearLog(p) => {
            ib.clear_console(p);
            Response::Ok
        }
        Command::Version => Response::Version(ib.firmware_version().to_string()),
    };
    (resp, effects)
}

fn ports(sel: PortSel) -> Vec<PortId> {
    match sel {
        PortSel::All => (0..10u8).map(PortId).collect(),
        PortSel::One(p) => vec![p],
    }
}

fn main() {
    let mut ib = IceBox::new();
    let now = SimTime::ZERO;

    // --- SIMP session (serial) ---
    println!("SIMP (serial console) session:");
    for line in ["VERSION\r", "POWER ON ALL\r", "STATUS\r"] {
        let cmd = parse_simp(line).expect("valid command");
        let (resp, effects) = execute(&mut ib, now, cmd);
        print!(
            "  > {}\n  {}",
            line.trim_end(),
            render_response(None, &resp)
        );
        if !effects.is_empty() {
            println!("  ({} relay effects, sequenced)", effects.len());
            for e in effects.iter().take(3) {
                println!("    {e:?}");
            }
        }
    }

    // probes arrive from the backplane
    for i in 0..10u8 {
        ib.record_probe(
            PortId(i),
            ProbeReading {
                temp_c: 40.0 + i as f64,
                watts: 120.0 + 5.0 * i as f64,
                fan_rpm: 6000.0,
            },
        );
    }

    // --- NIMP session (network) ---
    println!("\nNIMP (network) session:");
    for frame in [
        "NIMP1 1 TEMPS\n",
        "NIMP1 2 RESET 3\n",
        "NIMP1 3 POWER CYCLE 9\n",
    ] {
        let (seq, cmd) = parse_nimp(frame).expect("valid frame");
        let (resp, _) = execute(&mut ib, now, cmd);
        print!(
            "  > {}  {}",
            frame.trim_end(),
            render_response(Some(seq), &resp)
        );
    }

    // --- SNMP table ---
    println!("\nSNMP walk (first rows):");
    for (oid, value) in snmp::walk(&ib).into_iter().take(6) {
        println!("  {oid} = {value:?}");
    }

    // --- console capture / post-mortem ---
    let victim = PortId(2);
    for i in 0..40 {
        ib.feed_console(
            victim,
            format!("eth0: NETDEV WATCHDOG: transmit timed out ({i})\n").as_bytes(),
        );
    }
    ib.feed_console(victim, b"Kernel panic: Aiee, killing interrupt handler!\n");
    let cmd = parse_simp("CONSOLE 2").unwrap();
    let (resp, _) = execute(&mut ib, now, cmd);
    if let Response::Console(log) = &resp {
        println!("\npost-mortem for port 2 ({} bytes captured):", log.len());
        for line in log.lines().rev().take(3).collect::<Vec<_>>().iter().rev() {
            println!("  | {line}");
        }
    }

    // error handling on the wire
    let err = parse_simp("POWER FRY 3").unwrap_err();
    println!("\nbad command rejected: {err}");
}
