//! Acceptance test for the storage engine's durability contract: every
//! acknowledged write survives dropping the store mid-write — no flush,
//! no shutdown — and comes back bit-identical with checksums intact.

use std::sync::Arc;
use std::thread;

use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::{BatchSample, Sample, Store};
use cwx_util::time::SimTime;

const NODES: u32 = 8;
const MONITORS: [&str; 2] = ["cpu.util_pct", "load.one"];
const PER_SERIES: u64 = 6_500; // 8 nodes x 2 monitors x 6500 = 104k samples

fn expected_series(node: u32, monitor: &str) -> Vec<Sample> {
    let m = if monitor == "cpu.util_pct" { 0u64 } else { 1 };
    (0..PER_SERIES)
        .map(|i| Sample {
            time: SimTime::from_nanos(1_000_000_000 + i * 5_000_000_000),
            value: ((node as u64 * 31 + m * 7 + i) % 997) as f64 * 0.25,
        })
        .collect()
}

#[test]
fn kill_and_restart_loses_no_acknowledged_sample() {
    let dir = std::env::temp_dir().join(format!("cwx-recovery-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: concurrent ingest of >100k samples across 16 series,
    // then drop the store abruptly. No flush: whatever the memtables
    // held exists only in the WALs at this point.
    {
        let store = Arc::new(
            DiskStore::open(
                &dir,
                StoreConfig {
                    n_shards: 4,
                    nodes_per_group: 2,
                    flush_threshold: 1024,
                    compact_threshold: 4,
                    ..StoreConfig::default()
                },
            )
            .expect("fresh store"),
        );
        thread::scope(|s| {
            for node in 0..NODES {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for monitor in MONITORS {
                        for sample in expected_series(node, monitor) {
                            // returning from append IS the acknowledgement
                            store.append(node, monitor, sample.time, sample.value);
                        }
                    }
                });
            }
        });
        drop(store); // kill: no flush(), memtables discarded
    }

    // Phase 2: reopen and verify every acknowledged sample is back.
    let store = DiskStore::open(&dir, StoreConfig::default()).expect("recovered store");
    let rec = store.recovery();
    assert_eq!(rec.segments_quarantined, 0, "no checksum failures: {rec:?}");
    assert!(
        rec.samples_replayed > 0,
        "some tail must come from the WAL: {rec:?}"
    );
    assert_eq!(
        store.total_samples(),
        NODES as u64 * MONITORS.len() as u64 * PER_SERIES,
        "recovery: {rec:?}"
    );

    for node in 0..NODES {
        for monitor in MONITORS {
            let expect = expected_series(node, monitor);
            let got = store.range(node, monitor, SimTime::ZERO, SimTime::MAX);
            assert_eq!(got.len(), expect.len(), "node{node} {monitor}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.time, e.time, "node{node} {monitor}");
                assert_eq!(g.value.to_bits(), e.value.to_bits(), "node{node} {monitor}");
            }
            // a window query returns exactly the samples inside it
            let (from, to) = (expect[100].time, expect[300].time);
            let window = store.range(node, monitor, from, to);
            assert_eq!(window.len(), 201, "node{node} {monitor} window");
            assert_eq!(window[0].time, from);
            assert_eq!(window[200].time, to);
        }
    }

    // Phase 3: the recovered store keeps working — appends land and a
    // third open sees them too.
    let late = SimTime::from_nanos(1_000_000_000 + PER_SERIES * 5_000_000_000);
    store.append(0, "cpu.util_pct", late, 42.0);
    store.flush();
    drop(store);
    let store = DiskStore::open(&dir, StoreConfig::default()).expect("third open");
    let last = store.latest(0, "cpu.util_pct").expect("series survives");
    assert_eq!((last.time, last.value), (late, 42.0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_batch_preserves_acknowledged_batches() {
    // Batched ingest writes one WAL frame per series per batch, all in a
    // single syscall. A crash can tear that write anywhere; everything
    // before the tear must replay, everything after must vanish cleanly.
    let dir = std::env::temp_dir().join(format!("cwx-recovery-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const BATCHES: u64 = 10;
    const PER_BATCH: u64 = 10;
    let sample = |m: u64, i: u64| Sample {
        time: SimTime::from_nanos(1_000_000_000 * (i + 1)),
        value: (m * 1000 + i) as f64,
    };
    let cfg = || StoreConfig {
        n_shards: 1, // one WAL so the tear point is deterministic to hit
        nodes_per_group: 2,
        flush_threshold: 1_000_000, // never flush: everything stays in the WAL
        compact_threshold: 4,
        ..StoreConfig::default()
    };

    {
        let store = DiskStore::open(&dir, cfg()).expect("fresh store");
        for b in 0..BATCHES {
            let mut batch = Vec::new();
            for (m, monitor) in MONITORS.iter().enumerate() {
                for i in b * PER_BATCH..(b + 1) * PER_BATCH {
                    batch.push(BatchSample {
                        node: 0,
                        monitor,
                        time: sample(m as u64, i).time,
                        value: sample(m as u64, i).value,
                    });
                }
            }
            // returning from append_batch acknowledges the whole batch
            store.append_batch(&batch);
        }
        drop(store); // kill: no flush
    }

    // tear the WAL mid-frame: the final frame of the last batch loses
    // its tail, exactly as if the machine died during the write
    let wal = dir.join("shard-000").join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 9).unwrap();
    drop(f);

    let store = DiskStore::open(&dir, cfg()).expect("recovered store");
    let rec = store.recovery();
    assert!(
        rec.wal_truncated_bytes > 0,
        "the torn frame was dropped: {rec:?}"
    );

    let total_expected = MONITORS.len() as u64 * BATCHES * PER_BATCH;
    let mut recovered = 0u64;
    for (m, monitor) in MONITORS.iter().enumerate() {
        let got = store.range(0, monitor, SimTime::ZERO, SimTime::MAX);
        // a series lost at most its final-batch frame, never more
        assert!(
            got.len() as u64 >= (BATCHES - 1) * PER_BATCH,
            "{monitor}: acknowledged batches 0..{} must survive, got {}",
            BATCHES - 1,
            got.len()
        );
        assert!(got.len() as u64 <= BATCHES * PER_BATCH);
        // and what survived is a bit-exact prefix, in order
        for (i, s) in got.iter().enumerate() {
            let e = sample(m as u64, i as u64);
            assert_eq!(s.time, e.time, "{monitor}[{i}]");
            assert_eq!(s.value.to_bits(), e.value.to_bits(), "{monitor}[{i}]");
        }
        recovered += got.len() as u64;
    }
    assert!(
        recovered < total_expected,
        "the tear must actually have cost the torn frame"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
