//! Snapshot / resume / bisect contracts, end to end: capture is
//! fingerprint-neutral, a resumed run reproduces the straight-through
//! run bit for bit (audit hash and result fingerprint), corrupted
//! snapshot files die with one-line diagnostics instead of panics, and
//! `cwx bisect` converges on the documented minimal prefix for the
//! shipped demo scenario.

use cwx_scenario::{
    bisect_scenario, run_scenario, run_scenario_with, Manifest, Outcome, RunOptions,
};
use cwx_util::snapshot::{SnapshotFile, SNAPSHOT_MAGIC};

fn example(name: &str) -> String {
    let path = format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// A fast chaos scenario with a mid-run crash/recover cycle.
const CHAOS: &str = r#"
scenario_version = 1
name = "rt-chaos"
seed = 31

[cluster]
nodes = 12

[run]
duration = 300
settle = 200

[[fault]]
at = 60
kind = "agent-crash"
node = 5

[[fault]]
at = 140
kind = "kernel-panic"
node = 9

[assertions]
final_up = "all"
"#;

/// A fast federation scenario with a partition window.
const FED: &str = r#"
scenario_version = 1
name = "rt-fed"
seed = 47

[federation]
clusters = 3
nodes_per_cluster = 8
uplink = 10

[run]
duration = 300
settle = 60

[[fault]]
at = 75
kind = "cluster-disconnect"
cluster = 2

[[fault]]
at = 165
kind = "cluster-heal"
cluster = 2
"#;

/// Capture at many instants across the run, resume from each one, and
/// demand the identical fingerprint every time — a seeded sweep in
/// place of a proptest dependency. Covers both engines.
#[test]
fn resume_reproduces_the_straight_run_at_every_instant() {
    for text in [CHAOS, FED] {
        let m = Manifest::parse(text).expect("parses");
        let straight = run_scenario(&m);
        assert_eq!(straight.outcome, Outcome::Pass, "{:?}", straight.summary);

        // a cheap LCG walks pseudo-random capture instants over the run
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut times = Vec::new();
        for _ in 0..6 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // stay inside both manifests' horizons (500s and 360s)
            times.push((x >> 33) as f64 % 300.0);
        }
        times.sort_by(f64::total_cmp);
        times.dedup();

        let snapped = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: times.clone(),
                resume: None,
            },
        )
        .expect("capture run");
        assert_eq!(
            snapped.fingerprint, straight.fingerprint,
            "capture must be fingerprint-neutral for {}",
            m.name
        );
        assert!(!snapped.snapshots.is_empty());

        for file in snapped.snapshots {
            // every snapshot survives the byte container round trip
            let file = SnapshotFile::decode(&file.encode()).expect("round trip");
            let t = file.t_nanos;
            let resumed = run_scenario_with(
                &m,
                &RunOptions {
                    snapshot_at: vec![],
                    resume: Some(file),
                },
            )
            .unwrap_or_else(|e| panic!("resume {} at {t}ns: {e}", m.name));
            assert_eq!(
                resumed.fingerprint, straight.fingerprint,
                "resume at {t}ns must reproduce {}",
                m.name
            );
            assert!(resumed.summary[0].contains("verified bit-exact"));
        }
    }
}

/// Every corruption of a valid snapshot file is a one-line decode
/// error, never a panic and never a silent partial load.
#[test]
fn corrupted_snapshots_fail_loudly_and_precisely() {
    let m = Manifest::parse(CHAOS).expect("parses");
    let r = run_scenario_with(
        &m,
        &RunOptions {
            snapshot_at: vec![120.0],
            resume: None,
        },
    )
    .expect("capture");
    let good = r.snapshots[0].encode();
    assert_eq!(&good[..8], SNAPSHOT_MAGIC.as_slice());

    // truncation at every prefix length is rejected cleanly
    for cut in [0, 1, 7, 8, 11, 12, 16, good.len() / 2, good.len() - 1] {
        let err = SnapshotFile::decode(&good[..cut]).expect_err("truncated");
        let msg = err.to_string();
        assert!(!msg.contains('\n'), "multi-line error: {msg}");
    }
    // a bit flip anywhere in the body is caught by the CRC; in the
    // header, by magic/version/CRC checks (stride keeps the sweep fast)
    for i in (0..good.len()).step_by(97) {
        let mut bad = good.clone();
        bad[i] ^= 0x20;
        assert!(
            SnapshotFile::decode(&bad).is_err(),
            "flip at byte {i} went undetected"
        );
    }
    // trailing garbage is rejected too
    let mut padded = good.clone();
    padded.push(0);
    assert!(SnapshotFile::decode(&padded).is_err());
}

/// A snapshot refuses to resume under a manifest whose world differs.
/// Chaos campaigns pre-schedule every fault into the event wheel, so
/// *any* schedule change invalidates the snapshot; federation faults
/// are applied externally, so only the prefix up to the capture
/// instant matters and later faults can vary (fork-many).
#[test]
fn resume_refuses_a_diverged_fault_prefix() {
    // chaos: even a fault scheduled after the capture instant is
    // pending engine state at the capture, so the resume is refused
    let m = Manifest::parse(CHAOS).expect("parses");
    let r = run_scenario_with(
        &m,
        &RunOptions {
            snapshot_at: vec![200.0],
            resume: None,
        },
    )
    .expect("capture");
    let chaos_file = r.snapshots[0].clone();
    let diverged = CHAOS.replace(
        "[assertions]",
        "[[fault]]\nat = 250\nkind = \"agent-crash\"\nnode = 2\n\n[assertions]",
    );
    let diverged = Manifest::parse(&diverged).expect("parses");
    let err = run_scenario_with(
        &diverged,
        &RunOptions {
            snapshot_at: vec![],
            resume: Some(chaos_file),
        },
    )
    .expect_err("chaos schedule diverged");
    assert!(err.contains("identity"), "{err}");

    // federation: a fault added *after* the capture instant forks the
    // continuation and still resumes bit-exact...
    let m = Manifest::parse(FED).expect("parses");
    let r = run_scenario_with(
        &m,
        &RunOptions {
            snapshot_at: vec![100.0],
            resume: None,
        },
    )
    .expect("capture");
    let fed_file = r.snapshots[0].clone();
    let forked =
        format!("{FED}\n[[fault]]\nat = 200\nkind = \"cluster-disconnect\"\ncluster = 0\n");
    let forked = Manifest::parse(&forked).expect("parses");
    assert_eq!(forked.fault_count(), 3);
    let out = run_scenario_with(
        &forked,
        &RunOptions {
            snapshot_at: vec![],
            resume: Some(fed_file.clone()),
        },
    )
    .expect("fed fork resumes");
    assert!(out.summary[0].contains("verified bit-exact"));

    // ...but a fault before it is a different world: refused
    let diverged = FED.replace("at = 75", "at = 45");
    let diverged = Manifest::parse(&diverged).expect("parses");
    let err = run_scenario_with(
        &diverged,
        &RunOptions {
            snapshot_at: vec![],
            resume: Some(fed_file),
        },
    )
    .expect_err("fed prefix diverged");
    assert!(err.contains("identity"), "{err}");
}

/// The shipped bisect demo converges on the verdict its comments
/// document: prefix 3, culprit agent-crash at 300s, max_emails.
#[test]
fn bisect_demo_finds_the_documented_culprit() {
    let m = Manifest::parse(&example("bisect-demo.toml")).expect("parses");
    let full = run_scenario(&m);
    assert_eq!(full.outcome, Outcome::AssertionFail);

    let r = bisect_scenario(&m).expect("bisects");
    assert_eq!(r.minimal_prefix, 3);
    let (i, at, kind) = r.culprit.clone().expect("culprit");
    assert_eq!((i, at), (2, 300.0));
    assert!(kind.contains("agent-crash"), "{kind}");
    assert_eq!(r.first_failure.as_deref(), Some("assert:max_emails"));
    let json = r.to_json(&m.fault_schedule());
    assert!(json.contains("\"schema\":\"cwx-bisect-v1\""));
    assert!(json.contains("\"minimal_prefix\":3"));
}

/// The other new shipped scenarios pass and cover the fault kinds the
/// scoreboard previously flagged as unexercised.
#[test]
fn grief_and_sensor_scenarios_pass_and_cover_new_faults() {
    let hg = Manifest::parse(&example("hardware-grief.toml")).expect("parses");
    let r = run_scenario(&hg);
    assert_eq!(r.outcome, Outcome::Pass, "{:?}", r.summary);
    for kind in [
        "fan-failure",
        "psu-failure",
        "memory-leak",
        "rack-bandwidth",
    ] {
        assert!(r.coverage.faults.contains(kind), "{kind} not covered");
    }
    // the manifest's [checkpoints] capture rides along
    assert_eq!(r.snapshots.len(), 1);

    let sl = Manifest::parse(&example("sensor-lies.toml")).expect("parses");
    let r = run_scenario(&sl);
    assert_eq!(r.outcome, Outcome::Pass, "{:?}", r.summary);
    for kind in [
        "probe-stuck",
        "probe-skew",
        "probe-clear",
        "console-garbage",
    ] {
        assert!(r.coverage.faults.contains(kind), "{kind} not covered");
    }
}
