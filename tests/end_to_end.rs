//! End-to-end integration: the full managed-cluster lifecycle across
//! every crate — boot, monitor, fail, heal, observe.

use clusterworx::world::{power_off_node, power_on_node, schedule_fault};
use clusterworx::{dashboard, Cluster, ClusterConfig, WorkloadMix, World};
use cwx_events::Action;
use cwx_hw::node::Fault;
use cwx_hw::HealthState;
use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::{SimDuration, SimTime};

#[test]
fn full_lifecycle_with_mixed_failures() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 24,
        seed: 99,
        workload: WorkloadMix::Constant(0.9),
        ..Default::default()
    });

    // phase 1: everything boots and reports
    sim.run_for(SimDuration::from_secs(300));
    assert_eq!(sim.world().up_count(), 24);
    let early_reports = sim.world().server.stats().reports_rx;
    assert!(early_reports > 24 * 20, "agents reporting: {early_reports}");

    // phase 2: three different failures at once
    let base = sim.now();
    schedule_fault(
        &mut sim,
        base + SimDuration::from_secs(10),
        3,
        Fault::FanFailure,
    );
    schedule_fault(
        &mut sim,
        base + SimDuration::from_secs(20),
        7,
        Fault::KernelPanic,
    );
    schedule_fault(
        &mut sim,
        base + SimDuration::from_secs(30),
        11,
        Fault::PsuFailure,
    );
    sim.run_for(SimDuration::from_secs(900));

    let w = sim.world();
    // fan failure: powered down before burning
    assert!(w
        .action_log()
        .iter()
        .any(|a| a.node == 3 && a.action == Action::PowerDown));
    assert_ne!(w.nodes[3].hw.health(), HealthState::Burned);
    // kernel panic: rebooted and healthy again
    assert!(w
        .action_log()
        .iter()
        .any(|a| a.node == 7 && a.action == Action::Reboot));
    assert!(w.nodes[7].hw.is_up(), "panicked node must be healed");
    // PSU failure: dead silicon — node stays dark, server notices
    assert!(!w.nodes[11].hw.is_up());
    assert!(!w
        .server
        .node_status(11)
        .map(|s| s.reachable)
        .unwrap_or(true));

    // mail went out, bounded by episode dedup
    assert!(!w.server.outbox().is_empty());

    // dashboard reflects reality
    let rows = dashboard::rows(w, sim.now());
    assert_eq!(rows[3].status, "off");
    assert_eq!(rows[7].status, "up");
    // history kept flowing for healthy nodes the whole time (uptime
    // changes every tick, so delta consolidation never suppresses it)
    let key = MonitorKey::new("uptime.secs");
    let hist = w.server.history().range(0, &key, SimTime::ZERO, sim.now());
    assert!(hist.len() > 100, "continuous history: {}", hist.len());
    // while a constant monitor is (correctly) sparse under delta
    let sparse = w.server.history().range(
        0,
        &MonitorKey::new("cpu.util_pct"),
        SimTime::ZERO,
        sim.now(),
    );
    assert!(
        sparse.len() < hist.len() / 4,
        "delta suppresses constants: {}",
        sparse.len()
    );
}

#[test]
fn administrative_power_control_round_trip() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 6,
        seed: 5,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(sim.world().up_count(), 6);

    // administrator takes node 2 down, later brings it back
    power_off_node(&mut sim, 2);
    sim.run_for(SimDuration::from_secs(60));
    assert_eq!(sim.world().up_count(), 5);
    let (bx, port) = World::rack_of(2);
    assert!(!sim.world().iceboxes[bx].relay_on(port));

    power_on_node(&mut sim, 2);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(sim.world().up_count(), 6);
    // the rebooted node resumed reporting with a fresh agent
    assert!(sim.world().server.node_status(2).unwrap().reachable);
    // and its second boot is in the console capture
    let log = sim.world().iceboxes[bx].console_log(port);
    assert!(
        log.matches("Testing DRAM: done").count() >= 2,
        "two boots on the console"
    );
}

#[test]
fn consolidation_ablation_visible_at_cluster_level() {
    let run = |delta| {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 10,
            seed: 3,
            delta_enabled: delta,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(400));
        sim.world().server.stats().bytes_rx
    };
    let with_delta = run(true);
    let without = run(false);
    assert!(
        with_delta * 2 < without,
        "delta consolidation halves server ingest at least: {with_delta} vs {without}"
    );
}

#[test]
fn cluster_simulation_is_deterministic() {
    let run = || {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 12,
            seed: 777,
            workload: WorkloadMix::Mixed,
            loss: 0.01,
            ..Default::default()
        });
        schedule_fault(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs(200),
            5,
            Fault::FanFailure,
        );
        sim.run_for(SimDuration::from_secs(600));
        let w = sim.world();
        (
            w.server.stats(),
            w.action_log().len(),
            w.server.outbox().len(),
            w.net.stats(),
            sim.events_executed(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn memory_leak_is_flagged_then_oom_heals_by_reboot() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 4,
        seed: 44,
        workload: WorkloadMix::Constant(0.2),
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(120));
    let when = sim.now() + SimDuration::from_secs(10);
    schedule_fault(&mut sim, when, 2, Fault::MemoryLeak);
    // the leak takes minutes to fill 1 GiB RAM + 2 GiB swap
    sim.run_for(SimDuration::from_secs(900));
    {
        let w = sim.world();
        // the administrator was warned about swap pressure before the OOM
        assert!(
            w.server
                .outbox()
                .iter()
                .any(|m| m.event == "swap-pressure" && m.nodes == vec![2]),
            "swap warning missing: {:?}",
            w.server
                .outbox()
                .iter()
                .map(|m| &m.subject)
                .collect::<Vec<_>>()
        );
    }
    // run long enough for the OOM panic and the connectivity-driven heal
    sim.run_for(SimDuration::from_secs(1200));
    let w = sim.world();
    assert!(
        w.action_log()
            .iter()
            .any(|a| a.node == 2 && a.action == Action::Reboot),
        "OOM panic must be healed by reboot: {:?}",
        w.action_log()
    );
    assert!(w.nodes[2].hw.is_up(), "node back after the OOM reboot");
    // the OOM kill is on the ICE Box console for post-mortem
    let (bx, port) = World::rack_of(2);
    assert!(w.iceboxes[bx].console_log(port).contains("Out of Memory"));
    // swap is healthy again, so the episode closed
    let hist = w
        .server
        .history()
        .latest(2, &MonitorKey::new("swap.free"))
        .unwrap();
    assert!(hist.value > 1_500_000.0, "swap recovered: {}", hist.value);
}
