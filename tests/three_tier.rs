//! The 3-tier claim (paper §5.1): "The 3-tier design allows multiple
//! clients to access the ClusterWorX server at the same time without
//! conflict." Agents push from below while several GUI clients query
//! from above, concurrently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use clusterworx::Server;
use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{encode_compressed, Report};
use cwx_util::time::{SimDuration, SimTime};

fn report(node: u32, seq: u64, load: f64) -> Vec<u8> {
    encode_compressed(&Report {
        node,
        seq,
        time_secs: seq as f64,
        values: vec![
            (MonitorKey::new("load.one"), Value::Num(load)),
            (
                MonitorKey::new("mem.free"),
                Value::Num(500_000.0 - seq as f64),
            ),
        ],
    })
}

#[test]
fn concurrent_clients_and_agents_do_not_conflict() {
    let server = Arc::new(RwLock::new(Server::new(
        "三tier",
        SimDuration::from_secs(10),
        2048,
        SimDuration::from_secs(60),
    )));
    let stop = Arc::new(AtomicBool::new(false));

    // tier 1: sixteen agent feeders
    let mut handles = Vec::new();
    for node in 0..16u32 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let payload = report(node, seq, (seq % 10) as f64 / 10.0);
                let now = SimTime::ZERO + SimDuration::from_secs(seq);
                server.write().unwrap().ingest(now, &payload);
                seq += 1;
            }
            seq
        }));
    }

    // tier 3: four chart clients reading concurrently
    let mut clients = Vec::new();
    for _ in 0..4 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let key = MonitorKey::new("load.one");
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = server.read().unwrap();
                for node in 0..16 {
                    if let Some(sample) = s.history().latest(node, &key) {
                        assert!((0.0..=1.0).contains(&sample.value));
                    }
                }
                let _ = s.history().latest_across_nodes(&key);
                reads += 1;
            }
            reads
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);

    let mut total_reports = 0;
    for h in handles {
        total_reports += h.join().expect("agent thread");
    }
    let mut total_reads = 0;
    for c in clients {
        total_reads += c.join().expect("client thread");
    }
    assert!(total_reports > 100, "agents made progress: {total_reports}");
    assert!(total_reads > 10, "clients made progress: {total_reads}");

    let s = server.read().unwrap();
    assert_eq!(s.stats().decode_errors, 0);
    assert_eq!(s.stats().reports_rx, total_reports);
    for node in 0..16 {
        assert!(s.node_status(node).is_some());
    }
}
