//! The scenario runtime's cross-crate contracts: the shipped example
//! manifests stay in lock-step with the programmatic scenarios they
//! transcribe, the legacy `cwx chaos run` shim and the manifest path
//! produce the same simulation (pinned by the audit hash), result
//! bodies are deterministic under a fixed seed, and the exit-code
//! ladder classifies assertion failures and invariant violations the
//! way `cwx run --help` documents.

use cwx_chaos::{campaign_config, run_campaign_sim, soak, Campaign, FaultKind, InvariantPolicy};
use cwx_scenario::{run_scenario, Manifest, Outcome};

/// Read a manifest from `examples/scenarios/` relative to the repo root.
fn example(name: &str) -> String {
    let path = format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// `examples/scenarios/soak.toml` claims to be the TOML transcription
/// of the programmatic [`soak`] scenario. Pin them to exact equality —
/// same fleet, same schedule, same builder order — so neither can
/// drift without this test forcing the other to follow.
#[test]
fn soak_manifest_is_the_programmatic_soak_campaign() {
    let m = Manifest::parse(&example("soak.toml")).expect("soak.toml parses");
    let campaign = m.campaign().expect("soak.toml is a chaos scenario");
    assert_eq!(campaign, &soak(4001));
}

/// The other shipped chaos manifests must at least parse and carry the
/// campaigns their comments describe.
#[test]
fn shipped_manifests_parse() {
    let smoke = Manifest::parse(&example("smoke.toml")).expect("smoke.toml parses");
    assert_eq!(smoke.campaign().expect("chaos").n_nodes, 60);
    let rack = Manifest::parse(&example("rack-outage.toml")).expect("rack-outage.toml parses");
    assert_eq!(rack.campaign().expect("chaos").events.len(), 6);
    let fed = Manifest::parse(&example("federation-smoke.toml")).expect("fed smoke parses");
    assert!(
        fed.campaign().is_none(),
        "federation manifest has no campaign"
    );
    Manifest::parse(&example("federation-partition.toml")).expect("fed partition parses");
}

/// The differential pin for the old-flag path: lowering a campaign
/// through [`Manifest::from_campaign`] and running it via the scenario
/// runtime must drive the exact same simulation as calling
/// [`run_campaign_sim`] directly, byte-for-byte on the audit log.
#[test]
fn manifest_run_and_direct_run_agree_on_the_audit_hash() {
    let campaign = Campaign::new("diff", 31, 16, 300.0)
        .at(60.0, FaultKind::AgentCrash(3))
        .at(90.0, FaultKind::KernelPanic(9))
        .at(180.0, FaultKind::AgentRecover(3))
        .settle(240.0);

    // the old path: cwx chaos run built the config and ran the sim itself
    let cfg = campaign_config(&campaign);
    let (report, _sim) = run_campaign_sim(&campaign, cfg, InvariantPolicy::default());

    // the new path: the same campaign lowered into a manifest
    let r = run_scenario(&Manifest::from_campaign(&campaign));

    let want = format!("\"hash\":\"{:016x}\"", report.audit_hash);
    assert!(
        r.result_json.contains(&want),
        "manifest run diverged from direct run: wanted {want} in {}",
        r.result_json
    );
    assert_eq!(r.outcome, Outcome::Pass);
}

/// Same manifest + same seed ⇒ byte-identical result body; a different
/// seed must move the fingerprint.
#[test]
fn result_bodies_are_deterministic_modulo_timing() {
    let text = example("rack-outage.toml").replace("nodes = 40", "nodes = 30");
    let m = Manifest::parse(&text).expect("parses");
    let a = run_scenario(&m);
    let b = run_scenario(&m);
    let body = |s: &str| s[..s.find(",\"fingerprint\"").expect("fingerprint")].to_string();
    assert_eq!(body(&a.result_json), body(&b.result_json));
    assert_eq!(a.fingerprint, b.fingerprint);

    let mut reseeded = m;
    reseeded.set_seed(100);
    let c = run_scenario(&reseeded);
    assert_ne!(a.fingerprint, c.fingerprint, "seed must reach the body");
}

/// A federation manifest runs headless and the default census check
/// (head's aggregate vs sub-cluster ground truth) passes.
#[test]
fn federation_manifest_census_check_passes() {
    let m = Manifest::parse(
        r#"
scenario_version = 1
name = "fed-tiny"
seed = 5

[federation]
clusters = 2
nodes_per_cluster = 8

[run]
duration = 120

[assertions]
census_match = true
total_nodes = 16
"#,
    )
    .expect("parses");
    let r = run_scenario(&m);
    assert_eq!(r.outcome, Outcome::Pass, "summary: {:?}", r.summary);
    assert!(r.result_json.contains("\"mode\":\"federation\""));
    assert!(r.junit.contains("assert:census_match"));
}

/// An impossibly tight invariant policy turns a healthy reboot into a
/// stuck-transient violation — and a violation outranks a failed
/// assertion, so the run classifies as exit 2, not exit 1.
#[test]
fn invariant_violation_outranks_assertion_failure() {
    let m = Manifest::parse(
        r#"
scenario_version = 1
name = "strict"
seed = 3

[cluster]
nodes = 8

[run]
duration = 300
settle = 120

[invariants]
transient_deadline = 1.0

[[fault]]
at = 30
kind = "kernel-panic"
node = 2

[assertions]
max_emails = 0
"#,
    )
    .expect("parses");
    let r = run_scenario(&m);
    assert_eq!(r.outcome, Outcome::InvariantViolation);
    assert_eq!(r.outcome.exit_code(), 2);
    assert!(r
        .result_json
        .contains("\"outcome\":\"invariant-violation\""));
}
