//! Monitoring under a degraded management network: lost reports must
//! degrade gracefully (staleness, not crashes), corrupt payloads must be
//! counted and dropped, and the cluster must stay managed throughout.

use clusterworx::{Cluster, ClusterConfig, WorkloadMix};
use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::{SimDuration, SimTime};

#[test]
fn report_loss_degrades_gracefully() {
    // 20% loss on the management segment — brutal, but the system must
    // keep functioning
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 10,
        seed: 17,
        loss: 0.20,
        workload: WorkloadMix::Mixed,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(900));
    let w = sim.world();

    // all nodes still up; most reports arrive
    assert_eq!(w.up_count(), 10);
    let st = w.server.stats();
    assert_eq!(
        st.decode_errors, 0,
        "loss drops whole datagrams, never corrupts them"
    );
    let net = w.net.stats();
    assert!(net.lost > 0, "the network actually lost traffic: {net:?}");
    // history still accumulates for every node despite holes
    let key = MonitorKey::new("uptime.secs");
    for i in 0..10 {
        let hist = w.server.history().range(i, &key, SimTime::ZERO, sim.now());
        assert!(hist.len() > 50, "node{i} history too thin: {}", hist.len());
    }
}

#[test]
fn total_silence_marks_nodes_unreachable_but_recovers() {
    // 100% loss: the server hears nothing at all after boot
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 4,
        seed: 18,
        loss: 0.0,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(120));
    assert!(sim.world().server.node_status(0).unwrap().reachable);

    // the segment deteriorates to total loss mid-run
    // (cwx-net loss is fixed per segment, so emulate by building a
    //  second cluster at loss=1.0 and checking it never becomes
    //  reachable — the complementary assertion)
    let mut dead = Cluster::build(ClusterConfig {
        n_nodes: 4,
        seed: 18,
        loss: 1.0,
        ..Default::default()
    });
    dead.run_for(SimDuration::from_secs(600));
    let w = dead.world();
    // the hardware itself is fine — only the network is dead — but the
    // server cannot know that, so it reboots nodes trying to heal them
    // (reboot thrash is the correct emergent behaviour of the paper's
    // "UDP echo ... to ensure network connectivity" rule)
    assert!(w
        .nodes
        .iter()
        .all(|n| n.hw.health() == cwx_hw::HealthState::Healthy));
    for i in 0..4 {
        let reachable = w
            .server
            .node_status(i)
            .map(|s| s.reachable)
            .unwrap_or(false);
        assert!(!reachable, "node{i} must read unreachable under total loss");
    }
    // and the UDP-echo rule asked for reboots trying to heal them
    assert!(
        w.action_log()
            .iter()
            .any(|a| a.action == cwx_events::Action::Reboot),
        "{:?}",
        w.action_log()
    );
}

#[test]
fn corrupt_payloads_are_counted_not_fatal() {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 3,
        seed: 19,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(120));
    // a misbehaving client blasts garbage at the server port
    let now = sim.now();
    for junk in [
        &b"total garbage"[..],
        b"CWZ1\xff\xff\xff\xff",
        b"",
        b"CWX1 node=x",
    ] {
        sim.world_mut().server.ingest(now, junk);
    }
    sim.run_for(SimDuration::from_secs(60));
    let st = sim.world().server.stats();
    assert_eq!(st.decode_errors, 4);
    // normal operation continued around the garbage
    assert_eq!(sim.world().up_count(), 3);
    assert!(st.reports_rx > 30);
}
