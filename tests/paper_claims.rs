//! Fast cross-crate checks of every headline claim in the paper — the
//! "does the shape hold" suite (full magnitudes live in the bench
//! harness; see EXPERIMENTS.md).

use std::time::Duration;

use bench::{e10_icebox, e12_slurm, e1_gathering, e5_boot, e7_pipeline, e8_compress};
use cwx_bios::Firmware;
use cwx_clone::protocol::{run_clone, CloneConfig, RepairStrategy};
use cwx_net::FAST_ETHERNET_BPS;

const WIN: Duration = Duration::from_millis(80);

#[test]
fn claim_s2_linuxbios_order_of_magnitude_faster() {
    let lb = e5_boot::boot_storm(1, 50, Firmware::LinuxBios);
    let legacy = e5_boot::boot_storm(1, 50, Firmware::LegacyBios);
    assert!(
        (2.0..=4.0).contains(&lb.firmware_secs.mean),
        "~3 s: {:?}",
        lb.firmware_secs
    );
    assert!(
        (28.0..=65.0).contains(&legacy.firmware_secs.mean),
        "30-60 s: {:?}",
        legacy.firmware_secs
    );
    assert!(legacy.firmware_secs.mean > lb.firmware_secs.mean * 10.0);
}

#[test]
fn claim_s3_sequencing_and_postmortem() {
    let s = e10_icebox::sequencing();
    assert!(s.sequenced_peak_watts < s.unsequenced_peak_watts / 4.0);
    let p = e10_icebox::post_mortem();
    assert!(p.panic_visible && p.boot_chatter_evicted);
}

#[test]
fn claim_s4_multicast_clones_hundreds_on_one_ethernet() {
    let cfg = CloneConfig {
        image_bytes: 24 << 20,
        pace_bps: 6 << 20,
        firmware: Firmware::LinuxBios,
        ..CloneConfig::default()
    };
    let mc = run_clone(9, 60, FAST_ETHERNET_BPS, 0.01, cfg.clone());
    let uni = run_clone(
        9,
        60,
        FAST_ETHERNET_BPS,
        0.01,
        CloneConfig {
            strategy: RepairStrategy::Unicast,
            ..cfg
        },
    );
    assert_eq!(mc.failed_nodes, 0);
    assert!(
        mc.wire_bytes * 20 < uni.wire_bytes,
        "{} vs {}",
        mc.wire_bytes,
        uni.wire_bytes
    );
    assert!(mc.data_complete_secs * 4.0 < uni.data_complete_secs);
}

#[test]
fn claim_s531_gathering_ladder_shape() {
    let src = e1_gathering::synthetic_proc();
    let rows = e1_gathering::ladder(&src, WIN);
    // every step is a win; the full ladder is >100x like the paper's
    // 85 -> 33855 (~400x)
    assert!(rows[1].samples_per_sec > rows[0].samples_per_sec * 3.0);
    assert!(rows[2].samples_per_sec > rows[1].samples_per_sec * 1.2);
    assert!(rows[3].samples_per_sec >= rows[2].samples_per_sec * 0.9);
    assert!(rows[3].samples_per_sec > rows[0].samples_per_sec * 50.0);
}

#[test]
fn claim_s532_consolidation_cuts_data_substantially() {
    let rows = e7_pipeline::ablation(40);
    let baseline = rows.iter().find(|r| !r.delta && !r.compress).unwrap();
    let product = rows.iter().find(|r| r.delta && r.compress).unwrap();
    assert!(product.bytes_per_tick * 2.5 < baseline.bytes_per_tick);
}

#[test]
fn claim_s533_compression_effective_on_text() {
    let rows = e8_compress::corpora();
    for r in rows {
        assert!(r.ratio < 0.85, "{}: {}", r.corpus, r.ratio);
    }
}

#[test]
fn claim_s6_slurm_failover_and_external_scheduler() {
    let fo = e12_slurm::failover(3, 32, 120);
    assert!(fo.identical);
    let rows = e12_slurm::policy_comparison(3, 32, 120);
    let fifo = &rows[0];
    let backfill = &rows[1];
    assert!(backfill.mean_wait_secs <= fifo.mean_wait_secs);
}
