//! The chaos soak: a simulated-hour campaign at 400 nodes throwing
//! overlapping rack partitions, chassis-controller restarts, agent
//! crashes and a hard-flapping node at the management plane, all at
//! once. The run must keep every invariant, quarantine the flapper
//! without a notification storm, converge to all-Up after the last
//! heal, and replay byte-for-byte under the same seed.
//!
//! The full-size runs are expensive in debug builds, so they are
//! `#[ignore]`d by default and driven in release mode by the CI
//! `chaos-soak` job (`cargo test --release --test chaos_soak --
//! --ignored`). A scaled-down smoke variant always runs.

use clusterworx::AuditEntry;
use cwx_chaos::{campaign_config, run_campaign_sim, soak, CampaignReport, InvariantPolicy};
use cwx_util::time::SimDuration;

/// The flapping node in [`soak`]'s schedule.
const FLAPPER: u32 = 7;

fn run_soak(seed: u64) -> (CampaignReport, cwx_util::sim::Sim<clusterworx::World>) {
    let c = soak(seed);
    assert!(c.n_nodes >= 400, "the soak must cover at least 400 nodes");
    run_campaign_sim(&c, campaign_config(&c), InvariantPolicy::default())
}

fn assert_soak_clean(seed: u64) -> CampaignReport {
    let (r, sim) = run_soak(seed);
    let w = sim.world();

    // 1. every invariant held, the whole way through
    assert_eq!(r.violations, vec![], "seed {seed}: {:#?}", r.violations);

    // 2. the flapper was quarantined — exactly one audit event
    let trips: Vec<_> = w
        .control
        .audit()
        .iter()
        .filter(|rec| {
            rec.node == Some(FLAPPER) && matches!(rec.entry, AuditEntry::Quarantined { .. })
        })
        .collect();
    assert_eq!(
        trips.len(),
        1,
        "seed {seed}: the flapper quarantines exactly once, got {trips:#?}"
    );

    // 3. ...with at most one notification episode afterwards: once the
    // node is parked dark its events stop re-opening episodes, so the
    // outbox must not keep paging the admin about it.
    let t_quarantine = trips[0].time;
    let flap_mail_after = w
        .server
        .outbox()
        .iter()
        .filter(|e| e.at > t_quarantine + SimDuration::from_secs(60) && e.nodes.contains(&FLAPPER))
        .count();
    assert!(
        flap_mail_after <= 1,
        "seed {seed}: quarantine must silence the flapper's mail storm, \
         got {flap_mail_after} emails after quarantine"
    );

    // 4. convergence: everyone back up within the settle window
    assert_eq!(
        r.final_up as u32, r.n_nodes,
        "seed {seed}: all-Up after the final heal (quarantined at end: {:?})",
        r.quarantined
    );

    // sanity on the metrics the report carries into E14 / CI artifacts
    assert!(r.detection_latency_secs.is_finite());
    assert!(
        r.availability > 0.8 && r.availability <= 1.0,
        "{}",
        r.availability
    );
    r
}

#[test]
#[ignore = "release-mode soak (CI chaos-soak job); debug builds take minutes"]
fn soak_400_nodes_survives_the_campaign() {
    assert_soak_clean(4001);
}

#[test]
#[ignore = "release-mode soak (CI chaos-soak job); debug builds take minutes"]
fn soak_other_seeds_survive_too() {
    // CI sweeps three fixed seeds; the first lives in the test above.
    assert_soak_clean(4002);
    assert_soak_clean(4003);
}

#[test]
#[ignore = "release-mode soak (CI chaos-soak job); debug builds take minutes"]
fn soak_same_seed_same_audit_hash() {
    let (a, _) = run_soak(4001);
    let (b, _) = run_soak(4001);
    assert_eq!(a.audit_hash, b.audit_hash, "the soak must be reproducible");
    assert_eq!(a.audit_len, b.audit_len);
}

/// A scaled-down version of the same promise that always runs: one
/// partitioned rack, one chassis restart, one crashed agent, one
/// flapper — zero violations, flapper quarantined, convergence,
/// reproducibility.
#[test]
fn soak_smoke_scaled_down() {
    use cwx_chaos::FaultKind::*;
    let c = cwx_chaos::Campaign::new("soak-smoke", 4009, 60, 1400.0)
        .flap_threshold(6)
        .release_after(500.0)
        .at(240.0, KernelPanic(FLAPPER))
        .at(390.0, KernelPanic(FLAPPER))
        .at(540.0, KernelPanic(FLAPPER))
        .at(690.0, KernelPanic(FLAPPER))
        .at(840.0, KernelPanic(FLAPPER))
        .at(990.0, KernelPanic(FLAPPER))
        .at(300.0, PartitionRack(3))
        .at(520.0, HealRack(3))
        .at(450.0, ChassisRestart(5))
        .at(350.0, AgentCrash(31))
        .at(1100.0, AgentRecover(31))
        .settle(800.0);
    let (a, sim) = run_campaign_sim(&c, campaign_config(&c), InvariantPolicy::default());
    assert_eq!(a.violations, vec![], "{:#?}", a.violations);
    assert_eq!(
        a.final_up as u32, a.n_nodes,
        "quarantined: {:?}",
        a.quarantined
    );
    let trips = sim
        .world()
        .control
        .audit()
        .iter()
        .filter(|rec| {
            rec.node == Some(FLAPPER) && matches!(rec.entry, AuditEntry::Quarantined { .. })
        })
        .count();
    assert_eq!(trips, 1, "the flapper quarantines exactly once");
    let (b, _) = run_campaign_sim(&c, campaign_config(&c), InvariantPolicy::default());
    assert_eq!(a.audit_hash, b.audit_hash);
}
