//! A minimal JSON reader for the artifacts this crate itself emits
//! (`coverage.json` merging across runs, determinism tests poking at
//! `result.json`). Numbers become `f64` — every count we emit fits —
//! and objects preserve key order so re-serialization is stable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|x| *x >= 0.0).map(|x| x as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document. The whole input must be one value.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "offset {}: expected {:?}, got {:?}",
                self.pos, b as char, self.bytes[self.pos] as char
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("offset {}: expected {word}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            members.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "offset {}: bad object: {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "offset {}: bad array: {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // re-assemble multi-byte UTF-8 runs byte-for-byte
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("offset {start}: bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_shapes_artifacts_use() {
        let v = parse(
            r#"{"schema":"cwx-coverage-v1","runs":3,"ok":true,"none":null,
                "cells":[{"fault":"agent-crash","count":2.5},{"fault":"kernel \"panic\"","count":-1}]}"#,
        )
        .expect("parses");
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells[0].get("count").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            cells[1].get("fault").unwrap().as_str(),
            Some("kernel \"panic\"")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
