//! cwx-scenario — the unified scenario runtime for the ClusterWorX
//! reproduction.
//!
//! One versioned TOML manifest (`scenario_version = 1`) composes
//! everything a reproducible experiment needs: the cluster shape, a
//! chaos campaign or federation topology, the invariant policy,
//! resource limits and pass/fail assertions. `cwx run manifest.toml`
//! executes it headless and emits machine-readable artifacts:
//!
//! - `result.json` — outcome, metrics, invariant verdicts, assertion
//!   results and a coverage record, fingerprinted with FNV-1a over the
//!   deterministic body (wall-clock timings sit outside the
//!   fingerprint, in a separate `timing` section);
//! - JUnit XML — one test case per invariant promise and assertion,
//!   so CI dashboards ingest scenario runs natively;
//! - `coverage.json` — a FaultKind × lifecycle-state × scale
//!   scoreboard merged across runs.
//!
//! Exit codes are a contract: 0 pass, 1 assertion failure, 2 invariant
//! violation, 3 manifest or operational error. The legacy `cwx chaos
//! run` and `cwx fed sim` flag interfaces lower into [`Manifest`]
//! values via [`Manifest::from_campaign`] / [`Manifest::federation`]
//! and ride the same runtime, so there is exactly one execution path
//! to trust.
//!
//! Because every run is deterministic, it can also be frozen and
//! replayed: [`run_scenario_with`] captures `cwx-snapshot-v1` world
//! snapshots at requested instants (or a `[checkpoints]` manifest
//! section) and resumes from one via verified replay with a bit-exact
//! fingerprint guarantee, and [`bisect_scenario`] binary-searches a
//! failing scenario's fault schedule down to the minimal failing
//! prefix. See the [`snapshot`] and [`bisect`] modules.

#![warn(missing_docs)]

pub mod artifact;
pub mod bisect;
pub mod coverage;
pub mod json;
pub mod manifest;
pub mod run;
pub mod snapshot;
pub mod toml;

pub use artifact::{esc_json, fnv1a, json_num, junit_xml, AssertionResult, JunitCase};
pub use bisect::{bisect_scenario, BisectReport};
pub use coverage::{scale_band, state_slug, CoverageRun, Scoreboard, SCALE_BANDS, STATE_SLUGS};
pub use manifest::{
    Assertions, ChaosSpec, FedFault, FedSpec, FinalUp, Limits, Manifest, ManifestError, Mode,
    SCENARIO_VERSION,
};
pub use run::{run_scenario, run_scenario_with, Outcome, RunOptions, ScenarioResult};
pub use snapshot::{build_snapshot, check_resumable, prefix_identity, secs_to_nanos};
