//! The scenario-coverage scoreboard: which FaultKinds × lifecycle
//! states × fleet scales have actually been exercised, as a
//! first-class, diffable artifact.
//!
//! Each scenario run contributes one [`CoverageRun`]: the fault kinds
//! it injected, the lifecycle states the fleet passed through, and the
//! scale band of the fleet. A [`Scoreboard`] merges runs — typically
//! across a whole CI job via `coverage.json` — so uncovered
//! fault × state cells are visible per PR instead of silently
//! untested.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use clusterworx::lifecycle::LifecycleState;
use cwx_chaos::FAULT_SLUGS;

use crate::artifact::esc_json;
use crate::json::{self, Json};

/// Lifecycle state names the scoreboard tracks (the `Failed(_)`
/// reasons collapse into one row).
pub const STATE_SLUGS: [&str; 9] = [
    "Off",
    "PoweringOn",
    "Bios",
    "Cloning",
    "Up",
    "Draining",
    "Halted",
    "Quarantined",
    "Failed",
];

/// Scoreboard name of a lifecycle state.
pub fn state_slug(state: LifecycleState) -> &'static str {
    match state {
        LifecycleState::Off => "Off",
        LifecycleState::PoweringOn => "PoweringOn",
        LifecycleState::Bios => "Bios",
        LifecycleState::Cloning => "Cloning",
        LifecycleState::Up => "Up",
        LifecycleState::Draining => "Draining",
        LifecycleState::Halted => "Halted",
        LifecycleState::Quarantined => "Quarantined",
        LifecycleState::Failed(_) => "Failed",
    }
}

/// Fleet-scale bands, smallest first.
pub const SCALE_BANDS: [&str; 3] = ["small", "medium", "large"];

/// Band a fleet size: `small` < 100 nodes ≤ `medium` < 1000 ≤ `large`.
pub fn scale_band(n_nodes: u32) -> &'static str {
    if n_nodes < 100 {
        "small"
    } else if n_nodes < 1000 {
        "medium"
    } else {
        "large"
    }
}

/// What one scenario run exercised.
#[derive(Debug, Clone, Default)]
pub struct CoverageRun {
    /// Scale band of the fleet.
    pub scale: &'static str,
    /// Fault kinds the manifest injected.
    pub faults: BTreeSet<&'static str>,
    /// Lifecycle states any node passed through.
    pub states: BTreeSet<&'static str>,
}

impl CoverageRun {
    /// The `coverage` object embedded in `result.json`.
    pub fn to_json(&self) -> String {
        let list = |xs: &BTreeSet<&'static str>| {
            xs.iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"scale\":\"{}\",\"faults\":[{}],\"states\":[{}]}}",
            self.scale,
            list(&self.faults),
            list(&self.states)
        )
    }
}

#[derive(Debug, Clone, Default)]
struct Cell {
    runs: u64,
    scales: BTreeSet<String>,
}

/// Merged coverage across many runs: one cell per (fault, state) pair
/// that some run exercised together.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    runs: u64,
    cells: BTreeMap<(String, String), Cell>,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Runs merged so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Covered (fault, state) cells so far.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Fold one run in: every injected fault is credited against every
    /// state the fleet visited during that run, at the run's scale.
    pub fn record(&mut self, run: &CoverageRun) {
        self.runs += 1;
        for f in &run.faults {
            for s in &run.states {
                let cell = self
                    .cells
                    .entry((f.to_string(), s.to_string()))
                    .or_default();
                cell.runs += 1;
                cell.scales.insert(run.scale.to_string());
            }
        }
    }

    /// Fault kinds no merged run has injected.
    pub fn uncovered_faults(&self) -> Vec<&'static str> {
        FAULT_SLUGS
            .iter()
            .copied()
            .filter(|f| !self.cells.keys().any(|(cf, _)| cf == f))
            .collect()
    }

    /// Lifecycle states no merged run has observed.
    pub fn uncovered_states(&self) -> Vec<&'static str> {
        STATE_SLUGS
            .iter()
            .copied()
            .filter(|s| !self.cells.keys().any(|(_, cs)| cs == s))
            .collect()
    }

    /// Serialize as `coverage.json` (`cwx-coverage-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"cwx-coverage-v1\",\"runs\":{},\"fault_kinds\":{},\"states\":{},\"covered_cells\":{}",
            self.runs,
            FAULT_SLUGS.len(),
            STATE_SLUGS.len(),
            self.cells.len()
        );
        out.push_str(",\"cells\":[");
        for (i, ((fault, state), cell)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let scales = cell
                .scales
                .iter()
                .map(|s| format!("\"{}\"", esc_json(s)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"fault\":\"{}\",\"state\":\"{}\",\"runs\":{},\"scales\":[{scales}]}}",
                esc_json(fault),
                esc_json(state),
                cell.runs
            );
        }
        out.push(']');
        let list = |xs: Vec<&'static str>| {
            xs.iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(
            out,
            ",\"uncovered_faults\":[{}],\"uncovered_states\":[{}]}}",
            list(self.uncovered_faults()),
            list(self.uncovered_states())
        );
        out
    }

    /// Parse a `coverage.json` previously written by [`Self::to_json`]
    /// so CI can merge a new run into an existing scoreboard file.
    pub fn from_json(text: &str) -> Result<Scoreboard, String> {
        let doc = json::parse(text)?;
        if doc.get("schema").and_then(Json::as_str) != Some("cwx-coverage-v1") {
            return Err("not a cwx-coverage-v1 document".to_string());
        }
        let runs = doc
            .get("runs")
            .and_then(Json::as_u64)
            .ok_or("missing `runs`")?;
        let mut cells = BTreeMap::new();
        for cell in doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing `cells`")?
        {
            let field = |k: &str| {
                cell.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("cell missing `{k}`"))
            };
            let scales = cell
                .get("scales")
                .and_then(Json::as_arr)
                .ok_or("cell missing `scales`")?
                .iter()
                .filter_map(|s| s.as_str().map(str::to_string))
                .collect();
            cells.insert(
                (field("fault")?, field("state")?),
                Cell {
                    runs: cell.get("runs").and_then(Json::as_u64).unwrap_or(1),
                    scales,
                },
            );
        }
        Ok(Scoreboard { runs, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scale: &'static str, faults: &[&'static str], states: &[&'static str]) -> CoverageRun {
        CoverageRun {
            scale,
            faults: faults.iter().copied().collect(),
            states: states.iter().copied().collect(),
        }
    }

    #[test]
    fn records_cross_product_and_merges() {
        let mut b = Scoreboard::new();
        b.record(&run("small", &["kernel-panic"], &["Off", "Up"]));
        b.record(&run("medium", &["kernel-panic", "agent-crash"], &["Up"]));
        assert_eq!(b.runs(), 2);
        assert_eq!(b.cells(), 3); // panic×Off, panic×Up, crash×Up
        assert!(b.uncovered_faults().contains(&"psu-failure"));
        assert!(b.uncovered_states().contains(&"Quarantined"));
        assert!(!b.uncovered_faults().contains(&"agent-crash"));
    }

    #[test]
    fn json_round_trip_preserves_the_scoreboard() {
        let mut b = Scoreboard::new();
        b.record(&run("small", &["agent-hang"], &["Up", "Bios"]));
        b.record(&run("large", &["agent-hang"], &["Up"]));
        let text = b.to_json();
        let back = Scoreboard::from_json(&text).expect("parses own output");
        assert_eq!(back.runs(), 2);
        assert_eq!(back.cells(), 2);
        assert_eq!(back.to_json(), text, "round trip is byte-stable");
        assert!(text.contains("\"scales\":[\"large\",\"small\"]"), "{text}");
    }

    #[test]
    fn scale_bands_partition_fleet_sizes() {
        assert_eq!(scale_band(60), "small");
        assert_eq!(scale_band(400), "medium");
        assert_eq!(scale_band(10_000), "large");
    }

    #[test]
    fn from_json_rejects_other_documents() {
        assert!(Scoreboard::from_json("{}").is_err());
        assert!(Scoreboard::from_json("{\"schema\":\"cwx-result-v1\"}").is_err());
        assert!(Scoreboard::from_json("not json").is_err());
    }
}
