//! Scenario-level snapshot assembly: the prefix-identity hash that
//! pins a snapshot to its (manifest, seed, fault-prefix), file
//! building, and load-time validation.
//!
//! The world capture itself lives next to each engine
//! ([`clusterworx::snapshot`], [`cwx_fed::FederationSim::capture_sections`]);
//! this module decides *when* captures happen and what makes a
//! snapshot file acceptable for resume.
//!
//! Resume is **verified replay**: the runtime cannot deserialize
//! closures out of a file, so `--resume-from` re-derives the world
//! from (manifest, seed), replays it to the snapshot instant using
//! fingerprint-neutral splits, and byte-compares every captured
//! section against the file before continuing. A divergence is a
//! hard exit-3 error naming the first section that differs — never a
//! silently different run.

use std::fmt::Write as _;

use cwx_util::hash::fnv1a;
use cwx_util::snapshot::{SnapshotFile, MODE_CHAOS, MODE_FEDERATION};
use cwx_util::time::SimDuration;

use crate::manifest::{FedFault, FedSpec, Manifest, Mode};

/// Convert a manifest time (simulated seconds) to the runner's
/// nanosecond grid — the single conversion both capture and resume
/// use, so a time recorded in a snapshot file replays exactly.
pub fn secs_to_nanos(t: f64) -> u64 {
    SimDuration::from_secs_f64(t).as_nanos()
}

/// The snapshot mode byte for a manifest.
pub fn mode_byte(m: &Manifest) -> u8 {
    match &m.mode {
        Mode::Chaos(_) => MODE_CHAOS,
        Mode::Federation(_) => MODE_FEDERATION,
    }
}

/// Identity hash of everything that shapes the simulated world up to
/// `t_nanos`: seed, cluster/federation shape, invariant policy, and
/// the faults that are part of the world state at the snapshot
/// instant.
///
/// Which faults count is mode-specific, and honestly so. A chaos
/// campaign schedules its **entire** fault list into the event wheel
/// at build time, so even a fault that fires after `t_nanos` is
/// already pending engine state at the snapshot — all faults are
/// identity. A federation runner applies faults externally as it
/// walks the schedule, so only faults at or before `t_nanos` shape
/// the world — the prefix is identity, and a snapshot can seed many
/// continuations that differ only in later faults ("fork-many").
///
/// Deliberately excluded in both modes: the scenario `name`,
/// `[assertions]`, `[limits]` and `[checkpoints]` — none influence
/// the world's trajectory, so those can always vary across a resume.
pub fn prefix_identity(m: &Manifest, t_nanos: u64) -> u64 {
    let mut s = String::new();
    match &m.mode {
        Mode::Chaos(spec) => {
            let c = &spec.campaign;
            let _ = write!(
                s,
                "chaos seed={} nodes={} rack_network={} flap={:?} release={:?} \
                 duration={} settle={} policy={:?};",
                m.seed,
                c.n_nodes,
                spec.rack_network,
                c.flap_threshold,
                c.quarantine_release_secs,
                secs_to_nanos(c.duration_secs),
                secs_to_nanos(c.settle_secs),
                spec.policy
            );
        }
        Mode::Federation(spec) => {
            let _ = write!(
                s,
                "federation seed={} clusters={} nodes_per={} uplink={} stale={} \
                 duration={} settle={};",
                m.seed,
                spec.clusters,
                spec.nodes_per_cluster,
                secs_to_nanos(spec.uplink_secs),
                secs_to_nanos(spec.stale_after_secs),
                secs_to_nanos(spec.duration_secs),
                secs_to_nanos(spec.settle_secs)
            );
        }
    }
    let prefix_only = matches!(m.mode, Mode::Federation(_));
    for (at, desc) in m.fault_schedule() {
        let at_n = secs_to_nanos(at);
        if !prefix_only || at_n <= t_nanos {
            let _ = write!(s, "fault@{at_n} {desc};");
        }
    }
    fnv1a(s.as_bytes())
}

/// Assemble an encodable snapshot from the sections an engine
/// captured at `t_nanos`.
pub fn build_snapshot(
    m: &Manifest,
    t_nanos: u64,
    sections: Vec<(String, Vec<u8>)>,
) -> SnapshotFile {
    SnapshotFile {
        identity: prefix_identity(m, t_nanos),
        t_nanos,
        mode: mode_byte(m),
        sections,
    }
}

/// Check that a loaded snapshot is resumable under this manifest:
/// same mode, same prefix identity, instant inside the run. Every
/// rejection is a single-line message suitable for stderr + exit 3.
pub fn check_resumable(m: &Manifest, file: &SnapshotFile) -> Result<(), String> {
    let want_mode = mode_byte(m);
    if file.mode != want_mode {
        let name = |b: u8| {
            if b == MODE_CHAOS {
                "chaos"
            } else {
                "federation"
            }
        };
        return Err(format!(
            "snapshot was taken in {} mode but the manifest is {} mode",
            name(file.mode),
            name(want_mode)
        ));
    }
    let total_n = match &m.mode {
        Mode::Chaos(spec) => secs_to_nanos(spec.campaign.duration_secs + spec.campaign.settle_secs),
        Mode::Federation(spec) => secs_to_nanos(spec.duration_secs + spec.settle_secs),
    };
    if file.t_nanos > total_n {
        return Err(format!(
            "snapshot instant {}s is beyond this run's horizon of {}s",
            file.t_nanos as f64 / 1e9,
            total_n as f64 / 1e9
        ));
    }
    let want = prefix_identity(m, file.t_nanos);
    if file.identity != want {
        return Err(format!(
            "snapshot identity {:016x} does not match this manifest's prefix identity {want:016x} \
             (seed, cluster shape, policy, or a fault at or before the snapshot instant differs)",
            file.identity
        ));
    }
    Ok(())
}

/// The instants a federation run can actually stop at, for a set of
/// requested capture times: each requested time rounds **up** to the
/// next place the runner pauses — an uplink-epoch boundary within the
/// current fault segment, or the segment end itself (a fault instant
/// or the end of the run), whichever comes first.
///
/// Returned ascending and deduplicated. Times beyond the run are
/// dropped. A time that is already an effective instant (e.g. one
/// read back from a snapshot file) maps to itself, which is what
/// makes capture and resume agree on where to pause.
pub fn fed_effective_times(spec: &FedSpec, requested: &[u64]) -> Vec<u64> {
    let uplink_n = secs_to_nanos(spec.uplink_secs).max(1);
    let total_n = secs_to_nanos(spec.duration_secs + spec.settle_secs);
    let mut req: Vec<u64> = requested
        .iter()
        .copied()
        .filter(|&t| t <= total_n)
        .collect();
    req.sort_unstable();
    req.dedup();

    let mut out = Vec::with_capacity(req.len());
    let mut req_it = req.into_iter().peekable();
    let mut seg_start = 0u64;
    for seg_end in fed_segment_ends(spec) {
        while let Some(&t) = req_it.peek() {
            if t > seg_end {
                break;
            }
            let aligned = if t <= seg_start {
                seg_start
            } else {
                let k = (t - seg_start).div_ceil(uplink_n);
                seg_start.saturating_add(k.saturating_mul(uplink_n))
            };
            out.push(aligned.min(seg_end));
            req_it.next();
        }
        seg_start = seg_end;
    }
    out.dedup();
    out
}

/// The federation runner's stop points in nanoseconds: each distinct
/// fault instant, then the end of the run. Shared by the runner and
/// [`fed_effective_times`] so both walk identical segments.
pub(crate) fn fed_segment_ends(spec: &FedSpec) -> Vec<u64> {
    let total_n = secs_to_nanos(spec.duration_secs + spec.settle_secs);
    let mut faults = spec.faults.clone();
    faults.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut ends: Vec<u64> = faults
        .iter()
        .map(|(at, _)| secs_to_nanos(*at))
        .filter(|&n| n > 0 && n < total_n)
        .collect();
    ends.dedup();
    ends.push(total_n);
    ends
}

/// The faults scheduled at exactly `at_nanos` on the runner's grid, in
/// manifest-application order.
pub(crate) fn fed_faults_at(spec: &FedSpec, at_nanos: u64) -> Vec<FedFault> {
    let mut faults = spec.faults.clone();
    faults.sort_by(|a, b| a.0.total_cmp(&b.0));
    faults
        .iter()
        .filter(|(at, _)| secs_to_nanos(*at) == at_nanos)
        .map(|(_, f)| *f)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed_manifest(extra_fault: bool) -> Manifest {
        let mut text = String::from(
            "scenario_version = 1\nname = \"f\"\nseed = 9\n\
             [federation]\nclusters = 2\nnodes_per_cluster = 4\nuplink = 10\n\
             [run]\nduration = 100\nsettle = 20\n\
             [[fault]]\nat = 35\nkind = \"cluster-disconnect\"\ncluster = 1\n",
        );
        if extra_fault {
            text.push_str("[[fault]]\nat = 80\nkind = \"cluster-heal\"\ncluster = 1\n");
        }
        Manifest::parse(&text).expect("parses")
    }

    #[test]
    fn identity_ignores_suffix_faults_and_name() {
        let a = fed_manifest(false);
        let b = fed_manifest(true);
        let t = secs_to_nanos(50.0);
        // the extra fault lands at 80s, after the snapshot instant
        assert_eq!(prefix_identity(&a, t), prefix_identity(&b, t));
        // ...but is part of the identity at 80s and later
        assert_ne!(
            prefix_identity(&a, secs_to_nanos(90.0)),
            prefix_identity(&b, secs_to_nanos(90.0))
        );
        // a different seed changes every identity
        let mut c = fed_manifest(false);
        c.set_seed(10);
        assert_ne!(prefix_identity(&a, t), prefix_identity(&c, t));
        // the name is deliberately not part of the identity
        let mut d = fed_manifest(false);
        d.name = "renamed".to_string();
        assert_eq!(prefix_identity(&a, t), prefix_identity(&d, t));
    }

    #[test]
    fn fed_times_round_up_to_epoch_boundaries() {
        let m = fed_manifest(true);
        let Mode::Federation(spec) = &m.mode else {
            panic!()
        };
        let s = secs_to_nanos;
        // segments: [0,35], [35,80], [80,120]; uplink 10s
        // 12s -> epoch boundary 20s; 31s -> capped at segment end 35s;
        // 40s -> 35+10 = 45s; 35s -> itself (a segment end);
        // 119s -> capped at 120s; 300s -> dropped (beyond the run)
        let eff = fed_effective_times(
            spec,
            &[s(12.0), s(31.0), s(35.0), s(40.0), s(119.0), s(300.0)],
        );
        assert_eq!(eff, vec![s(20.0), s(35.0), s(45.0), s(120.0)]);
        // effective instants are fixed points
        assert_eq!(fed_effective_times(spec, &eff), eff);
    }

    #[test]
    fn resumable_checks_mode_identity_and_horizon() {
        let m = fed_manifest(false);
        let t = secs_to_nanos(50.0);
        let file = build_snapshot(&m, t, vec![("fed".into(), vec![1, 2, 3])]);
        assert!(check_resumable(&m, &file).is_ok());

        let mut other = fed_manifest(false);
        other.set_seed(1234);
        let err = check_resumable(&other, &file).expect_err("identity mismatch");
        assert!(err.contains("identity"), "{err}");

        let mut late = file.clone();
        late.t_nanos = secs_to_nanos(5000.0);
        let err = check_resumable(&m, &late).expect_err("beyond horizon");
        assert!(err.contains("horizon"), "{err}");

        let chaos = Manifest::parse(
            "scenario_version = 1\nname = \"c\"\n[cluster]\nnodes = 4\n[run]\nduration = 100",
        )
        .expect("parses");
        let err = check_resumable(&chaos, &file).expect_err("mode mismatch");
        assert!(err.contains("mode"), "{err}");
    }
}
