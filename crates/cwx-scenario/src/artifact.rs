//! Machine-readable artifact primitives: JSON string building (the
//! container has no serde), the FNV-1a fingerprint that pins a run's
//! deterministic body, and JUnit XML rendering for CI ingestion.

use std::fmt::Write as _;

/// Escape a string for embedding in JSON.
pub fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float for JSON; JSON has no NaN, so non-finite values
/// become `null` (campaigns without outages report NaN latencies).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// FNV-1a over raw bytes: the dependency-free fingerprint both the
/// audit-trail hash and the `result.json` body fingerprint use.
/// Re-exported from the workspace-canonical [`cwx_util::hash`].
pub use cwx_util::hash::fnv1a;

/// One evaluated `[assertions]` entry.
#[derive(Debug, Clone)]
pub struct AssertionResult {
    /// Stable assertion name (the manifest key).
    pub name: String,
    /// What the manifest demanded.
    pub expected: String,
    /// What the run produced.
    pub actual: String,
    /// Whether the demand held.
    pub ok: bool,
}

impl AssertionResult {
    /// JSON object rendering for `result.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"expected\":\"{}\",\"actual\":\"{}\",\"ok\":{}}}",
            esc_json(&self.name),
            esc_json(&self.expected),
            esc_json(&self.actual),
            self.ok
        )
    }
}

/// Escape a string for XML text or attribute content.
pub fn esc_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// One JUnit test case: an invariant promise or a manifest assertion.
#[derive(Debug, Clone)]
pub struct JunitCase {
    /// Case name, e.g. `invariant:command-accounting`.
    pub name: String,
    /// `Some(message)` when the case failed.
    pub failure: Option<String>,
}

/// Render a JUnit XML document with one `<testsuite>` for the run.
pub fn junit_xml(suite: &str, cases: &[JunitCase], wall_secs: f64) -> String {
    let failures = cases.iter().filter(|c| c.failure.is_some()).count();
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        out,
        "<testsuites tests=\"{}\" failures=\"{failures}\">",
        cases.len()
    );
    let _ = writeln!(
        out,
        "  <testsuite name=\"{}\" tests=\"{}\" failures=\"{failures}\" errors=\"0\" skipped=\"0\" time=\"{wall_secs:.3}\">",
        esc_xml(suite),
        cases.len()
    );
    for c in cases {
        match &c.failure {
            None => {
                let _ = writeln!(
                    out,
                    "    <testcase classname=\"cwx.scenario\" name=\"{}\"/>",
                    esc_xml(&c.name)
                );
            }
            Some(msg) => {
                let _ = writeln!(
                    out,
                    "    <testcase classname=\"cwx.scenario\" name=\"{}\">",
                    esc_xml(&c.name)
                );
                let _ = writeln!(out, "      <failure message=\"{}\"/>", esc_xml(msg));
                out.push_str("    </testcase>\n");
            }
        }
    }
    out.push_str("  </testsuite>\n</testsuites>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn junit_counts_and_escapes_failures() {
        let xml = junit_xml(
            "demo",
            &[
                JunitCase {
                    name: "invariant:legal".into(),
                    failure: None,
                },
                JunitCase {
                    name: "assert:final_up".into(),
                    failure: Some("expected \"all\" & got <39>".into()),
                },
            ],
            1.25,
        );
        assert!(xml.contains("tests=\"2\" failures=\"1\""), "{xml}");
        assert!(xml.contains("name=\"invariant:legal\"/>"), "{xml}");
        assert!(
            xml.contains("expected &quot;all&quot; &amp; got &lt;39&gt;"),
            "{xml}"
        );
    }

    #[test]
    fn json_escaping_and_nan_policy() {
        assert_eq!(esc_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(0.25), "0.25");
        // the FNV constant matches the chaos audit hash implementation
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
