//! The headless scenario runtime: execute a validated [`Manifest`],
//! evaluate its invariants and assertions, and render machine-readable
//! artifacts (`result.json`, JUnit XML) plus a stable exit code.
//!
//! Artifact determinism is a contract: everything inside the result
//! body is a pure function of (manifest, seed), and the body's FNV-1a
//! fingerprint pins it. Wall-clock measurements live in a separate
//! `timing` section appended *after* the fingerprint is computed, so
//! they can never leak into it.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use cwx_chaos::{campaign_config, run_campaign_sim_observed, CampaignReport, INVARIANT_NAMES};
use cwx_fed::{FederationConfig, FederationSim};
use cwx_util::snapshot::SnapshotFile;
use cwx_util::time::SimDuration;

use crate::artifact::{esc_json, fnv1a, json_num, junit_xml, AssertionResult, JunitCase};
use crate::coverage::{scale_band, state_slug, CoverageRun};
use crate::manifest::{Assertions, ChaosSpec, FedFault, FedSpec, FinalUp, Manifest, Mode};
use crate::snapshot::{
    build_snapshot, check_resumable, fed_effective_times, fed_faults_at, fed_segment_ends,
    secs_to_nanos,
};

/// World sections captured at one instant, as an engine produced them.
type Captured = Vec<(u64, Vec<(String, Vec<u8>)>)>;

/// How a scenario run ended, in exit-code order. These four codes are
/// the CLI-wide contract: every `cwx` subcommand exits with one of
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every invariant held and every assertion passed.
    Pass,
    /// An `[assertions]` demand failed.
    AssertionFail,
    /// The management plane broke one of its own invariants.
    InvariantViolation,
    /// The run itself could not proceed (bad manifest, I/O failure,
    /// blown resource limit).
    Error,
}

impl Outcome {
    /// The process exit code: 0 pass, 1 assertion failure, 2 invariant
    /// violation, 3 manifest/operational error.
    pub fn exit_code(self) -> i32 {
        match self {
            Outcome::Pass => 0,
            Outcome::AssertionFail => 1,
            Outcome::InvariantViolation => 2,
            Outcome::Error => 3,
        }
    }

    /// Stable name artifacts carry.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::AssertionFail => "assertion-fail",
            Outcome::InvariantViolation => "invariant-violation",
            Outcome::Error => "error",
        }
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Final outcome (wall-limit breaches included).
    pub outcome: Outcome,
    /// FNV-1a fingerprint of the deterministic result body.
    pub fingerprint: u64,
    /// The full `result.json` document (body + fingerprint + timing).
    pub result_json: String,
    /// JUnit XML for CI ingestion.
    pub junit: String,
    /// This run's coverage contribution.
    pub coverage: CoverageRun,
    /// Human-readable summary lines for the CLI to print.
    pub summary: Vec<String>,
    /// World snapshots captured at the requested instants (manifest
    /// `[checkpoints]` plus `--snapshot-at`), ready to encode to disk.
    /// Capture is fingerprint-neutral: the same run with no snapshots
    /// produces the identical `fingerprint`.
    pub snapshots: Vec<SnapshotFile>,
    /// Name of the first failed JUnit case (`invariant:NAME` or
    /// `assert:NAME`), when the run did not pass — what `cwx bisect`
    /// reports as the violated promise.
    pub first_failure: Option<String>,
}

/// Snapshot capture/resume options for [`run_scenario_with`].
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Extra capture instants in simulated seconds (the CLI's
    /// `--snapshot-at`), merged with the manifest's `[checkpoints]`.
    pub snapshot_at: Vec<f64>,
    /// Resume from this snapshot: re-derive the world from (manifest,
    /// seed), replay to the snapshot instant with fingerprint-neutral
    /// splits, byte-verify every section against the file, then
    /// continue. Verification failure is a hard error, not a warning.
    pub resume: Option<SnapshotFile>,
}

/// Execute a manifest headlessly and render its artifacts.
pub fn run_scenario(m: &Manifest) -> ScenarioResult {
    run_scenario_with(m, &RunOptions::default()).expect("a run without resume options cannot fail")
}

/// [`run_scenario`] with snapshot capture and resume. Errors are
/// single-line operational failures (exit 3 at the CLI): an invalid
/// capture time, an unacceptable snapshot file, or a resume replay
/// that diverged from the file.
pub fn run_scenario_with(m: &Manifest, opts: &RunOptions) -> Result<ScenarioResult, String> {
    let t0 = Instant::now();

    // the capture plan: manifest checkpoints + CLI instants + (for
    // resume) the snapshot's own instant, on the nanosecond grid
    let total_n = match &m.mode {
        Mode::Chaos(spec) => secs_to_nanos(spec.campaign.duration_secs + spec.campaign.settle_secs),
        Mode::Federation(spec) => secs_to_nanos(spec.duration_secs + spec.settle_secs),
    };
    let mut emit_n: Vec<u64> = m.checkpoints.iter().map(|&t| secs_to_nanos(t)).collect();
    for &t in &opts.snapshot_at {
        if !t.is_finite() || t < 0.0 {
            return Err(format!("snapshot time {t} is not a valid instant"));
        }
        let n = secs_to_nanos(t);
        if n > total_n {
            return Err(format!(
                "snapshot time {t}s is beyond this run's horizon of {}s",
                total_n as f64 / 1e9
            ));
        }
        emit_n.push(n);
    }
    emit_n.sort_unstable();
    emit_n.dedup();
    if let Mode::Federation(spec) = &m.mode {
        // federation pauses only on uplink-epoch boundaries
        emit_n = fed_effective_times(spec, &emit_n);
    }
    let mut at_nanos = emit_n.clone();
    if let Some(file) = &opts.resume {
        check_resumable(m, file)?;
        at_nanos.push(file.t_nanos);
        at_nanos.sort_unstable();
        at_nanos.dedup();
        if let Mode::Federation(spec) = &m.mode {
            if fed_effective_times(spec, &[file.t_nanos]) != vec![file.t_nanos] {
                return Err(format!(
                    "snapshot instant {}s does not land on an uplink-epoch boundary of this \
                     schedule (was it taken under a different fault schedule?)",
                    file.t_nanos as f64 / 1e9
                ));
            }
        }
    }

    let mut captured: Captured = Vec::new();
    let (body_tail, cases, coverage, mut summary, sim_outcome) = match &m.mode {
        Mode::Chaos(spec) => run_chaos(m, spec, &at_nanos, &mut captured),
        Mode::Federation(spec) => run_federation(m, spec, &at_nanos, &mut captured),
    };

    // verified replay: the rebuilt world at the snapshot instant must
    // byte-match the file, section by section
    if let Some(file) = &opts.resume {
        let live = captured
            .iter()
            .find(|(t, _)| *t == file.t_nanos)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                format!(
                    "snapshot instant {}s was never reached by the replay",
                    file.t_nanos as f64 / 1e9
                )
            })?;
        verify_sections(file, live)?;
        summary.insert(
            0,
            format!(
                "resumed from snapshot at t={}s: all {} sections verified bit-exact",
                file.t_nanos as f64 / 1e9,
                live.len()
            ),
        );
    }
    let snapshots: Vec<SnapshotFile> = captured
        .into_iter()
        .filter(|(t, _)| emit_n.contains(t))
        .map(|(t, sections)| build_snapshot(m, t, sections))
        .collect();
    let first_failure = cases
        .iter()
        .find(|c| c.failure.is_some())
        .map(|c| c.name.clone());
    let wall_ms = t0.elapsed().as_millis() as u64;

    // deterministic body: pure function of (manifest, seed)
    let mut body = format!(
        "{{\"schema\":\"cwx-result-v1\",\"name\":\"{}\",\"seed\":{},\"outcome\":\"{}\",\"exit_code\":{}",
        esc_json(&m.name),
        m.seed,
        sim_outcome.as_str(),
        sim_outcome.exit_code()
    );
    body.push_str(&body_tail);
    body.push('}');
    let fingerprint = fnv1a(body.as_bytes());

    // the wall clock rides outside the fingerprint, always
    let exceeded = m.limits.max_wall_ms.is_some_and(|mx| wall_ms > mx);
    let mut timing = format!("\"wall_ms\":{wall_ms}");
    if let Some(mx) = m.limits.max_wall_ms {
        let _ = write!(timing, ",\"max_wall_ms\":{mx},\"exceeded\":{exceeded}");
    }
    let mut result_json = body;
    result_json.pop();
    let _ = write!(
        result_json,
        ",\"fingerprint\":\"{fingerprint:016x}\",\"timing\":{{{timing}}}}}"
    );

    let outcome = if exceeded {
        summary.push(format!(
            "wall limit exceeded: {wall_ms}ms > {}ms",
            m.limits.max_wall_ms.unwrap_or(0)
        ));
        Outcome::Error
    } else {
        sim_outcome
    };
    summary.push(format!(
        "outcome: {} (exit {}) | fingerprint {fingerprint:016x}",
        outcome.as_str(),
        outcome.exit_code()
    ));

    Ok(ScenarioResult {
        outcome,
        fingerprint,
        result_json,
        junit: junit_xml(&m.name, &cases, wall_ms as f64 / 1000.0),
        coverage,
        summary,
        snapshots,
        first_failure,
    })
}

/// Byte-compare a snapshot file against the sections the replay
/// captured at the same instant, naming the first divergence.
fn verify_sections(file: &SnapshotFile, live: &[(String, Vec<u8>)]) -> Result<(), String> {
    for ((fname, fbytes), (lname, lbytes)) in file.sections.iter().zip(live) {
        if fname != lname {
            return Err(format!(
                "resume verification failed: section order diverged (file has `{fname}`, \
                 replay produced `{lname}`)"
            ));
        }
        if fbytes != lbytes {
            return Err(format!(
                "resume verification failed: section `{fname}` diverged — the replayed world \
                 does not match the snapshot (different build or corrupted capture?)"
            ));
        }
    }
    if file.sections.len() != live.len() {
        return Err(format!(
            "resume verification failed: snapshot has {} sections, replay produced {}",
            file.sections.len(),
            live.len()
        ));
    }
    Ok(())
}

type ModeOutput = (String, Vec<JunitCase>, CoverageRun, Vec<String>, Outcome);

fn push_assert(
    cases: &mut Vec<JunitCase>,
    results: &mut Vec<AssertionResult>,
    name: &str,
    expected: String,
    actual: String,
    ok: bool,
) {
    cases.push(JunitCase {
        name: format!("assert:{name}"),
        failure: (!ok).then(|| format!("expected {expected}, got {actual}")),
    });
    results.push(AssertionResult {
        name: name.to_string(),
        expected,
        actual,
        ok,
    });
}

fn assertions_json(results: &[AssertionResult]) -> String {
    let items = results
        .iter()
        .map(AssertionResult::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("\"assertions\":[{items}]")
}

fn outcome_of(any_violation: bool, asserts: &[AssertionResult]) -> Outcome {
    if any_violation {
        Outcome::InvariantViolation
    } else if asserts.iter().any(|a| !a.ok) {
        Outcome::AssertionFail
    } else {
        Outcome::Pass
    }
}

fn run_chaos(
    m: &Manifest,
    spec: &ChaosSpec,
    at_nanos: &[u64],
    captured: &mut Captured,
) -> ModeOutput {
    let campaign = &spec.campaign;
    let mut cfg = campaign_config(campaign);
    cfg.rack_network = spec.rack_network;
    let (report, sim) = run_campaign_sim_observed(
        campaign,
        cfg,
        spec.policy.to_policy(),
        at_nanos,
        &mut |t, sim| captured.push((t, clusterworx::snapshot::capture_sections(sim))),
    );

    // coverage: every injected kind × every lifecycle state any node
    // touched, at this fleet's scale band
    let w = sim.world();
    let lc = w.control.lifecycle();
    let mut states: BTreeSet<&'static str> = BTreeSet::new();
    for t in lc.log() {
        states.insert(state_slug(t.from));
        states.insert(state_slug(t.to));
    }
    for node in 0..campaign.n_nodes {
        states.insert(state_slug(lc.state(node)));
    }
    let coverage = CoverageRun {
        scale: scale_band(campaign.n_nodes),
        faults: campaign.events.iter().map(|e| e.kind.slug()).collect(),
        states,
    };

    // one JUnit case per invariant promise
    let mut cases = Vec::new();
    let mut invariants_json = String::from("\"invariants\":[");
    for (i, name) in INVARIANT_NAMES.iter().enumerate() {
        let broken: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == *name)
            .collect();
        cases.push(JunitCase {
            name: format!("invariant:{name}"),
            failure: broken
                .first()
                .map(|v| format!("{} violation(s); first: {v}", broken.len())),
        });
        if i > 0 {
            invariants_json.push(',');
        }
        let first = broken
            .first()
            .map(|v| format!("\"{}\"", esc_json(&v.to_string())))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            invariants_json,
            "{{\"name\":\"{name}\",\"violations\":{},\"first\":{first}}}",
            broken.len()
        );
    }
    invariants_json.push(']');

    let mut asserts = Vec::new();
    eval_chaos_assertions(&m.assertions, &report, &mut cases, &mut asserts);
    let outcome = outcome_of(!report.violations.is_empty(), &asserts);

    let tail = format!(
        ",\"mode\":\"chaos\",\"nodes\":{},\"duration_secs\":{},\"settle_secs\":{},\
         \"audit\":{{\"hash\":\"{:016x}\",\"records\":{}}},\
         \"metrics\":{{\"availability\":{},\"detection_latency_secs\":{},\"mttr_secs\":{},\
         \"final_up\":{},\"quarantined\":{},\"emails\":{},\"storms\":{}}},\
         {invariants_json},{},\"coverage\":{}",
        campaign.n_nodes,
        json_num(campaign.duration_secs),
        json_num(campaign.settle_secs),
        report.audit_hash,
        report.audit_len,
        json_num(report.availability),
        json_num(report.detection_latency_secs),
        json_num(report.mttr_secs),
        report.final_up,
        report.quarantined.len(),
        report.emails,
        report.storms,
        assertions_json(&asserts),
        coverage.to_json()
    );

    let summary = vec![
        format!(
            "chaos `{}`: {} nodes, {}s + {}s settle, seed {}, {} faults",
            report.name,
            report.n_nodes,
            campaign.duration_secs,
            campaign.settle_secs,
            report.seed,
            campaign.events.len()
        ),
        format!(
            "availability {:.4} | detection {:.1}s | mttr {:.1}s | {} up | {} quarantined | {} emails",
            report.availability,
            report.detection_latency_secs,
            report.mttr_secs,
            report.final_up,
            report.quarantined.len(),
            report.emails
        ),
        format!(
            "audit {:016x} ({} records) | {} invariant violation(s)",
            report.audit_hash,
            report.audit_len,
            report.violations.len()
        ),
    ];
    (tail, cases, coverage, summary, outcome)
}

fn eval_chaos_assertions(
    a: &Assertions,
    report: &CampaignReport,
    cases: &mut Vec<JunitCase>,
    out: &mut Vec<AssertionResult>,
) {
    if let Some(min) = a.min_availability {
        push_assert(
            cases,
            out,
            "min_availability",
            format!(">= {min}"),
            format!("{:.4}", report.availability),
            report.availability >= min,
        );
    }
    if let Some(want) = a.final_up {
        let expected = match want {
            FinalUp::All => report.n_nodes as u64,
            FinalUp::Exactly(n) => n,
        };
        push_assert(
            cases,
            out,
            "final_up",
            format!("{expected}"),
            format!("{}", report.final_up),
            report.final_up as u64 == expected,
        );
    }
    if let Some(max) = a.max_emails {
        push_assert(
            cases,
            out,
            "max_emails",
            format!("<= {max}"),
            format!("{}", report.emails),
            report.emails as u64 <= max,
        );
    }
    if let Some(true) = a.quarantined_empty {
        push_assert(
            cases,
            out,
            "quarantined_empty",
            "[]".to_string(),
            format!("{:?}", report.quarantined),
            report.quarantined.is_empty(),
        );
    }
    if let Some(hash) = a.audit_hash {
        push_assert(
            cases,
            out,
            "audit_hash",
            format!("{hash:016x}"),
            format!("{:016x}", report.audit_hash),
            report.audit_hash == hash,
        );
    }
}

fn run_federation(
    m: &Manifest,
    spec: &FedSpec,
    at_nanos: &[u64],
    captured: &mut Captured,
) -> ModeOutput {
    let mut cfg = FederationConfig::uniform(spec.clusters, spec.nodes_per_cluster, m.seed);
    cfg.uplink_interval = SimDuration::from_secs_f64(spec.uplink_secs);
    cfg.stale_after = SimDuration::from_secs_f64(spec.stale_after_secs);
    let mut fed = FederationSim::build(cfg);

    // piecewise advance on the nanosecond grid: each distinct fault
    // instant ends a segment, and capture instants (already aligned to
    // uplink-epoch boundaries by the caller) split segments without
    // changing the epoch schedule. Captures that coincide with a fault
    // instant see the world *before* the fault applies.
    let apply = |fed: &mut FederationSim, at: u64| {
        for f in fed_faults_at(spec, at) {
            match f {
                FedFault::Disconnect(c) => fed.disconnect(c),
                FedFault::Heal(c) => fed.heal(c),
            }
        }
    };
    let mut req = at_nanos.iter().copied().peekable();
    let mut now_n = 0u64;
    if req.peek() == Some(&0) {
        captured.push((0, fed.capture_sections()));
        req.next();
    }
    apply(&mut fed, 0);
    for seg_end in fed_segment_ends(spec) {
        while let Some(&t) = req.peek() {
            if t > seg_end {
                break;
            }
            if t > now_n {
                fed.run_for(SimDuration::from_nanos(t - now_n));
                now_n = t;
            }
            captured.push((t, fed.capture_sections()));
            req.next();
        }
        if seg_end > now_n {
            fed.run_for(SimDuration::from_nanos(seg_end - now_n));
            now_n = seg_end;
        }
        apply(&mut fed, seg_end);
    }

    let fleet = fed.aggregate();
    let sum = fed.sub_counts_sum();
    let census_match = fleet.counts == sum;
    let audit_hash = fed.head().audit_hash();
    let (frames, bytes) = fed.uplink_stats();

    let mut states: BTreeSet<&'static str> = BTreeSet::new();
    for c in 0..spec.clusters {
        let lc = fed.sub_sim(c).world().control.lifecycle();
        for t in lc.log() {
            states.insert(state_slug(t.from));
            states.insert(state_slug(t.to));
        }
        for node in 0..spec.nodes_per_cluster {
            states.insert(state_slug(lc.state(node)));
        }
    }
    let coverage = CoverageRun {
        scale: scale_band(spec.clusters as u32 * spec.nodes_per_cluster),
        faults: spec
            .faults
            .iter()
            .map(|(_, f)| match f {
                FedFault::Disconnect(_) => "cluster-disconnect",
                FedFault::Heal(_) => "cluster-heal",
            })
            .collect(),
        states,
    };

    let mut cases = Vec::new();
    let mut asserts = Vec::new();
    if m.assertions.census_match.unwrap_or(true) {
        push_assert(
            &mut cases,
            &mut asserts,
            "census_match",
            "head census == sub-cluster sum".to_string(),
            format!(
                "head up {} failed {} vs sum up {} failed {}",
                fleet.counts.up, fleet.counts.failed, sum.up, sum.failed
            ),
            census_match,
        );
    }
    if let Some(want) = m.assertions.total_nodes {
        push_assert(
            &mut cases,
            &mut asserts,
            "total_nodes",
            format!("{want}"),
            format!("{}", fleet.total_nodes),
            fleet.total_nodes as u64 == want,
        );
    }
    let outcome = outcome_of(false, &asserts);

    let tail = format!(
        ",\"mode\":\"federation\",\
         \"federation\":{{\"clusters\":{},\"nodes_per_cluster\":{},\"uplink_secs\":{},\"stale_after_secs\":{}}},\
         \"duration_secs\":{},\"settle_secs\":{},\
         \"audit\":{{\"hash\":\"{audit_hash:016x}\"}},\
         \"metrics\":{{\"total_nodes\":{},\"up\":{},\"failed\":{},\"reachable\":{},\"stale\":{},\
         \"census_match\":{census_match},\"uplink_frames\":{frames},\"uplink_bytes\":{bytes}}},\
         \"invariants\":[],{},\"coverage\":{}",
        spec.clusters,
        spec.nodes_per_cluster,
        json_num(spec.uplink_secs),
        json_num(spec.stale_after_secs),
        json_num(spec.duration_secs),
        json_num(spec.settle_secs),
        fleet.total_nodes,
        fleet.counts.up,
        fleet.counts.failed,
        fleet.reachable,
        fleet.stale,
        assertions_json(&asserts),
        coverage.to_json()
    );

    let summary = vec![
        format!(
            "federation `{}`: {} clusters x {} nodes, {}s + {}s settle, seed {}",
            m.name, spec.clusters, spec.nodes_per_cluster, spec.duration_secs, spec.settle_secs, m.seed
        ),
        format!(
            "head view: {} nodes | up {} | failed {} | reachable {} | {} stale | census match: {census_match}",
            fleet.total_nodes, fleet.counts.up, fleet.counts.failed, fleet.reachable, fleet.stale
        ),
        format!("audit {audit_hash:016x} | {frames} uplink frames, {bytes} bytes"),
    ];
    (tail, cases, coverage, summary, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
scenario_version = 1
name = "tiny"
seed = 11

[cluster]
nodes = 8

[run]
duration = 120
settle = 120

[[fault]]
at = 30
kind = "agent-crash"
node = 3

[[fault]]
at = 60
kind = "agent-recover"
node = 3

[assertions]
final_up = "all"
"#;

    #[test]
    fn same_manifest_same_seed_same_body() {
        let m = Manifest::parse(TINY).expect("parses");
        let a = run_scenario(&m);
        let b = run_scenario(&m);
        assert_eq!(a.fingerprint, b.fingerprint);
        // the bodies (everything before the fingerprint) are identical;
        // only the timing section may differ
        let cut = |s: &str| s[..s.find(",\"fingerprint\"").expect("fingerprint field")].to_string();
        assert_eq!(cut(&a.result_json), cut(&b.result_json));
        assert_eq!(a.outcome, Outcome::Pass);
        assert!(a.result_json.contains("\"schema\":\"cwx-result-v1\""));
        assert!(a.result_json.contains("\"timing\":{\"wall_ms\":"));
        assert!(a.coverage.faults.contains("agent-crash"));
        assert!(a.coverage.states.contains("Up"));
        assert!(a.junit.contains("invariant:command-accounting"));
        assert!(a.junit.contains("assert:final_up"));
    }

    #[test]
    fn failed_assertion_is_exit_1() {
        let text = TINY.replace("final_up = \"all\"", "max_emails = 0\nfinal_up = \"all\"");
        let m = Manifest::parse(&text).expect("parses");
        let r = run_scenario(&m);
        // the crash alone emails the admin at least once
        assert_eq!(r.outcome, Outcome::AssertionFail);
        assert_eq!(r.outcome.exit_code(), 1);
        assert!(r.result_json.contains("\"outcome\":\"assertion-fail\""));
    }

    #[test]
    fn exit_codes_are_the_documented_ladder() {
        assert_eq!(Outcome::Pass.exit_code(), 0);
        assert_eq!(Outcome::AssertionFail.exit_code(), 1);
        assert_eq!(Outcome::InvariantViolation.exit_code(), 2);
        assert_eq!(Outcome::Error.exit_code(), 3);
    }

    #[test]
    fn chaos_snapshot_capture_is_fingerprint_neutral_and_resumes_bit_exact() {
        let m = Manifest::parse(TINY).expect("parses");
        let plain = run_scenario(&m);
        let opts = RunOptions {
            snapshot_at: vec![50.0],
            resume: None,
        };
        let snapped = run_scenario_with(&m, &opts).expect("capture run");
        // capture must never perturb the run
        assert_eq!(plain.fingerprint, snapped.fingerprint);
        assert_eq!(snapped.snapshots.len(), 1);
        let file = snapped.snapshots[0].clone();
        assert_eq!(file.t_nanos, 50_000_000_000);
        // the snapshot survives an encode/decode round trip
        let file = SnapshotFile::decode(&file.encode()).expect("round trip");

        let resumed = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: vec![],
                resume: Some(file.clone()),
            },
        )
        .expect("resume run");
        assert_eq!(resumed.fingerprint, plain.fingerprint);
        assert!(
            resumed.summary[0].contains("resumed from snapshot"),
            "{:?}",
            resumed.summary
        );

        // a flipped byte inside a section is a named divergence
        let mut bad = file.clone();
        bad.sections[3].1[0] ^= 0x01;
        let err = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: vec![],
                resume: Some(bad),
            },
        )
        .expect_err("diverged");
        assert!(err.contains("resume verification failed"), "{err}");
        assert!(err.contains(&file.sections[3].0), "{err}");

        // a different seed is refused before any replay happens
        let mut other = m.clone();
        other.set_seed(777);
        let err = run_scenario_with(
            &other,
            &RunOptions {
                snapshot_at: vec![],
                resume: Some(file),
            },
        )
        .expect_err("identity mismatch");
        assert!(err.contains("identity"), "{err}");
    }

    #[test]
    fn federation_snapshot_aligns_to_epochs_and_resumes_bit_exact() {
        let text = r#"
scenario_version = 1
name = "fed-snap"
seed = 21

[federation]
clusters = 2
nodes_per_cluster = 6
uplink = 10

[run]
duration = 200
settle = 40

[[fault]]
at = 45
kind = "cluster-disconnect"
cluster = 1

[[fault]]
at = 95
kind = "cluster-heal"
cluster = 1
"#;
        let m = Manifest::parse(text).expect("parses");
        let plain = run_scenario(&m);
        let snapped = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: vec![67.0],
                resume: None,
            },
        )
        .expect("capture run");
        assert_eq!(plain.fingerprint, snapped.fingerprint);
        assert_eq!(snapped.snapshots.len(), 1);
        let file = snapped.snapshots[0].clone();
        // 67s inside the [45, 95] fault segment rounds up to the next
        // uplink epoch: 45 + 3*10 = 75s
        assert_eq!(file.t_nanos, 75_000_000_000);

        let resumed = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: vec![],
                resume: Some(file),
            },
        )
        .expect("resume run");
        assert_eq!(resumed.fingerprint, plain.fingerprint);
        assert!(
            resumed.summary[0].contains("resumed from snapshot at t=75s"),
            "{:?}",
            resumed.summary
        );
    }

    #[test]
    fn manifest_checkpoints_drive_capture() {
        let text = format!("{TINY}\n[checkpoints]\nat = [40, 80.5]\n");
        let m = Manifest::parse(&text).expect("parses");
        let r = run_scenario(&m);
        assert_eq!(r.snapshots.len(), 2);
        assert_eq!(r.snapshots[0].t_nanos, 40_000_000_000);
        assert_eq!(r.snapshots[1].t_nanos, 80_500_000_000);
        // checkpoints are fingerprint-neutral by contract
        let plain = run_scenario(&Manifest::parse(TINY).expect("parses"));
        assert_eq!(r.fingerprint, plain.fingerprint);
    }

    #[test]
    fn out_of_range_snapshot_time_is_an_error() {
        let m = Manifest::parse(TINY).expect("parses");
        let err = run_scenario_with(
            &m,
            &RunOptions {
                snapshot_at: vec![100_000.0],
                resume: None,
            },
        )
        .expect_err("beyond horizon");
        assert!(err.contains("horizon"), "{err}");
    }
}
