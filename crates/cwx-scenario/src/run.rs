//! The headless scenario runtime: execute a validated [`Manifest`],
//! evaluate its invariants and assertions, and render machine-readable
//! artifacts (`result.json`, JUnit XML) plus a stable exit code.
//!
//! Artifact determinism is a contract: everything inside the result
//! body is a pure function of (manifest, seed), and the body's FNV-1a
//! fingerprint pins it. Wall-clock measurements live in a separate
//! `timing` section appended *after* the fingerprint is computed, so
//! they can never leak into it.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use cwx_chaos::{campaign_config, run_campaign_sim, CampaignReport, INVARIANT_NAMES};
use cwx_fed::{FederationConfig, FederationSim};
use cwx_util::time::SimDuration;

use crate::artifact::{esc_json, fnv1a, json_num, junit_xml, AssertionResult, JunitCase};
use crate::coverage::{scale_band, state_slug, CoverageRun};
use crate::manifest::{Assertions, ChaosSpec, FedFault, FedSpec, FinalUp, Manifest, Mode};

/// How a scenario run ended, in exit-code order. These four codes are
/// the CLI-wide contract: every `cwx` subcommand exits with one of
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every invariant held and every assertion passed.
    Pass,
    /// An `[assertions]` demand failed.
    AssertionFail,
    /// The management plane broke one of its own invariants.
    InvariantViolation,
    /// The run itself could not proceed (bad manifest, I/O failure,
    /// blown resource limit).
    Error,
}

impl Outcome {
    /// The process exit code: 0 pass, 1 assertion failure, 2 invariant
    /// violation, 3 manifest/operational error.
    pub fn exit_code(self) -> i32 {
        match self {
            Outcome::Pass => 0,
            Outcome::AssertionFail => 1,
            Outcome::InvariantViolation => 2,
            Outcome::Error => 3,
        }
    }

    /// Stable name artifacts carry.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::AssertionFail => "assertion-fail",
            Outcome::InvariantViolation => "invariant-violation",
            Outcome::Error => "error",
        }
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Final outcome (wall-limit breaches included).
    pub outcome: Outcome,
    /// FNV-1a fingerprint of the deterministic result body.
    pub fingerprint: u64,
    /// The full `result.json` document (body + fingerprint + timing).
    pub result_json: String,
    /// JUnit XML for CI ingestion.
    pub junit: String,
    /// This run's coverage contribution.
    pub coverage: CoverageRun,
    /// Human-readable summary lines for the CLI to print.
    pub summary: Vec<String>,
}

/// Execute a manifest headlessly and render its artifacts.
pub fn run_scenario(m: &Manifest) -> ScenarioResult {
    let t0 = Instant::now();
    let (body_tail, cases, coverage, mut summary, sim_outcome) = match &m.mode {
        Mode::Chaos(spec) => run_chaos(m, spec),
        Mode::Federation(spec) => run_federation(m, spec),
    };
    let wall_ms = t0.elapsed().as_millis() as u64;

    // deterministic body: pure function of (manifest, seed)
    let mut body = format!(
        "{{\"schema\":\"cwx-result-v1\",\"name\":\"{}\",\"seed\":{},\"outcome\":\"{}\",\"exit_code\":{}",
        esc_json(&m.name),
        m.seed,
        sim_outcome.as_str(),
        sim_outcome.exit_code()
    );
    body.push_str(&body_tail);
    body.push('}');
    let fingerprint = fnv1a(body.as_bytes());

    // the wall clock rides outside the fingerprint, always
    let exceeded = m.limits.max_wall_ms.is_some_and(|mx| wall_ms > mx);
    let mut timing = format!("\"wall_ms\":{wall_ms}");
    if let Some(mx) = m.limits.max_wall_ms {
        let _ = write!(timing, ",\"max_wall_ms\":{mx},\"exceeded\":{exceeded}");
    }
    let mut result_json = body;
    result_json.pop();
    let _ = write!(
        result_json,
        ",\"fingerprint\":\"{fingerprint:016x}\",\"timing\":{{{timing}}}}}"
    );

    let outcome = if exceeded {
        summary.push(format!(
            "wall limit exceeded: {wall_ms}ms > {}ms",
            m.limits.max_wall_ms.unwrap_or(0)
        ));
        Outcome::Error
    } else {
        sim_outcome
    };
    summary.push(format!(
        "outcome: {} (exit {}) | fingerprint {fingerprint:016x}",
        outcome.as_str(),
        outcome.exit_code()
    ));

    ScenarioResult {
        outcome,
        fingerprint,
        result_json,
        junit: junit_xml(&m.name, &cases, wall_ms as f64 / 1000.0),
        coverage,
        summary,
    }
}

type ModeOutput = (String, Vec<JunitCase>, CoverageRun, Vec<String>, Outcome);

fn push_assert(
    cases: &mut Vec<JunitCase>,
    results: &mut Vec<AssertionResult>,
    name: &str,
    expected: String,
    actual: String,
    ok: bool,
) {
    cases.push(JunitCase {
        name: format!("assert:{name}"),
        failure: (!ok).then(|| format!("expected {expected}, got {actual}")),
    });
    results.push(AssertionResult {
        name: name.to_string(),
        expected,
        actual,
        ok,
    });
}

fn assertions_json(results: &[AssertionResult]) -> String {
    let items = results
        .iter()
        .map(AssertionResult::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("\"assertions\":[{items}]")
}

fn outcome_of(any_violation: bool, asserts: &[AssertionResult]) -> Outcome {
    if any_violation {
        Outcome::InvariantViolation
    } else if asserts.iter().any(|a| !a.ok) {
        Outcome::AssertionFail
    } else {
        Outcome::Pass
    }
}

fn run_chaos(m: &Manifest, spec: &ChaosSpec) -> ModeOutput {
    let campaign = &spec.campaign;
    let mut cfg = campaign_config(campaign);
    cfg.rack_network = spec.rack_network;
    let (report, sim) = run_campaign_sim(campaign, cfg, spec.policy.to_policy());

    // coverage: every injected kind × every lifecycle state any node
    // touched, at this fleet's scale band
    let w = sim.world();
    let lc = w.control.lifecycle();
    let mut states: BTreeSet<&'static str> = BTreeSet::new();
    for t in lc.log() {
        states.insert(state_slug(t.from));
        states.insert(state_slug(t.to));
    }
    for node in 0..campaign.n_nodes {
        states.insert(state_slug(lc.state(node)));
    }
    let coverage = CoverageRun {
        scale: scale_band(campaign.n_nodes),
        faults: campaign.events.iter().map(|e| e.kind.slug()).collect(),
        states,
    };

    // one JUnit case per invariant promise
    let mut cases = Vec::new();
    let mut invariants_json = String::from("\"invariants\":[");
    for (i, name) in INVARIANT_NAMES.iter().enumerate() {
        let broken: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == *name)
            .collect();
        cases.push(JunitCase {
            name: format!("invariant:{name}"),
            failure: broken
                .first()
                .map(|v| format!("{} violation(s); first: {v}", broken.len())),
        });
        if i > 0 {
            invariants_json.push(',');
        }
        let first = broken
            .first()
            .map(|v| format!("\"{}\"", esc_json(&v.to_string())))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            invariants_json,
            "{{\"name\":\"{name}\",\"violations\":{},\"first\":{first}}}",
            broken.len()
        );
    }
    invariants_json.push(']');

    let mut asserts = Vec::new();
    eval_chaos_assertions(&m.assertions, &report, &mut cases, &mut asserts);
    let outcome = outcome_of(!report.violations.is_empty(), &asserts);

    let tail = format!(
        ",\"mode\":\"chaos\",\"nodes\":{},\"duration_secs\":{},\"settle_secs\":{},\
         \"audit\":{{\"hash\":\"{:016x}\",\"records\":{}}},\
         \"metrics\":{{\"availability\":{},\"detection_latency_secs\":{},\"mttr_secs\":{},\
         \"final_up\":{},\"quarantined\":{},\"emails\":{},\"storms\":{}}},\
         {invariants_json},{},\"coverage\":{}",
        campaign.n_nodes,
        json_num(campaign.duration_secs),
        json_num(campaign.settle_secs),
        report.audit_hash,
        report.audit_len,
        json_num(report.availability),
        json_num(report.detection_latency_secs),
        json_num(report.mttr_secs),
        report.final_up,
        report.quarantined.len(),
        report.emails,
        report.storms,
        assertions_json(&asserts),
        coverage.to_json()
    );

    let summary = vec![
        format!(
            "chaos `{}`: {} nodes, {}s + {}s settle, seed {}, {} faults",
            report.name,
            report.n_nodes,
            campaign.duration_secs,
            campaign.settle_secs,
            report.seed,
            campaign.events.len()
        ),
        format!(
            "availability {:.4} | detection {:.1}s | mttr {:.1}s | {} up | {} quarantined | {} emails",
            report.availability,
            report.detection_latency_secs,
            report.mttr_secs,
            report.final_up,
            report.quarantined.len(),
            report.emails
        ),
        format!(
            "audit {:016x} ({} records) | {} invariant violation(s)",
            report.audit_hash,
            report.audit_len,
            report.violations.len()
        ),
    ];
    (tail, cases, coverage, summary, outcome)
}

fn eval_chaos_assertions(
    a: &Assertions,
    report: &CampaignReport,
    cases: &mut Vec<JunitCase>,
    out: &mut Vec<AssertionResult>,
) {
    if let Some(min) = a.min_availability {
        push_assert(
            cases,
            out,
            "min_availability",
            format!(">= {min}"),
            format!("{:.4}", report.availability),
            report.availability >= min,
        );
    }
    if let Some(want) = a.final_up {
        let expected = match want {
            FinalUp::All => report.n_nodes as u64,
            FinalUp::Exactly(n) => n,
        };
        push_assert(
            cases,
            out,
            "final_up",
            format!("{expected}"),
            format!("{}", report.final_up),
            report.final_up as u64 == expected,
        );
    }
    if let Some(max) = a.max_emails {
        push_assert(
            cases,
            out,
            "max_emails",
            format!("<= {max}"),
            format!("{}", report.emails),
            report.emails as u64 <= max,
        );
    }
    if let Some(true) = a.quarantined_empty {
        push_assert(
            cases,
            out,
            "quarantined_empty",
            "[]".to_string(),
            format!("{:?}", report.quarantined),
            report.quarantined.is_empty(),
        );
    }
    if let Some(hash) = a.audit_hash {
        push_assert(
            cases,
            out,
            "audit_hash",
            format!("{hash:016x}"),
            format!("{:016x}", report.audit_hash),
            report.audit_hash == hash,
        );
    }
}

fn run_federation(m: &Manifest, spec: &FedSpec) -> ModeOutput {
    let mut cfg = FederationConfig::uniform(spec.clusters, spec.nodes_per_cluster, m.seed);
    cfg.uplink_interval = SimDuration::from_secs_f64(spec.uplink_secs);
    cfg.stale_after = SimDuration::from_secs_f64(spec.stale_after_secs);
    let mut fed = FederationSim::build(cfg);

    // piecewise advance to each scheduled uplink fault
    let mut faults = spec.faults.clone();
    faults.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut elapsed = 0.0;
    for (at, fault) in &faults {
        if *at > elapsed {
            fed.run_for(SimDuration::from_secs_f64(at - elapsed));
            elapsed = *at;
        }
        match fault {
            FedFault::Disconnect(c) => fed.disconnect(*c),
            FedFault::Heal(c) => fed.heal(*c),
        }
    }
    let total = spec.duration_secs + spec.settle_secs;
    if total > elapsed {
        fed.run_for(SimDuration::from_secs_f64(total - elapsed));
    }

    let fleet = fed.aggregate();
    let sum = fed.sub_counts_sum();
    let census_match = fleet.counts == sum;
    let audit_hash = fed.head().audit_hash();
    let (frames, bytes) = fed.uplink_stats();

    let mut states: BTreeSet<&'static str> = BTreeSet::new();
    for c in 0..spec.clusters {
        let lc = fed.sub_sim(c).world().control.lifecycle();
        for t in lc.log() {
            states.insert(state_slug(t.from));
            states.insert(state_slug(t.to));
        }
        for node in 0..spec.nodes_per_cluster {
            states.insert(state_slug(lc.state(node)));
        }
    }
    let coverage = CoverageRun {
        scale: scale_band(spec.clusters as u32 * spec.nodes_per_cluster),
        faults: faults
            .iter()
            .map(|(_, f)| match f {
                FedFault::Disconnect(_) => "cluster-disconnect",
                FedFault::Heal(_) => "cluster-heal",
            })
            .collect(),
        states,
    };

    let mut cases = Vec::new();
    let mut asserts = Vec::new();
    if m.assertions.census_match.unwrap_or(true) {
        push_assert(
            &mut cases,
            &mut asserts,
            "census_match",
            "head census == sub-cluster sum".to_string(),
            format!(
                "head up {} failed {} vs sum up {} failed {}",
                fleet.counts.up, fleet.counts.failed, sum.up, sum.failed
            ),
            census_match,
        );
    }
    if let Some(want) = m.assertions.total_nodes {
        push_assert(
            &mut cases,
            &mut asserts,
            "total_nodes",
            format!("{want}"),
            format!("{}", fleet.total_nodes),
            fleet.total_nodes as u64 == want,
        );
    }
    let outcome = outcome_of(false, &asserts);

    let tail = format!(
        ",\"mode\":\"federation\",\
         \"federation\":{{\"clusters\":{},\"nodes_per_cluster\":{},\"uplink_secs\":{},\"stale_after_secs\":{}}},\
         \"duration_secs\":{},\"settle_secs\":{},\
         \"audit\":{{\"hash\":\"{audit_hash:016x}\"}},\
         \"metrics\":{{\"total_nodes\":{},\"up\":{},\"failed\":{},\"reachable\":{},\"stale\":{},\
         \"census_match\":{census_match},\"uplink_frames\":{frames},\"uplink_bytes\":{bytes}}},\
         \"invariants\":[],{},\"coverage\":{}",
        spec.clusters,
        spec.nodes_per_cluster,
        json_num(spec.uplink_secs),
        json_num(spec.stale_after_secs),
        json_num(spec.duration_secs),
        json_num(spec.settle_secs),
        fleet.total_nodes,
        fleet.counts.up,
        fleet.counts.failed,
        fleet.reachable,
        fleet.stale,
        assertions_json(&asserts),
        coverage.to_json()
    );

    let summary = vec![
        format!(
            "federation `{}`: {} clusters x {} nodes, {}s + {}s settle, seed {}",
            m.name, spec.clusters, spec.nodes_per_cluster, spec.duration_secs, spec.settle_secs, m.seed
        ),
        format!(
            "head view: {} nodes | up {} | failed {} | reachable {} | {} stale | census match: {census_match}",
            fleet.total_nodes, fleet.counts.up, fleet.counts.failed, fleet.reachable, fleet.stale
        ),
        format!("audit {audit_hash:016x} | {frames} uplink frames, {bytes} bytes"),
    ];
    (tail, cases, coverage, summary, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
scenario_version = 1
name = "tiny"
seed = 11

[cluster]
nodes = 8

[run]
duration = 120
settle = 120

[[fault]]
at = 30
kind = "agent-crash"
node = 3

[[fault]]
at = 60
kind = "agent-recover"
node = 3

[assertions]
final_up = "all"
"#;

    #[test]
    fn same_manifest_same_seed_same_body() {
        let m = Manifest::parse(TINY).expect("parses");
        let a = run_scenario(&m);
        let b = run_scenario(&m);
        assert_eq!(a.fingerprint, b.fingerprint);
        // the bodies (everything before the fingerprint) are identical;
        // only the timing section may differ
        let cut = |s: &str| s[..s.find(",\"fingerprint\"").expect("fingerprint field")].to_string();
        assert_eq!(cut(&a.result_json), cut(&b.result_json));
        assert_eq!(a.outcome, Outcome::Pass);
        assert!(a.result_json.contains("\"schema\":\"cwx-result-v1\""));
        assert!(a.result_json.contains("\"timing\":{\"wall_ms\":"));
        assert!(a.coverage.faults.contains("agent-crash"));
        assert!(a.coverage.states.contains("Up"));
        assert!(a.junit.contains("invariant:command-accounting"));
        assert!(a.junit.contains("assert:final_up"));
    }

    #[test]
    fn failed_assertion_is_exit_1() {
        let text = TINY.replace("final_up = \"all\"", "max_emails = 0\nfinal_up = \"all\"");
        let m = Manifest::parse(&text).expect("parses");
        let r = run_scenario(&m);
        // the crash alone emails the admin at least once
        assert_eq!(r.outcome, Outcome::AssertionFail);
        assert_eq!(r.outcome.exit_code(), 1);
        assert!(r.result_json.contains("\"outcome\":\"assertion-fail\""));
    }

    #[test]
    fn exit_codes_are_the_documented_ladder() {
        assert_eq!(Outcome::Pass.exit_code(), 0);
        assert_eq!(Outcome::AssertionFail.exit_code(), 1);
        assert_eq!(Outcome::InvariantViolation.exit_code(), 2);
        assert_eq!(Outcome::Error.exit_code(), 3);
    }
}
