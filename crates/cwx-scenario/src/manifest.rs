//! The versioned scenario manifest: one TOML document composing
//! cluster shape, fault schedule, invariant policy, resource limits and
//! pass/fail assertions into a runnable, machine-checkable scenario.
//!
//! Parsing is strict by design: unknown keys, unknown enum values,
//! missing operands, out-of-range targets and mode-mismatched sections
//! are hard errors that name the offending source line. A typo like
//! `kind = "pannic"` must fail the run with exit code 3, never silently
//! weaken the scenario.

use std::fmt;

use cwx_chaos::{Campaign, FaultKind, InvariantPolicy, FAULT_SLUGS};
use cwx_icebox::NODE_PORTS;

use crate::toml::{self, Entry, Table, Value};

/// The manifest format version this runtime understands.
pub const SCENARIO_VERSION: i64 = 1;

/// A manifest rejection: what was wrong and (when known) where.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

impl From<String> for ManifestError {
    fn from(s: String) -> ManifestError {
        ManifestError(s)
    }
}

fn err<T>(msg: String) -> Result<T, ManifestError> {
    Err(ManifestError(msg))
}

/// A chaos-mode scenario: one simulated cluster under a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// The lowered fault campaign.
    pub campaign: Campaign,
    /// Whether racks get their own network segments (default true;
    /// required by rack-targeted faults).
    pub rack_network: bool,
    /// Invariant checker tunables.
    pub policy: InvariantPolicyValues,
}

/// Plain-data mirror of [`InvariantPolicy`] so specs stay comparable
/// (`InvariantPolicy` itself doesn't implement `PartialEq`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantPolicyValues {
    /// Period of the runtime scan, seconds.
    pub check_every_secs: f64,
    /// Stuck-transient deadline, seconds.
    pub transient_deadline_secs: f64,
    /// Final freshness bound, seconds.
    pub freshness_secs: f64,
}

impl Default for InvariantPolicyValues {
    fn default() -> Self {
        let p = InvariantPolicy::default();
        InvariantPolicyValues {
            check_every_secs: p.check_every_secs,
            transient_deadline_secs: p.transient_deadline_secs,
            freshness_secs: p.freshness_secs,
        }
    }
}

impl InvariantPolicyValues {
    /// Convert into the checker's policy type.
    pub fn to_policy(self) -> InvariantPolicy {
        InvariantPolicy {
            check_every_secs: self.check_every_secs,
            transient_deadline_secs: self.transient_deadline_secs,
            freshness_secs: self.freshness_secs,
        }
    }
}

/// A fault against a federated sub-cluster's uplink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FedFault {
    /// Sever a sub-cluster's uplink to the head.
    Disconnect(u16),
    /// Restore it.
    Heal(u16),
}

/// A federation-mode scenario: a head cluster aggregating sub-clusters
/// over lossy uplinks.
#[derive(Debug, Clone, PartialEq)]
pub struct FedSpec {
    /// Number of sub-clusters.
    pub clusters: u16,
    /// Nodes per sub-cluster.
    pub nodes_per_cluster: u32,
    /// Active phase, seconds.
    pub duration_secs: f64,
    /// Quiet tail before the final census, seconds.
    pub settle_secs: f64,
    /// Uplink reporting interval, seconds.
    pub uplink_secs: f64,
    /// Staleness bound for sub-cluster views, seconds.
    pub stale_after_secs: f64,
    /// Scheduled uplink faults, campaign-relative seconds.
    pub faults: Vec<(f64, FedFault)>,
}

/// Which runtime a manifest drives.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Single-cluster chaos campaign (`[cluster]`).
    Chaos(ChaosSpec),
    /// Multi-cluster federation (`[federation]`).
    Federation(FedSpec),
}

/// How many nodes a run's `final_up` assertion expects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FinalUp {
    /// Every node in the fleet.
    All,
    /// An exact count.
    Exactly(u64),
}

/// Parsed `[assertions]` demands. Every field is optional; an absent
/// field asserts nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assertions {
    /// Mean fleet availability must be at least this (chaos).
    pub min_availability: Option<f64>,
    /// Nodes up at the end of the settle window (chaos).
    pub final_up: Option<FinalUp>,
    /// At most this many notifier emails (chaos).
    pub max_emails: Option<u64>,
    /// The quarantine list must be empty at the end (chaos).
    pub quarantined_empty: Option<bool>,
    /// The audit-trail hash must equal this value (chaos).
    pub audit_hash: Option<u64>,
    /// The head's census must match the sub-cluster sum (federation;
    /// defaults to `true` when the section is absent).
    pub census_match: Option<bool>,
    /// The head must aggregate exactly this many nodes (federation).
    pub total_nodes: Option<u64>,
}

/// Resource limits on the run itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Limits {
    /// Abort (exit 3) if the run's wall clock exceeds this.
    pub max_wall_ms: Option<u64>,
}

/// A fully validated scenario manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scenario name (artifacts and reports carry it).
    pub name: String,
    /// Seed for every random draw.
    pub seed: u64,
    /// Chaos or federation runtime.
    pub mode: Mode,
    /// Resource limits.
    pub limits: Limits,
    /// Pass/fail demands.
    pub assertions: Assertions,
    /// `[checkpoints] at = [...]` — simulated seconds at which the
    /// runner captures a world snapshot. Strictly ascending, within
    /// `[0, duration + settle]`. Deliberately *not* part of the
    /// result.json body: snapshot capture is fingerprint-neutral, so
    /// adding checkpoints must never change a scenario's fingerprint.
    pub checkpoints: Vec<f64>,
}

// ---------- typed value extraction ----------

fn want_int(e: &Entry) -> Result<i64, ManifestError> {
    match e.value {
        Value::Int(i) => Ok(i),
        ref v => err(format!(
            "line {}: `{}` must be an integer, got {}",
            e.line,
            e.key,
            v.type_name()
        )),
    }
}

fn want_u64(e: &Entry) -> Result<u64, ManifestError> {
    let i = want_int(e)?;
    u64::try_from(i)
        .map_err(|_| ManifestError(format!("line {}: `{}` must be nonnegative", e.line, e.key)))
}

fn want_f64(e: &Entry) -> Result<f64, ManifestError> {
    match e.value {
        Value::Int(i) => Ok(i as f64),
        Value::Float(x) => Ok(x),
        ref v => err(format!(
            "line {}: `{}` must be a number, got {}",
            e.line,
            e.key,
            v.type_name()
        )),
    }
}

fn want_pos_f64(e: &Entry) -> Result<f64, ManifestError> {
    let x = want_f64(e)?;
    if x <= 0.0 {
        return err(format!("line {}: `{}` must be positive", e.line, e.key));
    }
    Ok(x)
}

fn want_str(e: &Entry) -> Result<&str, ManifestError> {
    match e.value {
        Value::Str(ref s) => Ok(s),
        ref v => err(format!(
            "line {}: `{}` must be a string, got {}",
            e.line,
            e.key,
            v.type_name()
        )),
    }
}

fn want_bool(e: &Entry) -> Result<bool, ManifestError> {
    match e.value {
        Value::Bool(b) => Ok(b),
        ref v => err(format!(
            "line {}: `{}` must be a boolean, got {}",
            e.line,
            e.key,
            v.type_name()
        )),
    }
}

fn unknown_key(section: &str, e: &Entry, legal: &[&str]) -> ManifestError {
    ManifestError(format!(
        "line {}: unknown key `{}` in {section} (legal keys: {})",
        e.line,
        e.key,
        legal.join(", ")
    ))
}

// ---------- fault lowering ----------

struct FaultCtx {
    n_nodes: u32,
    n_racks: usize,
    rack_network: bool,
    duration_secs: f64,
}

fn lower_chaos_fault(t: &Table, ctx: &FaultCtx) -> Result<(f64, FaultKind), ManifestError> {
    let mut at = None;
    let mut kind = None;
    let mut rack = None;
    let mut chassis = None;
    let mut node = None;
    let mut secs = None;
    let mut loss = None;
    let mut bps = None;
    let mut delta = None;
    let mut cluster = None;
    for e in &t.entries {
        match e.key.as_str() {
            "at" => at = Some(want_f64(e)?),
            "kind" => kind = Some((want_str(e)?.to_string(), e.line)),
            "rack" => rack = Some((want_u64(e)?, e.line)),
            "chassis" => chassis = Some((want_u64(e)?, e.line)),
            "node" => node = Some((want_u64(e)?, e.line)),
            "secs" => secs = Some(want_pos_f64(e)?),
            "loss" => {
                let x = want_f64(e)?;
                if !(0.0..=1.0).contains(&x) {
                    return err(format!("line {}: `loss` must be within 0..=1", e.line));
                }
                loss = Some(x);
            }
            "bps" => bps = Some(want_u64(e)?),
            "delta" => delta = Some(want_f64(e)?),
            // accepted here only so `cluster-disconnect` in a chaos
            // scenario fails on the kind, not the operand
            "cluster" => cluster = Some(want_u64(e)?),
            _ => {
                return Err(unknown_key(
                    "[[fault]]",
                    e,
                    &[
                        "at", "kind", "rack", "chassis", "node", "secs", "loss", "bps", "delta",
                    ],
                ))
            }
        }
    }
    let at =
        at.ok_or_else(|| ManifestError(format!("line {}: [[fault]] is missing `at`", t.line)))?;
    if !(0.0..=ctx.duration_secs).contains(&at) {
        return err(format!(
            "line {}: fault time {at} is outside the run's [0, {}] window",
            t.line, ctx.duration_secs
        ));
    }
    let (kind_name, kind_line) =
        kind.ok_or_else(|| ManifestError(format!("line {}: [[fault]] is missing `kind`", t.line)))?;

    let take_rack = |pair: Option<(u64, usize)>, key: &str| -> Result<usize, ManifestError> {
        let (r, line) = pair.ok_or_else(|| {
            ManifestError(format!("line {}: `{kind_name}` needs `{key}`", t.line))
        })?;
        if r as usize >= ctx.n_racks {
            return err(format!(
                "line {line}: {key} {r} is out of range (fleet of {} nodes has {} racks)",
                ctx.n_nodes, ctx.n_racks
            ));
        }
        Ok(r as usize)
    };
    let take_node = |pair: Option<(u64, usize)>| -> Result<u32, ManifestError> {
        let (n, line) = pair
            .ok_or_else(|| ManifestError(format!("line {}: `{kind_name}` needs `node`", t.line)))?;
        if n >= ctx.n_nodes as u64 {
            return err(format!(
                "line {line}: node {n} is out of range for a fleet of {} nodes",
                ctx.n_nodes
            ));
        }
        Ok(n as u32)
    };
    let need_secs = || -> Result<f64, ManifestError> {
        secs.ok_or_else(|| ManifestError(format!("line {}: `{kind_name}` needs `secs`", t.line)))
    };

    // operands each kind consumes; anything else present is an error
    let (kind, used): (FaultKind, &[&str]) = match kind_name.as_str() {
        "partition-rack" => (
            FaultKind::PartitionRack(take_rack(rack, "rack")?),
            &["rack"],
        ),
        "heal-rack" => (FaultKind::HealRack(take_rack(rack, "rack")?), &["rack"]),
        "rack-loss" => {
            let l = loss.ok_or_else(|| {
                ManifestError(format!("line {}: `rack-loss` needs `loss`", t.line))
            })?;
            (
                FaultKind::RackLoss(take_rack(rack, "rack")?, l),
                &["rack", "loss"],
            )
        }
        "rack-bandwidth" => {
            let (b, _) = bps.map(|b| (b, 0)).ok_or_else(|| {
                ManifestError(format!("line {}: `rack-bandwidth` needs `bps`", t.line))
            })?;
            (
                FaultKind::RackBandwidth(take_rack(rack, "rack")?, b),
                &["rack", "bps"],
            )
        }
        "chassis-restart" => (
            FaultKind::ChassisRestart(take_rack(chassis, "chassis")?),
            &["chassis"],
        ),
        "agent-crash" => (FaultKind::AgentCrash(take_node(node)?), &["node"]),
        "agent-hang" => (
            FaultKind::AgentHang(take_node(node)?, need_secs()?),
            &["node", "secs"],
        ),
        "agent-delay" => (
            FaultKind::AgentDelay(take_node(node)?, need_secs()?),
            &["node", "secs"],
        ),
        "agent-duplicate" => (FaultKind::AgentDuplicate(take_node(node)?), &["node"]),
        "agent-recover" => (FaultKind::AgentRecover(take_node(node)?), &["node"]),
        "kernel-panic" => (FaultKind::KernelPanic(take_node(node)?), &["node"]),
        "fan-failure" => (FaultKind::FanFailure(take_node(node)?), &["node"]),
        "psu-failure" => (FaultKind::PsuFailure(take_node(node)?), &["node"]),
        "memory-leak" => (FaultKind::MemoryLeak(take_node(node)?), &["node"]),
        "probe-stuck" => (FaultKind::ProbeStuck(take_node(node)?), &["node"]),
        "probe-skew" => {
            let d = delta.ok_or_else(|| {
                ManifestError(format!("line {}: `probe-skew` needs `delta`", t.line))
            })?;
            (
                FaultKind::ProbeSkew(take_node(node)?, d),
                &["node", "delta"],
            )
        }
        "probe-clear" => (FaultKind::ProbeClear(take_node(node)?), &["node"]),
        "console-garbage" => (FaultKind::ConsoleGarbage(take_node(node)?), &["node"]),
        "cluster-disconnect" | "cluster-heal" => {
            return err(format!(
                "line {kind_line}: `{kind_name}` is a federation fault; this is a [cluster] scenario"
            ));
        }
        other => {
            return err(format!(
                "line {kind_line}: unknown fault kind {other:?} (one of: {})",
                FAULT_SLUGS.join(", ")
            ));
        }
    };

    // reject operands the kind does not take
    let present: [(&str, bool); 8] = [
        ("rack", rack.is_some()),
        ("chassis", chassis.is_some()),
        ("node", node.is_some()),
        ("secs", secs.is_some()),
        ("loss", loss.is_some()),
        ("bps", bps.is_some()),
        ("delta", delta.is_some()),
        ("cluster", cluster.is_some()),
    ];
    for (name, here) in present {
        if here && !used.contains(&name) {
            return err(format!(
                "line {}: `{kind_name}` does not take `{name}`",
                t.line
            ));
        }
    }

    if matches!(kind, FaultKind::PartitionRack(_) | FaultKind::HealRack(_)) && !ctx.rack_network {
        return err(format!(
            "line {}: `{kind_name}` needs `rack_network = true` in [cluster]",
            t.line
        ));
    }
    Ok((at, kind))
}

fn lower_fed_fault(
    t: &Table,
    clusters: u16,
    duration_secs: f64,
) -> Result<(f64, FedFault), ManifestError> {
    let mut at = None;
    let mut kind = None;
    let mut cluster = None;
    for e in &t.entries {
        match e.key.as_str() {
            "at" => at = Some(want_f64(e)?),
            "kind" => kind = Some((want_str(e)?.to_string(), e.line)),
            "cluster" => cluster = Some((want_u64(e)?, e.line)),
            _ => return Err(unknown_key("[[fault]]", e, &["at", "kind", "cluster"])),
        }
    }
    let at =
        at.ok_or_else(|| ManifestError(format!("line {}: [[fault]] is missing `at`", t.line)))?;
    if !(0.0..=duration_secs).contains(&at) {
        return err(format!(
            "line {}: fault time {at} is outside the run's [0, {duration_secs}] window",
            t.line
        ));
    }
    let (kind_name, kind_line) =
        kind.ok_or_else(|| ManifestError(format!("line {}: [[fault]] is missing `kind`", t.line)))?;
    let (c, line) = cluster
        .ok_or_else(|| ManifestError(format!("line {}: `{kind_name}` needs `cluster`", t.line)))?;
    if c >= clusters as u64 {
        return err(format!(
            "line {line}: cluster {c} is out of range for a federation of {clusters}"
        ));
    }
    let fault = match kind_name.as_str() {
        "cluster-disconnect" => FedFault::Disconnect(c as u16),
        "cluster-heal" => FedFault::Heal(c as u16),
        other => {
            return err(format!(
                "line {kind_line}: unknown federation fault kind {other:?} \
                 (one of: cluster-disconnect, cluster-heal)"
            ));
        }
    };
    Ok((at, fault))
}

// ---------- section lowering ----------

fn lower_assertions(t: Option<&Table>, federation: bool) -> Result<Assertions, ManifestError> {
    let mut a = Assertions::default();
    let Some(t) = t else { return Ok(a) };
    for e in &t.entries {
        let chaos_only = |what: &str| {
            ManifestError(format!(
                "line {}: assertion `{what}` only applies to [cluster] scenarios",
                e.line
            ))
        };
        let fed_only = |what: &str| {
            ManifestError(format!(
                "line {}: assertion `{what}` only applies to [federation] scenarios",
                e.line
            ))
        };
        match e.key.as_str() {
            "min_availability" if federation => return Err(chaos_only("min_availability")),
            "min_availability" => {
                let x = want_f64(e)?;
                if !(0.0..=1.0).contains(&x) {
                    return err(format!(
                        "line {}: `min_availability` must be within 0..=1",
                        e.line
                    ));
                }
                a.min_availability = Some(x);
            }
            "final_up" if federation => return Err(chaos_only("final_up")),
            "final_up" => {
                a.final_up = Some(match &e.value {
                    Value::Str(s) if s == "all" => FinalUp::All,
                    Value::Int(i) if *i >= 0 => FinalUp::Exactly(*i as u64),
                    v => {
                        return err(format!(
                            "line {}: `final_up` must be \"all\" or a nonnegative integer, got {v}",
                            e.line
                        ))
                    }
                });
            }
            "max_emails" if federation => return Err(chaos_only("max_emails")),
            "max_emails" => a.max_emails = Some(want_u64(e)?),
            "quarantined_empty" if federation => return Err(chaos_only("quarantined_empty")),
            "quarantined_empty" => a.quarantined_empty = Some(want_bool(e)?),
            "audit_hash" if federation => return Err(chaos_only("audit_hash")),
            "audit_hash" => {
                let s = want_str(e)?;
                let hex = s.strip_prefix("0x").unwrap_or(s);
                let parsed = (hex.len() == 16)
                    .then(|| u64::from_str_radix(hex, 16).ok())
                    .flatten();
                match parsed {
                    Some(h) => a.audit_hash = Some(h),
                    None => {
                        return err(format!(
                            "line {}: `audit_hash` must be 16 hex digits, got {s:?}",
                            e.line
                        ))
                    }
                }
            }
            "census_match" if !federation => return Err(fed_only("census_match")),
            "census_match" => a.census_match = Some(want_bool(e)?),
            "total_nodes" if !federation => return Err(fed_only("total_nodes")),
            "total_nodes" => a.total_nodes = Some(want_u64(e)?),
            _ => {
                return Err(unknown_key(
                    "[assertions]",
                    e,
                    &[
                        "min_availability",
                        "final_up",
                        "max_emails",
                        "quarantined_empty",
                        "audit_hash",
                        "census_match",
                        "total_nodes",
                    ],
                ))
            }
        }
    }
    Ok(a)
}

fn lower_limits(t: Option<&Table>) -> Result<Limits, ManifestError> {
    let mut limits = Limits::default();
    let Some(t) = t else { return Ok(limits) };
    for e in &t.entries {
        match e.key.as_str() {
            "max_wall_ms" => {
                let v = want_u64(e)?;
                if v == 0 {
                    return err(format!("line {}: `max_wall_ms` must be positive", e.line));
                }
                limits.max_wall_ms = Some(v);
            }
            _ => return Err(unknown_key("[limits]", e, &["max_wall_ms"])),
        }
    }
    Ok(limits)
}

fn lower_policy(t: Option<&Table>) -> Result<InvariantPolicyValues, ManifestError> {
    let mut p = InvariantPolicyValues::default();
    let Some(t) = t else { return Ok(p) };
    for e in &t.entries {
        match e.key.as_str() {
            "check_every" => p.check_every_secs = want_pos_f64(e)?,
            "transient_deadline" => p.transient_deadline_secs = want_pos_f64(e)?,
            "freshness" => p.freshness_secs = want_pos_f64(e)?,
            _ => {
                return Err(unknown_key(
                    "[invariants]",
                    e,
                    &["check_every", "transient_deadline", "freshness"],
                ))
            }
        }
    }
    Ok(p)
}

struct RunSection {
    duration_secs: f64,
    settle_secs: Option<f64>,
}

fn lower_run(t: Option<&Table>) -> Result<RunSection, ManifestError> {
    let t = t.ok_or_else(|| ManifestError("missing required section [run]".to_string()))?;
    let mut duration = None;
    let mut settle = None;
    for e in &t.entries {
        match e.key.as_str() {
            "duration" => duration = Some(want_pos_f64(e)?),
            "settle" => {
                let x = want_f64(e)?;
                if x < 0.0 {
                    return err(format!("line {}: `settle` must be nonnegative", e.line));
                }
                settle = Some(x);
            }
            _ => return Err(unknown_key("[run]", e, &["duration", "settle"])),
        }
    }
    Ok(RunSection {
        duration_secs: duration
            .ok_or_else(|| ManifestError(format!("line {}: [run] needs `duration`", t.line)))?,
        settle_secs: settle,
    })
}

/// Lower `[checkpoints] at = [...]`: strictly ascending simulated
/// seconds inside `[0, duration + settle]`.
fn lower_checkpoints(t: Option<&Table>, horizon: f64) -> Result<Vec<f64>, ManifestError> {
    let Some(t) = t else {
        return Ok(Vec::new());
    };
    let mut at = None;
    for e in &t.entries {
        match e.key.as_str() {
            "at" => {
                let Value::Array(items) = &e.value else {
                    return err(format!(
                        "line {}: `at` must be an array of times, got {}",
                        e.line,
                        e.value.type_name()
                    ));
                };
                let mut times = Vec::with_capacity(items.len());
                for v in items {
                    let x = match v {
                        Value::Int(i) => *i as f64,
                        Value::Float(x) => *x,
                        other => {
                            return err(format!(
                                "line {}: checkpoint times must be numbers, got {}",
                                e.line,
                                other.type_name()
                            ))
                        }
                    };
                    if !(x.is_finite() && (0.0..=horizon).contains(&x)) {
                        return err(format!(
                            "line {}: checkpoint time {x} outside the run (0..={horizon} seconds)",
                            e.line
                        ));
                    }
                    if times.last().is_some_and(|&prev| x <= prev) {
                        return err(format!(
                            "line {}: checkpoint times must be strictly ascending",
                            e.line
                        ));
                    }
                    times.push(x);
                }
                at = Some(times);
            }
            _ => return Err(unknown_key("[checkpoints]", e, &["at"])),
        }
    }
    at.ok_or_else(|| ManifestError(format!("line {}: [checkpoints] needs `at`", t.line)))
}

impl Manifest {
    /// Parse and fully validate a v1 manifest.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let doc = toml::parse(text)?;

        // top level
        let mut version = None;
        let mut name = None;
        let mut seed = 0u64;
        for e in &doc.top.entries {
            match e.key.as_str() {
                "scenario_version" => version = Some(want_int(e)?),
                "name" => name = Some(want_str(e)?.to_string()),
                "seed" => seed = want_u64(e)?,
                _ => {
                    return Err(unknown_key(
                        "the top level",
                        e,
                        &["scenario_version", "name", "seed"],
                    ))
                }
            }
        }
        match version {
            Some(SCENARIO_VERSION) => {}
            Some(v) => {
                return err(format!(
                    "unsupported scenario_version {v} (this runtime speaks {SCENARIO_VERSION})"
                ))
            }
            None => return err("missing required `scenario_version`".to_string()),
        }
        let name =
            name.ok_or_else(|| ManifestError("missing required top-level `name`".to_string()))?;
        if name.is_empty() {
            return err("`name` must not be empty".to_string());
        }

        // every section must be one we know
        for t in &doc.tables {
            if !matches!(
                t.name.as_str(),
                "cluster"
                    | "federation"
                    | "run"
                    | "invariants"
                    | "limits"
                    | "assertions"
                    | "checkpoints"
            ) {
                return err(format!("line {}: unknown section [{}]", t.line, t.name));
            }
        }
        for t in &doc.arrays {
            if t.name != "fault" {
                return err(format!(
                    "line {}: unknown array section [[{}]] (only [[fault]] repeats)",
                    t.line, t.name
                ));
            }
        }

        let run = lower_run(doc.table("run"))?;
        let limits = lower_limits(doc.table("limits"))?;

        let mode = match (doc.table("cluster"), doc.table("federation")) {
            (Some(_), Some(f)) => {
                return err(format!(
                    "line {}: [cluster] and [federation] are mutually exclusive",
                    f.line
                ))
            }
            (None, None) => {
                return err("a scenario needs a [cluster] or [federation] section".to_string())
            }
            (Some(cluster), None) => {
                let mut nodes = None;
                let mut rack_network = true;
                let mut flap_threshold = None;
                let mut quarantine_release = None;
                for e in &cluster.entries {
                    match e.key.as_str() {
                        "nodes" => {
                            let n = want_u64(e)?;
                            if n == 0 {
                                return err(format!("line {}: `nodes` must be positive", e.line));
                            }
                            nodes = Some(u32::try_from(n).map_err(|_| {
                                ManifestError(format!("line {}: `nodes` is too large", e.line))
                            })?);
                        }
                        "rack_network" => rack_network = want_bool(e)?,
                        "flap_threshold" => {
                            let v = want_u64(e)?;
                            flap_threshold = Some(u32::try_from(v).map_err(|_| {
                                ManifestError(format!(
                                    "line {}: `flap_threshold` is too large",
                                    e.line
                                ))
                            })?);
                        }
                        "quarantine_release" => quarantine_release = Some(want_pos_f64(e)?),
                        _ => {
                            return Err(unknown_key(
                                "[cluster]",
                                e,
                                &[
                                    "nodes",
                                    "rack_network",
                                    "flap_threshold",
                                    "quarantine_release",
                                ],
                            ))
                        }
                    }
                }
                let n_nodes = nodes.ok_or_else(|| {
                    ManifestError(format!("line {}: [cluster] needs `nodes`", cluster.line))
                })?;

                let ctx = FaultCtx {
                    n_nodes,
                    n_racks: (n_nodes as usize).div_ceil(NODE_PORTS),
                    rack_network,
                    duration_secs: run.duration_secs,
                };
                let mut campaign = Campaign::new(&name, seed, n_nodes, run.duration_secs);
                campaign.settle_secs = run.settle_secs.unwrap_or(600.0);
                campaign.flap_threshold = flap_threshold;
                campaign.quarantine_release_secs = quarantine_release;
                for t in doc.arrays_named("fault") {
                    let (at, kind) = lower_chaos_fault(t, &ctx)?;
                    campaign = campaign.at(at, kind);
                }
                Mode::Chaos(ChaosSpec {
                    campaign,
                    rack_network,
                    policy: lower_policy(doc.table("invariants"))?,
                })
            }
            (None, Some(fed)) => {
                if let Some(t) = doc.table("invariants") {
                    return err(format!(
                        "line {}: [invariants] only applies to [cluster] scenarios",
                        t.line
                    ));
                }
                let mut clusters = None;
                let mut nodes_per = None;
                let mut uplink = 10.0;
                let mut stale_after = 40.0;
                for e in &fed.entries {
                    match e.key.as_str() {
                        "clusters" => {
                            let n = want_u64(e)?;
                            if n == 0 {
                                return err(format!(
                                    "line {}: `clusters` must be positive",
                                    e.line
                                ));
                            }
                            clusters = Some(u16::try_from(n).map_err(|_| {
                                ManifestError(format!("line {}: `clusters` is too large", e.line))
                            })?);
                        }
                        "nodes_per_cluster" => {
                            let n = want_u64(e)?;
                            if n == 0 {
                                return err(format!(
                                    "line {}: `nodes_per_cluster` must be positive",
                                    e.line
                                ));
                            }
                            nodes_per = Some(u32::try_from(n).map_err(|_| {
                                ManifestError(format!(
                                    "line {}: `nodes_per_cluster` is too large",
                                    e.line
                                ))
                            })?);
                        }
                        "uplink" => uplink = want_pos_f64(e)?,
                        "stale_after" => stale_after = want_pos_f64(e)?,
                        _ => {
                            return Err(unknown_key(
                                "[federation]",
                                e,
                                &["clusters", "nodes_per_cluster", "uplink", "stale_after"],
                            ))
                        }
                    }
                }
                let clusters = clusters.ok_or_else(|| {
                    ManifestError(format!("line {}: [federation] needs `clusters`", fed.line))
                })?;
                let nodes_per = nodes_per.ok_or_else(|| {
                    ManifestError(format!(
                        "line {}: [federation] needs `nodes_per_cluster`",
                        fed.line
                    ))
                })?;
                let mut faults = Vec::new();
                for t in doc.arrays_named("fault") {
                    faults.push(lower_fed_fault(t, clusters, run.duration_secs)?);
                }
                Mode::Federation(FedSpec {
                    clusters,
                    nodes_per_cluster: nodes_per,
                    duration_secs: run.duration_secs,
                    settle_secs: run.settle_secs.unwrap_or(0.0),
                    uplink_secs: uplink,
                    stale_after_secs: stale_after,
                    faults,
                })
            }
        };

        let assertions =
            lower_assertions(doc.table("assertions"), matches!(mode, Mode::Federation(_)))?;
        let horizon = match &mode {
            Mode::Chaos(spec) => spec.campaign.duration_secs + spec.campaign.settle_secs,
            Mode::Federation(spec) => spec.duration_secs + spec.settle_secs,
        };
        let checkpoints = lower_checkpoints(doc.table("checkpoints"), horizon)?;
        Ok(Manifest {
            name,
            seed,
            mode,
            limits,
            assertions,
            checkpoints,
        })
    }

    /// Lower a programmatic [`Campaign`] into a manifest — the shim the
    /// legacy `cwx chaos run` flags ride through, so both entry points
    /// share one runtime.
    pub fn from_campaign(campaign: &Campaign) -> Manifest {
        Manifest {
            name: campaign.name.clone(),
            seed: campaign.seed,
            mode: Mode::Chaos(ChaosSpec {
                campaign: campaign.clone(),
                rack_network: true,
                policy: InvariantPolicyValues::default(),
            }),
            limits: Limits::default(),
            assertions: Assertions::default(),
            checkpoints: Vec::new(),
        }
    }

    /// Lower the legacy `cwx fed sim` flags into a manifest. The census
    /// check those flags always performed becomes an explicit
    /// `census_match` assertion.
    pub fn federation(
        name: &str,
        clusters: u16,
        nodes_per_cluster: u32,
        seed: u64,
        duration_secs: f64,
    ) -> Manifest {
        Manifest {
            name: name.to_string(),
            seed,
            mode: Mode::Federation(FedSpec {
                clusters,
                nodes_per_cluster,
                duration_secs,
                settle_secs: 0.0,
                uplink_secs: 10.0,
                stale_after_secs: 40.0,
                faults: Vec::new(),
            }),
            limits: Limits::default(),
            assertions: Assertions {
                census_match: Some(true),
                ..Assertions::default()
            },
            checkpoints: Vec::new(),
        }
    }

    /// Override the seed (the `--seed` flag), keeping the embedded
    /// campaign in sync.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
        if let Mode::Chaos(spec) = &mut self.mode {
            spec.campaign.seed = seed;
        }
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The embedded campaign, when this is a chaos scenario.
    pub fn campaign(&self) -> Option<&Campaign> {
        match &self.mode {
            Mode::Chaos(spec) => Some(&spec.campaign),
            Mode::Federation(_) => None,
        }
    }

    /// Number of scheduled faults, in either mode.
    pub fn fault_count(&self) -> usize {
        match &self.mode {
            Mode::Chaos(spec) => spec.campaign.events.len(),
            Mode::Federation(spec) => spec.faults.len(),
        }
    }

    /// The fault schedule in chronological order, rendered for reports:
    /// `(seconds, description)`. Ties keep manifest order (the order
    /// the runner applies them in).
    pub fn fault_schedule(&self) -> Vec<(f64, String)> {
        let mut v: Vec<(f64, String)> = match &self.mode {
            Mode::Chaos(spec) => spec
                .campaign
                .events
                .iter()
                .map(|e| (e.at_secs, e.kind.to_string()))
                .collect(),
            Mode::Federation(spec) => spec
                .faults
                .iter()
                .map(|(at, f)| {
                    let d = match f {
                        FedFault::Disconnect(c) => format!("cluster-disconnect {c}"),
                        FedFault::Heal(c) => format!("cluster-heal {c}"),
                    };
                    (*at, d)
                })
                .collect(),
        };
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }

    /// A copy of this manifest keeping only the first `k` faults in
    /// chronological order (ties keep manifest order) — the probe
    /// schedules `cwx bisect` binary-searches over. Checkpoints are
    /// dropped: probes don't snapshot.
    pub fn with_fault_prefix(&self, k: usize) -> Manifest {
        let mut m = self.clone();
        m.checkpoints = Vec::new();
        match &mut m.mode {
            Mode::Chaos(spec) => {
                let mut ev = std::mem::take(&mut spec.campaign.events);
                ev.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
                ev.truncate(k);
                spec.campaign.events = ev;
            }
            Mode::Federation(spec) => {
                let mut ev = std::mem::take(&mut spec.faults);
                ev.sort_by(|a, b| a.0.total_cmp(&b.0));
                ev.truncate(k);
                spec.faults = ev;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
scenario_version = 1
name = "smoke"
seed = 7

[cluster]
nodes = 40
flap_threshold = 6
quarantine_release = 500.0

[run]
duration = 900
settle = 300

[invariants]
transient_deadline = 1800

[limits]
max_wall_ms = 60000

[[fault]]
at = 100
kind = "kernel-panic"
node = 7

[[fault]]
at = 200
kind = "partition-rack"
rack = 2

[[fault]]
at = 350
kind = "heal-rack"
rack = 2

[assertions]
min_availability = 0.8
final_up = "all"
quarantined_empty = true
"#;

    #[test]
    fn parses_a_full_chaos_manifest() {
        let m = Manifest::parse(GOOD).expect("parses");
        assert_eq!(m.name, "smoke");
        assert_eq!(m.seed, 7);
        assert_eq!(m.limits.max_wall_ms, Some(60000));
        assert_eq!(m.assertions.final_up, Some(FinalUp::All));
        let Mode::Chaos(spec) = &m.mode else {
            panic!("chaos mode")
        };
        assert_eq!(spec.campaign.n_nodes, 40);
        assert_eq!(spec.campaign.settle_secs, 300.0);
        assert_eq!(spec.campaign.flap_threshold, Some(6));
        assert_eq!(spec.campaign.quarantine_release_secs, Some(500.0));
        assert_eq!(spec.policy.transient_deadline_secs, 1800.0);
        assert_eq!(spec.policy.check_every_secs, 5.0);
        assert_eq!(spec.campaign.events.len(), 3);
        assert_eq!(spec.campaign.events[0].kind, FaultKind::KernelPanic(7));
        assert_eq!(spec.campaign.events[1].kind, FaultKind::PartitionRack(2));
    }

    #[test]
    fn parses_a_federation_manifest() {
        let m = Manifest::parse(
            r#"
scenario_version = 1
name = "fed"

[federation]
clusters = 3
nodes_per_cluster = 16
uplink = 5

[run]
duration = 240
settle = 60

[[fault]]
at = 60
kind = "cluster-disconnect"
cluster = 1

[[fault]]
at = 120
kind = "cluster-heal"
cluster = 1

[assertions]
census_match = true
total_nodes = 48
"#,
        )
        .expect("parses");
        let Mode::Federation(spec) = &m.mode else {
            panic!("federation mode")
        };
        assert_eq!(spec.clusters, 3);
        assert_eq!(spec.uplink_secs, 5.0);
        assert_eq!(spec.stale_after_secs, 40.0);
        assert_eq!(
            spec.faults,
            vec![(60.0, FedFault::Disconnect(1)), (120.0, FedFault::Heal(1))]
        );
        assert_eq!(m.assertions.total_nodes, Some(48));
    }

    /// The negative-parse pin: every typo class is a hard error that
    /// names a line, never a silent no-op.
    #[test]
    fn rejects_bad_manifests_with_context() {
        let cases: &[(&str, &str, &str)] = &[
            ("no version", "name = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10", "scenario_version"),
            (
                "future version",
                "scenario_version = 2\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10",
                "unsupported scenario_version 2",
            ),
            (
                "typo'd top key",
                "scenario_version = 1\nname = \"x\"\nsede = 3\n[cluster]\nnodes = 4\n[run]\nduration = 10",
                "unknown key `sede`",
            ),
            (
                "typo'd fault kind",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [[fault]]\nat = 1\nkind = \"pannic\"\nnode = 1",
                "unknown fault kind \"pannic\"",
            ),
            (
                "unknown fault operand",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [[fault]]\nat = 1\nkind = \"kernel-panic\"\nnode = 1\nrack = 0",
                "does not take `rack`",
            ),
            (
                "node out of range",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [[fault]]\nat = 1\nkind = \"kernel-panic\"\nnode = 4",
                "out of range",
            ),
            (
                "rack out of range",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 40\n[run]\nduration = 10\n\
                 [[fault]]\nat = 1\nkind = \"partition-rack\"\nrack = 4",
                "out of range",
            ),
            (
                "fault after the end",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [[fault]]\nat = 11\nkind = \"kernel-panic\"\nnode = 1",
                "outside the run",
            ),
            (
                "partition without rack network",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 40\nrack_network = false\n\
                 [run]\nduration = 10\n[[fault]]\nat = 1\nkind = \"partition-rack\"\nrack = 0",
                "rack_network",
            ),
            (
                "both modes",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n\
                 [federation]\nclusters = 2\nnodes_per_cluster = 4\n[run]\nduration = 10",
                "mutually exclusive",
            ),
            (
                "neither mode",
                "scenario_version = 1\nname = \"x\"\n[run]\nduration = 10",
                "needs a [cluster] or [federation]",
            ),
            (
                "fed assertion in chaos mode",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [assertions]\ncensus_match = true",
                "only applies to [federation]",
            ),
            (
                "chaos assertion in fed mode",
                "scenario_version = 1\nname = \"x\"\n[federation]\nclusters = 2\nnodes_per_cluster = 4\n\
                 [run]\nduration = 10\n[assertions]\nmin_availability = 0.5",
                "only applies to [cluster]",
            ),
            (
                "invariants in fed mode",
                "scenario_version = 1\nname = \"x\"\n[federation]\nclusters = 2\nnodes_per_cluster = 4\n\
                 [run]\nduration = 10\n[invariants]\nfreshness = 60",
                "only applies to [cluster]",
            ),
            (
                "fed fault in chaos mode",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [[fault]]\nat = 1\nkind = \"cluster-disconnect\"\ncluster = 0",
                "federation fault",
            ),
            (
                "unknown section",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [clutser]\nnodes = 4",
                "unknown section",
            ),
            (
                "wrong value type",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = \"forty\"\n[run]\nduration = 10",
                "must be an integer",
            ),
            (
                "bad audit hash",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [assertions]\naudit_hash = \"xyz\"",
                "16 hex digits",
            ),
            (
                "missing run",
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4",
                "[run]",
            ),
        ];
        for (what, text, needle) in cases {
            let e = Manifest::parse(text).expect_err(what);
            assert!(e.0.contains(needle), "{what}: {e}");
        }
    }

    #[test]
    fn shim_constructors_mirror_the_legacy_flags() {
        let c = Campaign::new("t", 5, 8, 100.0).at(10.0, FaultKind::AgentCrash(3));
        let mut m = Manifest::from_campaign(&c);
        assert_eq!(m.campaign(), Some(&c));
        m.set_seed(42);
        assert_eq!(m.seed, 42);
        assert_eq!(m.campaign().unwrap().seed, 42);

        let f = Manifest::federation("fed-smoke", 3, 16, 42, 600.0);
        assert_eq!(f.assertions.census_match, Some(true));
        let Mode::Federation(spec) = &f.mode else {
            panic!()
        };
        assert_eq!(spec.uplink_secs, 10.0);
    }

    #[test]
    fn audit_hash_assertion_accepts_both_hex_spellings() {
        for spelling in ["\"0xdeadbeefdeadbeef\"", "\"deadbeefdeadbeef\""] {
            let text = format!(
                "scenario_version = 1\nname = \"x\"\n[cluster]\nnodes = 4\n[run]\nduration = 10\n\
                 [assertions]\naudit_hash = {spelling}"
            );
            let m = Manifest::parse(&text).expect(spelling);
            assert_eq!(m.assertions.audit_hash, Some(0xdead_beef_dead_beef));
        }
    }
}
