//! `cwx bisect`: binary-search a failing scenario's fault schedule for
//! the minimal chronological prefix that still fails, and name the
//! culprit fault plus the first violated promise.
//!
//! Every probe is a **full replay** of the scenario with the schedule
//! truncated to a prefix — determinism makes each probe exact, but a
//! probe costs one complete run, so a schedule of `n` faults takes
//! `O(log n) + 2` runs. Probes reuse the ordinary runtime
//! ([`run_scenario`]), so a probe's verdict is precisely what
//! `cwx run` would report for that truncated manifest.

use std::fmt::Write as _;

use crate::artifact::esc_json;
use crate::manifest::Manifest;
use crate::run::{run_scenario, Outcome};

/// One bisection probe: a full run of a fault-prefix manifest.
#[derive(Debug, Clone)]
pub struct Probe {
    /// How many faults (chronological prefix) this probe kept.
    pub prefix: usize,
    /// The probe run's outcome.
    pub outcome: Outcome,
    /// The probe run's result fingerprint.
    pub fingerprint: u64,
    /// First failed case of the probe, when it failed.
    pub first_failure: Option<String>,
}

/// The bisection verdict.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// Scenario name.
    pub name: String,
    /// Seed the probes ran under.
    pub seed: u64,
    /// Total faults in the schedule.
    pub fault_count: usize,
    /// Smallest chronological prefix that still fails. `0` means the
    /// scenario fails with no faults at all (the failure is baked into
    /// the assertions or the base world).
    pub minimal_prefix: usize,
    /// The last fault of the minimal prefix — the one whose addition
    /// flips the run from pass to fail: `(chronological index, at
    /// seconds, kind)`. `None` when `minimal_prefix` is zero.
    pub culprit: Option<(usize, f64, String)>,
    /// First violated promise of the minimal failing run
    /// (`invariant:NAME` or `assert:NAME`).
    pub first_failure: Option<String>,
    /// Every probe, in execution order.
    pub probes: Vec<Probe>,
}

impl BisectReport {
    /// Render the machine-readable `bisect.json` document
    /// (`cwx-bisect-v1`).
    pub fn to_json(&self, schedule: &[(f64, String)]) -> String {
        let mut out = format!(
            "{{\"schema\":\"cwx-bisect-v1\",\"name\":\"{}\",\"seed\":{},\"fault_count\":{},\
             \"minimal_prefix\":{}",
            esc_json(&self.name),
            self.seed,
            self.fault_count,
            self.minimal_prefix
        );
        match &self.culprit {
            Some((i, at, kind)) => {
                let _ = write!(
                    out,
                    ",\"culprit\":{{\"index\":{i},\"at\":{at},\"kind\":\"{}\"}}",
                    esc_json(kind)
                );
            }
            None => out.push_str(",\"culprit\":null"),
        }
        match &self.first_failure {
            Some(f) => {
                let _ = write!(out, ",\"first_failure\":\"{}\"", esc_json(f));
            }
            None => out.push_str(",\"first_failure\":null"),
        }
        out.push_str(",\"minimal_faults\":[");
        for (i, (at, kind)) in schedule.iter().take(self.minimal_prefix).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"at\":{at},\"kind\":\"{}\"}}", esc_json(kind));
        }
        out.push_str("],\"probes\":[");
        for (i, p) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"prefix\":{},\"outcome\":\"{}\",\"exit_code\":{},\"fingerprint\":\"{:016x}\"}}",
                p.prefix,
                p.outcome.as_str(),
                p.outcome.exit_code(),
                p.fingerprint
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable summary lines for the CLI.
    pub fn summary(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "bisect `{}`: {} probes over {} faults -> minimal failing prefix {}",
            self.name,
            self.probes.len(),
            self.fault_count,
            self.minimal_prefix
        )];
        match &self.culprit {
            Some((i, at, kind)) => lines.push(format!(
                "culprit: fault #{i} at {at}s ({kind}) flips the run from pass to fail"
            )),
            None => lines.push("the scenario fails with no faults at all".to_string()),
        }
        if let Some(f) = &self.first_failure {
            lines.push(format!("first violated promise: {f}"));
        }
        lines
    }
}

/// Bisect a failing scenario. Errors (single-line, exit 3 at the CLI):
/// an empty fault schedule, a full schedule that doesn't fail, or a
/// probe that ends in an operational error.
pub fn bisect_scenario(m: &Manifest) -> Result<BisectReport, String> {
    let schedule = m.fault_schedule();
    let n = schedule.len();
    if n == 0 {
        return Err("the scenario schedules no faults; nothing to bisect".to_string());
    }

    let mut probes: Vec<Probe> = Vec::new();
    let probe = |k: usize, probes: &mut Vec<Probe>| -> Result<bool, String> {
        let r = run_scenario(&m.with_fault_prefix(k));
        if r.outcome == Outcome::Error {
            return Err(format!(
                "probe with fault prefix {k} ended in an operational error; cannot bisect"
            ));
        }
        let fails = r.outcome != Outcome::Pass;
        probes.push(Probe {
            prefix: k,
            outcome: r.outcome,
            fingerprint: r.fingerprint,
            first_failure: r.first_failure,
        });
        Ok(fails)
    };

    if !probe(n, &mut probes)? {
        return Err(format!(
            "the full schedule ({n} faults) passes; there is no failure to bisect"
        ));
    }
    // invariant: lo passes, hi fails
    let (mut lo, mut hi) = (0usize, n);
    if probe(0, &mut probes)? {
        hi = 0;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid, &mut probes)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let minimal = hi;
    let culprit = minimal
        .checked_sub(1)
        .map(|i| (i, schedule[i].0, schedule[i].1.clone()));
    let first_failure = probes
        .iter()
        .find(|p| p.prefix == minimal)
        .and_then(|p| p.first_failure.clone());
    Ok(BisectReport {
        name: m.name.clone(),
        seed: m.seed,
        fault_count: n,
        minimal_prefix: minimal,
        culprit,
        first_failure,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // the lone crash at 30s emails the admin, so `max_emails = 0`
    // fails as soon as the schedule includes it; the recover at 60s is
    // noise the bisection must discard
    const FAILING: &str = r#"
scenario_version = 1
name = "bisect-tiny"
seed = 11

[cluster]
nodes = 8

[run]
duration = 120
settle = 120

[[fault]]
at = 30
kind = "agent-crash"
node = 3

[[fault]]
at = 60
kind = "agent-recover"
node = 3

[assertions]
max_emails = 0
"#;

    #[test]
    fn finds_the_minimal_failing_prefix() {
        let m = Manifest::parse(FAILING).expect("parses");
        let r = bisect_scenario(&m).expect("bisects");
        assert_eq!(r.fault_count, 2);
        assert_eq!(r.minimal_prefix, 1);
        let (i, at, kind) = r.culprit.clone().expect("culprit");
        assert_eq!(i, 0);
        assert_eq!(at, 30.0);
        assert!(
            kind.contains("agent-crash") || kind.contains("AgentCrash"),
            "{kind}"
        );
        assert_eq!(r.first_failure.as_deref(), Some("assert:max_emails"));
        // the empty prefix passes, the full schedule fails
        assert!(r
            .probes
            .iter()
            .any(|p| p.prefix == 0 && p.outcome == Outcome::Pass));
        assert!(r
            .probes
            .iter()
            .any(|p| p.prefix == 2 && p.outcome != Outcome::Pass));
        let json = r.to_json(&m.fault_schedule());
        assert!(json.contains("\"schema\":\"cwx-bisect-v1\""), "{json}");
        assert!(json.contains("\"minimal_prefix\":1"), "{json}");
        assert!(
            json.contains("\"first_failure\":\"assert:max_emails\""),
            "{json}"
        );
    }

    #[test]
    fn passing_schedule_is_an_error() {
        let text = FAILING.replace("max_emails = 0", "final_up = \"all\"");
        let m = Manifest::parse(&text).expect("parses");
        let err = bisect_scenario(&m).expect_err("nothing to bisect");
        assert!(err.contains("passes"), "{err}");
    }
}
