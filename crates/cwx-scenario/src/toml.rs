//! A strict, line-oriented parser for the TOML subset scenario
//! manifests use: top-level `key = value` pairs, `[section]` tables,
//! `[[section]]` array tables, `#` comments, and scalar values
//! (strings, integers, floats, booleans).
//!
//! Every entry remembers its 1-based source line so the manifest layer
//! can reject unknown keys and bad enum values with context instead of
//! silently ignoring typos — a `fault_kinds = "pannic"` must be a hard
//! error naming the line, never a no-op.

use std::fmt;

/// A scalar value, or a single-line array of scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A `[a, b, c]` array of scalars (no nesting).
    Array(Vec<Value>),
}

impl Value {
    /// Human name of the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// One `key = value` pair with its source line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Key text.
    pub key: String,
    /// Parsed value.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// A table: the top level, one `[section]`, or one `[[section]]`
/// element.
#[derive(Debug, Clone)]
pub struct Table {
    /// Section name (`""` for the top level).
    pub name: String,
    /// 1-based line of the section header (0 for the top level).
    pub line: usize,
    /// Entries in source order.
    pub entries: Vec<Entry>,
}

impl Table {
    fn new(name: &str, line: usize) -> Table {
        Table {
            name: name.to_string(),
            line,
            entries: Vec::new(),
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document.
#[derive(Debug, Clone)]
pub struct Doc {
    /// Top-level entries (before any section header).
    pub top: Table,
    /// `[section]` tables, in source order.
    pub tables: Vec<Table>,
    /// `[[section]]` array elements, in source order.
    pub arrays: Vec<Table>,
}

impl Doc {
    /// Look up a `[section]` table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All `[[section]]` elements with the given name, in source order.
    pub fn arrays_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.arrays.iter().filter(move |t| t.name == name)
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn check_name(name: &str, what: &str, line: usize) -> Result<(), String> {
    if name.is_empty() {
        return Err(format!("line {line}: empty {what} name"));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return Err(format!(
            "line {line}: invalid character {c:?} in {what} name {name:?}"
        ));
    }
    Ok(())
}

fn parse_value(s: &str, line: usize) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line}: unterminated array {s:?}"))?
            .trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            // split on commas outside quotes; nested arrays are rejected
            // because elements are parsed as scalars
            let mut depth_q = false;
            let mut start = 0usize;
            let bytes = inner.as_bytes();
            for i in 0..=bytes.len() {
                let split = i == bytes.len() || (bytes[i] == b',' && !depth_q);
                if i < bytes.len() && bytes[i] == b'"' {
                    depth_q = !depth_q;
                }
                if split {
                    let item = inner[start..i].trim();
                    if item.is_empty() {
                        return Err(format!("line {line}: empty array element in {s:?}"));
                    }
                    items.push(parse_scalar(item, line)?);
                    start = i + 1;
                }
            }
        }
        return Ok(Value::Array(items));
    }
    parse_scalar(s, line)
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(format!("line {line}: malformed string {s}")),
        };
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    // reject "nan"/"inf" spellings f64::from_str would accept: a
    // manifest number is always finite and starts with a digit or sign
    let numeric_shape = s
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
    if numeric_shape {
        if let Ok(x) = s.parse::<f64>() {
            if x.is_finite() {
                return Ok(Value::Float(x));
            }
        }
    }
    Err(format!(
        "line {line}: cannot parse value {s:?} (expected a quoted string, number or boolean)"
    ))
}

/// Parse `text` into a [`Doc`]. Every error names its source line.
pub fn parse(text: &str) -> Result<Doc, String> {
    enum Cur {
        Top,
        Table(usize),
        Array(usize),
    }
    let mut doc = Doc {
        top: Table::new("", 0),
        tables: Vec::new(),
        arrays: Vec::new(),
    };
    let mut cur = Cur::Top;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {line_no}: malformed section header {line:?}"))?
                .trim();
            check_name(name, "section", line_no)?;
            doc.arrays.push(Table::new(name, line_no));
            cur = Cur::Array(doc.arrays.len() - 1);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: malformed section header {line:?}"))?
                .trim();
            check_name(name, "section", line_no)?;
            if doc.tables.iter().any(|t| t.name == name) {
                return Err(format!("line {line_no}: duplicate section [{name}]"));
            }
            doc.tables.push(Table::new(name, line_no));
            cur = Cur::Table(doc.tables.len() - 1);
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            format!("line {line_no}: expected `key = value` or a `[section]` header, got {line:?}")
        })?;
        let key = key.trim();
        check_name(key, "key", line_no)?;
        let value = parse_value(value.trim(), line_no)?;
        let table = match cur {
            Cur::Top => &mut doc.top,
            Cur::Table(i) => &mut doc.tables[i],
            Cur::Array(i) => &mut doc.arrays[i],
        };
        if table.get(key).is_some() {
            let at = if table.name.is_empty() {
                "at the top level".to_string()
            } else {
                format!("in [{}]", table.name)
            };
            return Err(format!("line {line_no}: duplicate key `{key}` {at}"));
        }
        table.entries.push(Entry {
            key: key.to_string(),
            value,
            line: line_no,
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse(
            r#"
# top comment
scenario_version = 1
name = "demo # not a comment"
pi = 3.25
neg = -4

[cluster]
nodes = 40
rack_network = true

[[fault]]
at = 10
kind = "agent-crash"

[[fault]]
at = 20.5
kind = "heal-rack"
"#,
        )
        .expect("parses");
        assert_eq!(
            doc.top.get("scenario_version").unwrap().value,
            Value::Int(1)
        );
        assert_eq!(
            doc.top.get("name").unwrap().value,
            Value::Str("demo # not a comment".into())
        );
        assert_eq!(doc.top.get("pi").unwrap().value, Value::Float(3.25));
        assert_eq!(doc.top.get("neg").unwrap().value, Value::Int(-4));
        let cluster = doc.table("cluster").expect("cluster section");
        assert_eq!(cluster.get("nodes").unwrap().value, Value::Int(40));
        assert_eq!(
            cluster.get("rack_network").unwrap().value,
            Value::Bool(true)
        );
        let faults: Vec<_> = doc.arrays_named("fault").collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[1].get("at").unwrap().value, Value::Float(20.5));
        // line numbers survive for error context
        assert_eq!(doc.top.get("pi").unwrap().line, 5);
        assert_eq!(faults[0].line, 12);
    }

    #[test]
    fn parses_arrays() {
        let doc = parse(
            r#"
empty = []
times = [10, 20.5, 30] # trailing comment
names = ["a, b", "c"]
"#,
        )
        .expect("parses");
        assert_eq!(doc.top.get("empty").unwrap().value, Value::Array(vec![]));
        assert_eq!(
            doc.top.get("times").unwrap().value,
            Value::Array(vec![Value::Int(10), Value::Float(20.5), Value::Int(30)])
        );
        assert_eq!(
            doc.top.get("names").unwrap().value,
            Value::Array(vec![Value::Str("a, b".into()), Value::Str("c".into())])
        );
        assert_eq!(
            doc.top.get("times").unwrap().value.to_string(),
            "[10, 20.5, 30]"
        );
    }

    #[test]
    fn rejects_malformed_arrays() {
        for (text, needle) in [
            ("x = [1, 2", "unterminated array"),
            ("x = [1,, 2]", "empty array element"),
            ("x = [1, banana]", "cannot parse value"),
        ] {
            let err = parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_input_with_line_context() {
        for (text, needle) in [
            ("nodes 40", "line 1"),
            ("[cluster\nnodes = 1", "malformed section"),
            ("x = \"unterminated", "malformed string"),
            ("x = banana", "cannot parse value"),
            ("x = nan", "cannot parse value"),
            ("x = inf", "cannot parse value"),
            ("a = 1\na = 2", "duplicate key"),
            ("[s]\n[s]", "duplicate section"),
            ("bad key = 1", "invalid character"),
        ] {
            let err = parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }
}
