//! LinuxBIOS vs. commercial BIOS boot model (paper §2).
//!
//! The paper's claims about LinuxBIOS are timing and manageability
//! claims:
//!
//! * it "initializes the hardware, activates serial console output,
//!   checks for valid memory, and starts loading the operating system —
//!   only it does it in about 3 seconds, whereas most commercial BIOS
//!   alternatives require about 30 to 60 seconds",
//! * it "reports all detected errors and hardware failures using the
//!   serial console" (captured by the ICE Box for post-mortem analysis),
//! * it can boot over the network or local disk, and
//! * settings and firmware images can be changed remotely, taking effect
//!   at the next reboot.
//!
//! [`BiosChip`] models one node's firmware: a phase-by-phase boot plan
//! with era-plausible durations and serial output, a settings store, and
//! a deferred flash slot. The legacy-BIOS baseline has the same surface
//! but a 30–60 s plan, no serial output until the bootloader, and no
//! remote reconfiguration — exactly the deficiencies §2 lists.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use cwx_util::rng::normal_clamped;
use cwx_util::time::SimDuration;
use rand::rngs::StdRng;

/// Which firmware a node carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Firmware {
    /// The LinuxBIOS replacement firmware (a Linux kernel in flash).
    LinuxBios,
    /// A vendor BIOS — the baseline.
    LegacyBios,
}

/// Where the kernel comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootSource {
    /// Local hard disk.
    Disk,
    /// Network boot over Ethernet (DHCP + TFTP-style).
    Ethernet,
    /// Network boot over a high-speed interconnect (Myrinet/Quadrics/SCI
    /// — possible *because* Linux is the boot mechanism).
    Interconnect,
    /// Root over NFS.
    Nfs,
}

/// One step of a boot sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BootPhase {
    /// Phase name.
    pub name: &'static str,
    /// How long the phase takes.
    pub duration: SimDuration,
    /// Serial console output emitted at the start of the phase (empty
    /// for phases that are silent — the legacy BIOS mostly is).
    pub console: String,
}

/// A concrete boot plan for one power-on.
#[derive(Debug, Clone, PartialEq)]
pub struct BootPlan {
    /// Firmware that produced the plan.
    pub firmware: Firmware,
    /// The phases in order.
    pub phases: Vec<BootPhase>,
}

impl BootPlan {
    /// Total time from power-good to kernel handoff.
    pub fn firmware_time(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| !p.name.starts_with("os:"))
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Total time from power-good to a fully booted OS.
    pub fn total_time(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }
}

/// Outcome of a memory check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryCheck {
    /// RAM is fine.
    Ok,
    /// A DIMM is bad; LinuxBIOS reports it on the console and halts.
    Bad,
}

/// A firmware image that can be flashed remotely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashImage {
    /// Version string, e.g. `"linuxbios-1.1.8"`.
    pub version: String,
}

/// Errors from firmware management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BiosError {
    /// The operation needs LinuxBIOS ("changes can be made remotely"
    /// only because the firmware is an OS; a vendor BIOS wants a
    /// keyboard and monitor walked to the node).
    RequiresLinuxBios,
}

impl std::fmt::Display for BiosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BiosError::RequiresLinuxBios => {
                write!(f, "remote firmware management requires LinuxBIOS")
            }
        }
    }
}

impl std::error::Error for BiosError {}

/// Per-node firmware state.
#[derive(Debug, Clone)]
pub struct BiosChip {
    firmware: Firmware,
    version: String,
    settings: BTreeMap<String, String>,
    pending_flash: Option<FlashImage>,
    pending_settings: BTreeMap<String, String>,
    boots: u64,
}

impl BiosChip {
    /// A chip with the given firmware installed.
    pub fn new(firmware: Firmware) -> Self {
        let version = match firmware {
            Firmware::LinuxBios => "linuxbios-1.0.0".to_string(),
            Firmware::LegacyBios => "vendor-bios-4.51PG".to_string(),
        };
        let mut settings = BTreeMap::new();
        settings.insert("boot_source".to_string(), "disk".to_string());
        settings.insert("console_baud".to_string(), "115200".to_string());
        BiosChip {
            firmware,
            version,
            settings,
            pending_flash: None,
            pending_settings: BTreeMap::new(),
            boots: 0,
        }
    }

    /// Installed firmware kind.
    pub fn firmware(&self) -> Firmware {
        self.firmware
    }

    /// Installed firmware version.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Number of completed boots.
    pub fn boots(&self) -> u64 {
        self.boots
    }

    /// Read a setting.
    pub fn setting(&self, key: &str) -> Option<&str> {
        self.settings.get(key).map(String::as_str)
    }

    /// The configured boot source.
    pub fn boot_source(&self) -> BootSource {
        match self.setting("boot_source") {
            Some("ethernet") => BootSource::Ethernet,
            Some("interconnect") => BootSource::Interconnect,
            Some("nfs") => BootSource::Nfs,
            _ => BootSource::Disk,
        }
    }

    /// Stage a settings change remotely ("changes become active as soon
    /// as the nodes are rebooted"). LinuxBIOS only.
    pub fn stage_setting(&mut self, key: &str, value: &str) -> Result<(), BiosError> {
        if self.firmware != Firmware::LinuxBios {
            return Err(BiosError::RequiresLinuxBios);
        }
        self.pending_settings
            .insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// Stage a firmware flash remotely. LinuxBIOS only.
    pub fn stage_flash(&mut self, image: FlashImage) -> Result<(), BiosError> {
        if self.firmware != Firmware::LinuxBios {
            return Err(BiosError::RequiresLinuxBios);
        }
        self.pending_flash = Some(image);
        Ok(())
    }

    /// Local (walk-up) settings change — works on any firmware; this is
    /// the "keyboard and monitor to every one of the 1000 nodes" path.
    pub fn set_setting_local(&mut self, key: &str, value: &str) {
        self.settings.insert(key.to_string(), value.to_string());
    }

    /// Begin a boot: applies staged flash/settings, then produces the
    /// phase plan. `rng` drives the legacy BIOS's 30–60 s variability;
    /// `memory` lets tests exercise the error-reporting path.
    pub fn begin_boot(&mut self, rng: &mut StdRng, memory: MemoryCheck) -> BootPlan {
        // staged changes activate at reboot
        if let Some(img) = self.pending_flash.take() {
            self.version = img.version;
        }
        if !self.pending_settings.is_empty() {
            let staged = std::mem::take(&mut self.pending_settings);
            self.settings.extend(staged);
        }
        self.boots += 1;
        match self.firmware {
            Firmware::LinuxBios => self.linuxbios_plan(memory),
            Firmware::LegacyBios => self.legacy_plan(rng, memory),
        }
    }

    fn linuxbios_plan(&self, memory: MemoryCheck) -> BootPlan {
        let mut phases = vec![
            BootPhase {
                name: "hw-init",
                duration: SimDuration::from_millis(400),
                console: format!("{}: ram_set_registers done\n", self.version),
            },
            BootPhase {
                name: "serial-console",
                duration: SimDuration::from_millis(50),
                console: "ttyS0 at 0x3f8 (irq = 4) is a 16550A\n".to_string(),
            },
        ];
        match memory {
            MemoryCheck::Ok => {
                phases.push(BootPhase {
                    name: "memory-check",
                    duration: SimDuration::from_millis(550),
                    console: "Testing DRAM: done\n".to_string(),
                });
                let (name, dur, line) = match self.boot_source() {
                    BootSource::Disk => (
                        "load-kernel-disk",
                        1400,
                        "Jumping to image loaded from hda1\n",
                    ),
                    BootSource::Ethernet => (
                        "load-kernel-net",
                        1600,
                        "etherboot: DHCP... TFTP vmlinuz ok\n",
                    ),
                    BootSource::Interconnect => (
                        "load-kernel-ic",
                        900,
                        "elan3: kernel image received over interconnect\n",
                    ),
                    BootSource::Nfs => (
                        "load-kernel-nfs",
                        1700,
                        "nfsroot: mounted root from server\n",
                    ),
                };
                phases.push(BootPhase {
                    name,
                    duration: SimDuration::from_millis(dur),
                    console: line.to_string(),
                });
                // OS bring-up after the kernel starts (same for both
                // firmwares; separated so firmware_time() isolates §2's claim)
                phases.push(BootPhase {
                    name: "os:kernel+init",
                    duration: SimDuration::from_secs(20),
                    console: "INIT: version 2.78 booting\n".to_string(),
                });
            }
            MemoryCheck::Bad => {
                phases.push(BootPhase {
                    name: "memory-check-failed",
                    duration: SimDuration::from_millis(550),
                    console: "Testing DRAM: FAILED at bank 1 — halting\n".to_string(),
                });
            }
        }
        BootPlan {
            firmware: Firmware::LinuxBios,
            phases,
        }
    }

    fn legacy_plan(&self, rng: &mut StdRng, memory: MemoryCheck) -> BootPlan {
        // 30–60 s of POST, silent on serial (video only)
        let scale = normal_clamped(rng, 1.0, 0.15, 0.75, 1.5);
        let ms = |base: u64| SimDuration::from_millis((base as f64 * scale) as u64);
        let mut phases = vec![
            BootPhase {
                name: "post",
                duration: ms(9_000),
                console: String::new(),
            },
            BootPhase {
                name: "video-init",
                duration: ms(2_500),
                console: String::new(),
            },
            BootPhase {
                name: "memory-count",
                duration: ms(8_000),
                console: String::new(),
            },
        ];
        if memory == MemoryCheck::Bad {
            // beeps at the video console; serial stays dark — the
            // unmaintainability §2 complains about
            phases.push(BootPhase {
                name: "memory-failed-beep",
                duration: ms(1_000),
                console: String::new(),
            });
            return BootPlan {
                firmware: Firmware::LegacyBios,
                phases,
            };
        }
        phases.extend([
            BootPhase {
                name: "floppy-seek",
                duration: ms(4_000),
                console: String::new(),
            },
            BootPhase {
                name: "ide-scan",
                duration: ms(7_500),
                console: String::new(),
            },
            BootPhase {
                name: "option-roms",
                duration: ms(6_000),
                console: String::new(),
            },
            BootPhase {
                name: "bootloader",
                duration: ms(4_500),
                console: "LILO boot:\n".to_string(),
            },
            BootPhase {
                name: "os:kernel+init",
                duration: SimDuration::from_secs(20),
                console: "INIT: version 2.78 booting\n".to_string(),
            },
        ]);
        BootPlan {
            firmware: Firmware::LegacyBios,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::rng::rng;

    #[test]
    fn linuxbios_firmware_time_is_about_3s() {
        let mut chip = BiosChip::new(Firmware::LinuxBios);
        let mut r = rng(1);
        let plan = chip.begin_boot(&mut r, MemoryCheck::Ok);
        let t = plan.firmware_time().as_secs_f64();
        assert!(
            (2.0..=4.0).contains(&t),
            "LinuxBIOS should reach the kernel in ~3 s, got {t}"
        );
    }

    #[test]
    fn legacy_bios_takes_30_to_60s() {
        let mut chip = BiosChip::new(Firmware::LegacyBios);
        let mut r = rng(42);
        for _ in 0..50 {
            let plan = chip.begin_boot(&mut r, MemoryCheck::Ok);
            let t = plan.firmware_time().as_secs_f64();
            assert!(
                (28.0..=65.0).contains(&t),
                "legacy POST time out of band: {t}"
            );
        }
    }

    #[test]
    fn linuxbios_is_an_order_of_magnitude_faster() {
        let mut lb = BiosChip::new(Firmware::LinuxBios);
        let mut legacy = BiosChip::new(Firmware::LegacyBios);
        let mut r = rng(7);
        let a = lb.begin_boot(&mut r, MemoryCheck::Ok).firmware_time();
        let b = legacy.begin_boot(&mut r, MemoryCheck::Ok).firmware_time();
        assert!(b.as_nanos() >= a.as_nanos() * 10);
    }

    #[test]
    fn linuxbios_talks_on_serial_from_the_start_legacy_does_not() {
        let mut lb = BiosChip::new(Firmware::LinuxBios);
        let mut legacy = BiosChip::new(Firmware::LegacyBios);
        let mut r = rng(7);
        let lb_plan = lb.begin_boot(&mut r, MemoryCheck::Ok);
        assert!(
            !lb_plan.phases[0].console.is_empty(),
            "LinuxBIOS serial from power-on"
        );
        let legacy_plan = legacy.begin_boot(&mut r, MemoryCheck::Ok);
        let silent_prefix: Vec<_> = legacy_plan
            .phases
            .iter()
            .take(3)
            .filter(|p| p.console.is_empty())
            .collect();
        assert_eq!(
            silent_prefix.len(),
            3,
            "vendor BIOS is silent on serial during POST"
        );
    }

    #[test]
    fn bad_memory_reported_on_serial_only_by_linuxbios() {
        let mut lb = BiosChip::new(Firmware::LinuxBios);
        let mut legacy = BiosChip::new(Firmware::LegacyBios);
        let mut r = rng(7);
        let lb_plan = lb.begin_boot(&mut r, MemoryCheck::Bad);
        assert!(lb_plan.phases.last().unwrap().console.contains("FAILED"));
        let legacy_plan = legacy.begin_boot(&mut r, MemoryCheck::Bad);
        assert!(legacy_plan
            .phases
            .iter()
            .all(|p| !p.console.contains("FAILED")));
    }

    #[test]
    fn staged_settings_apply_at_reboot() {
        let mut chip = BiosChip::new(Firmware::LinuxBios);
        chip.stage_setting("boot_source", "ethernet").unwrap();
        // not yet active
        assert_eq!(chip.boot_source(), BootSource::Disk);
        let mut r = rng(1);
        let plan = chip.begin_boot(&mut r, MemoryCheck::Ok);
        assert_eq!(chip.boot_source(), BootSource::Ethernet);
        assert!(plan.phases.iter().any(|p| p.name == "load-kernel-net"));
    }

    #[test]
    fn staged_flash_applies_at_reboot() {
        let mut chip = BiosChip::new(Firmware::LinuxBios);
        chip.stage_flash(FlashImage {
            version: "linuxbios-1.1.8".into(),
        })
        .unwrap();
        assert_eq!(chip.version(), "linuxbios-1.0.0");
        let mut r = rng(1);
        chip.begin_boot(&mut r, MemoryCheck::Ok);
        assert_eq!(chip.version(), "linuxbios-1.1.8");
    }

    #[test]
    fn legacy_bios_rejects_remote_management() {
        let mut chip = BiosChip::new(Firmware::LegacyBios);
        assert_eq!(
            chip.stage_setting("boot_source", "ethernet"),
            Err(BiosError::RequiresLinuxBios)
        );
        assert_eq!(
            chip.stage_flash(FlashImage {
                version: "x".into()
            }),
            Err(BiosError::RequiresLinuxBios)
        );
        // but a walk-up change works
        chip.set_setting_local("boot_source", "ethernet");
        assert_eq!(chip.boot_source(), BootSource::Ethernet);
    }

    #[test]
    fn interconnect_boot_is_fastest_kernel_load() {
        let mut r = rng(1);
        let time_for = |src: &str| {
            let mut chip = BiosChip::new(Firmware::LinuxBios);
            chip.stage_setting("boot_source", src).unwrap();
            chip.begin_boot(&mut rng(1), MemoryCheck::Ok)
                .firmware_time()
        };
        let _ = &mut r;
        assert!(time_for("interconnect") < time_for("disk"));
        assert!(time_for("disk") < time_for("ethernet"));
    }

    #[test]
    fn boots_counter_increments() {
        let mut chip = BiosChip::new(Firmware::LinuxBios);
        let mut r = rng(1);
        assert_eq!(chip.boots(), 0);
        chip.begin_boot(&mut r, MemoryCheck::Ok);
        chip.begin_boot(&mut r, MemoryCheck::Ok);
        assert_eq!(chip.boots(), 2);
    }

    #[test]
    fn total_time_includes_os_bringup() {
        let mut chip = BiosChip::new(Firmware::LinuxBios);
        let mut r = rng(1);
        let plan = chip.begin_boot(&mut r, MemoryCheck::Ok);
        assert!(plan.total_time() > plan.firmware_time() + SimDuration::from_secs(15));
    }
}
