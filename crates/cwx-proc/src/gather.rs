//! The four-step gathering optimization ladder (paper §5.3.1) plus the
//! keep-open typed gatherers for every file in the paper's cost table.
//!
//! | level | open per sample | read pattern | parser | buffer |
//! |---|---|---|---|---|
//! | [`GatherLevel::Naive`] | yes | byte-at-a-time | generic, allocating | fresh |
//! | [`GatherLevel::Buffered`] | yes | one bulk read | generic, allocating | fresh |
//! | [`GatherLevel::Apriori`] | yes | one bulk read | a-priori, zero-alloc | reused |
//! | [`GatherLevel::KeepOpen`] | no (rewind) | one bulk read | a-priori, zero-alloc | reused |
//!
//! Because each `read()` regenerates the whole proc file, the naive
//! byte-at-a-time reader is quadratic in file size — that is the paper's
//! 85 samples/s floor; each subsequent level removes one cost: the
//! repeated regeneration, then the allocations, then the `open()`.

use std::io;

use crate::meminfo::{self, MemInfo};
use crate::source::{ProcHandle, ProcSource};
use crate::{diskstats, loadavg, netdev, stat, uptime};

/// The optimization level of a [`MemInfoGatherer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatherLevel {
    /// Open per sample, byte-at-a-time reads, allocating parser.
    Naive,
    /// Open per sample, one bulk read into a fresh buffer, allocating
    /// parser ("+4800%" in the paper).
    Buffered,
    /// Open per sample, bulk read into a reused buffer, zero-allocation
    /// a-priori parser ("+236%").
    Apriori,
    /// File stays open; rewind and re-read into the reused buffer
    /// ("+141%", 33 855 samples/s).
    KeepOpen,
}

impl GatherLevel {
    /// All levels, in ladder order.
    pub const ALL: [GatherLevel; 4] = [
        GatherLevel::Naive,
        GatherLevel::Buffered,
        GatherLevel::Apriori,
        GatherLevel::KeepOpen,
    ];

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            GatherLevel::Naive => "naive",
            GatherLevel::Buffered => "buffered",
            GatherLevel::Apriori => "apriori",
            GatherLevel::KeepOpen => "keep-open",
        }
    }
}

/// Read a whole file byte-at-a-time (the naive pattern: every byte read
/// regenerates the file in the handler).
fn read_byte_at_a_time<H: ProcHandle>(h: &mut H, out: &mut Vec<u8>) -> io::Result<()> {
    out.clear();
    let mut one = [0u8; 1];
    let mut off = 0u64;
    loop {
        let n = h.read_at(off, &mut one)?;
        if n == 0 {
            return Ok(());
        }
        out.push(one[0]);
        off += 1;
    }
}

/// Keep-open bulk reader: one open handle, a reused buffer, one (or a
/// few, for oversized files) positional reads per sample.
#[derive(Debug)]
pub struct KeepOpenFile<S: ProcSource> {
    handle: S::Handle,
    buf: Vec<u8>,
}

impl<S: ProcSource> KeepOpenFile<S> {
    /// Open `path` once.
    pub fn open(source: &S, path: &str) -> io::Result<Self> {
        Ok(KeepOpenFile {
            handle: source.open(path)?,
            buf: vec![0; 8192],
        })
    }

    /// Re-read the file from offset 0, returning the fresh contents.
    ///
    /// The buffer grows (once) if the file exceeds it and is then reused
    /// forever, so the steady state performs zero allocations.
    pub fn read(&mut self) -> io::Result<&[u8]> {
        let mut total = 0usize;
        loop {
            let n = self.handle.read_at(total as u64, &mut self.buf[total..])?;
            total += n;
            if n == 0 || total < self.buf.len() {
                break;
            }
            // buffer filled: file larger than expected, grow and continue
            let new_len = self.buf.len() * 2;
            self.buf.resize(new_len, 0);
        }
        Ok(&self.buf[..total])
    }
}

/// `/proc/meminfo` gatherer at a selectable optimization level — the
/// subject of experiment E1.
pub struct MemInfoGatherer<S: ProcSource> {
    source: S,
    level: GatherLevel,
    /// open handle (KeepOpen only)
    handle: Option<S::Handle>,
    /// reused buffer (Apriori/KeepOpen)
    buf: Vec<u8>,
    /// learned layout (Apriori/KeepOpen)
    layout: Option<meminfo::Layout>,
}

impl<S: ProcSource> MemInfoGatherer<S> {
    /// Create a gatherer. For the a-priori levels this performs one
    /// learning read to discover the file layout.
    pub fn new(source: S, level: GatherLevel) -> io::Result<Self> {
        let mut g = MemInfoGatherer {
            source,
            level,
            handle: None,
            buf: Vec::new(),
            layout: None,
        };
        match level {
            GatherLevel::Naive | GatherLevel::Buffered => {}
            GatherLevel::Apriori | GatherLevel::KeepOpen => {
                let mut h = g.source.open("meminfo")?;
                let mut buf = Vec::new();
                h.read_to_vec(&mut buf)?;
                g.layout = Some(meminfo::Layout::learn(&buf).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "cannot learn meminfo layout")
                })?);
                g.buf = vec![0; buf.len().next_power_of_two().max(4096)];
                if level == GatherLevel::KeepOpen {
                    g.handle = Some(h);
                }
            }
        }
        Ok(g)
    }

    /// The configured level.
    pub fn level(&self) -> GatherLevel {
        self.level
    }

    /// Take one sample.
    pub fn sample(&mut self) -> io::Result<MemInfo> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        match self.level {
            GatherLevel::Naive => {
                let mut h = self.source.open("meminfo")?;
                let mut bytes = Vec::new(); // fresh allocation, deliberately
                read_byte_at_a_time(&mut h, &mut bytes)?;
                let text = String::from_utf8(bytes).map_err(|_| bad("meminfo not utf8"))?;
                meminfo::parse_generic(&text).ok_or_else(|| bad("meminfo parse"))
            }
            GatherLevel::Buffered => {
                let mut h = self.source.open("meminfo")?;
                let mut bytes = Vec::new(); // "a separate buffer", fresh per sample
                h.read_to_vec(&mut bytes)?;
                let text = std::str::from_utf8(&bytes).map_err(|_| bad("meminfo not utf8"))?;
                meminfo::parse_generic(text).ok_or_else(|| bad("meminfo parse"))
            }
            GatherLevel::Apriori => {
                let mut h = self.source.open("meminfo")?;
                let n = read_bulk(&mut h, &mut self.buf)?;
                let layout = self
                    .layout
                    .as_ref()
                    .expect("layout learned at construction");
                meminfo::parse_apriori(&self.buf[..n], layout).ok_or_else(|| bad("meminfo parse"))
            }
            GatherLevel::KeepOpen => {
                let h = self.handle.as_mut().expect("handle kept open");
                let n = read_bulk(h, &mut self.buf)?;
                let layout = self
                    .layout
                    .as_ref()
                    .expect("layout learned at construction");
                meminfo::parse_apriori(&self.buf[..n], layout).ok_or_else(|| bad("meminfo parse"))
            }
        }
    }
}

/// Bulk-read into a reused, pre-sized buffer; grows only if the file
/// outgrows it. Returns bytes read.
fn read_bulk<H: ProcHandle>(h: &mut H, buf: &mut Vec<u8>) -> io::Result<usize> {
    if buf.is_empty() {
        buf.resize(4096, 0);
    }
    let mut total = 0usize;
    loop {
        let n = h.read_at(total as u64, &mut buf[total..])?;
        total += n;
        if n == 0 || total < buf.len() {
            return Ok(total);
        }
        let new_len = buf.len() * 2;
        buf.resize(new_len, 0);
    }
}

/// Keep-open `/proc/stat` gatherer (paper: 35 µs/call).
pub struct StatGatherer<S: ProcSource> {
    file: KeepOpenFile<S>,
}

impl<S: ProcSource> StatGatherer<S> {
    /// Open once.
    pub fn new(source: &S) -> io::Result<Self> {
        Ok(StatGatherer {
            file: KeepOpenFile::open(source, "stat")?,
        })
    }

    /// Take one sample.
    pub fn sample(&mut self) -> io::Result<stat::Stat> {
        let b = self.file.read()?;
        stat::parse_apriori(b)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stat parse"))
    }
}

/// Keep-open `/proc/loadavg` gatherer (paper: 7.5 µs/call).
pub struct LoadAvgGatherer<S: ProcSource> {
    file: KeepOpenFile<S>,
}

impl<S: ProcSource> LoadAvgGatherer<S> {
    /// Open once.
    pub fn new(source: &S) -> io::Result<Self> {
        Ok(LoadAvgGatherer {
            file: KeepOpenFile::open(source, "loadavg")?,
        })
    }

    /// Take one sample.
    pub fn sample(&mut self) -> io::Result<loadavg::LoadAvg> {
        let b = self.file.read()?;
        loadavg::parse_apriori(b)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "loadavg parse"))
    }
}

/// Keep-open `/proc/uptime` gatherer (paper: 6.2 µs/call).
pub struct UptimeGatherer<S: ProcSource> {
    file: KeepOpenFile<S>,
}

impl<S: ProcSource> UptimeGatherer<S> {
    /// Open once.
    pub fn new(source: &S) -> io::Result<Self> {
        Ok(UptimeGatherer {
            file: KeepOpenFile::open(source, "uptime")?,
        })
    }

    /// Take one sample.
    pub fn sample(&mut self) -> io::Result<uptime::Uptime> {
        let b = self.file.read()?;
        uptime::parse_apriori(b)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "uptime parse"))
    }
}

/// Keep-open `/proc/net/dev` gatherer (paper: 21.6 µs per call per
/// device). The interface vector is reused across samples.
pub struct NetDevGatherer<S: ProcSource> {
    file: KeepOpenFile<S>,
    ifaces: Vec<netdev::IfStats>,
}

impl<S: ProcSource> NetDevGatherer<S> {
    /// Open once.
    pub fn new(source: &S) -> io::Result<Self> {
        Ok(NetDevGatherer {
            file: KeepOpenFile::open(source, "net/dev")?,
            ifaces: Vec::new(),
        })
    }

    /// Take one sample; the returned slice is valid until the next call.
    pub fn sample(&mut self) -> io::Result<&[netdev::IfStats]> {
        let b = self.file.read()?;
        netdev::parse_apriori(b, &mut self.ifaces)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "net/dev parse"))?;
        Ok(&self.ifaces)
    }
}

/// Keep-open `/proc/diskstats` gatherer (disk I/O monitoring, §5.1).
/// The device vector is reused across samples.
pub struct DiskStatsGatherer<S: ProcSource> {
    file: KeepOpenFile<S>,
    disks: Vec<diskstats::DiskStats>,
}

impl<S: ProcSource> DiskStatsGatherer<S> {
    /// Open once. Errors if the source has no `diskstats` file (the
    /// agent treats disk monitoring as optional).
    pub fn new(source: &S) -> io::Result<Self> {
        Ok(DiskStatsGatherer {
            file: KeepOpenFile::open(source, "diskstats")?,
            disks: Vec::new(),
        })
    }

    /// Take one sample; the returned slice is valid until the next call.
    pub fn sample(&mut self) -> io::Result<&[diskstats::DiskStats]> {
        let b = self.file.read()?;
        diskstats::parse_apriori(b, &mut self.disks)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "diskstats parse"))?;
        Ok(&self.disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticProc;

    #[test]
    fn all_levels_agree_on_synthetic() {
        let proc_ = SyntheticProc::default();
        proc_.with_state(|s| {
            s.mem_free_kb = 777_000;
            s.cached_kb = 123_456;
        });
        let mut results = Vec::new();
        for level in GatherLevel::ALL {
            let mut g = MemInfoGatherer::new(proc_.clone(), level).unwrap();
            results.push(g.sample().unwrap());
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        assert_eq!(results[0].free_kb, 777_000);
    }

    #[test]
    fn naive_regenerates_per_byte() {
        let proc_ = SyntheticProc::default();
        let mut g = MemInfoGatherer::new(proc_.clone(), GatherLevel::Naive).unwrap();
        g.sample().unwrap();
        // One regeneration per byte read (plus the EOF probe).
        let size = proc_.with_state(|s| {
            let mut t = String::new();
            s.render_meminfo(&mut t);
            t.len() as u64
        });
        assert!(
            proc_.regenerations() >= size,
            "naive read should regenerate per byte: {} < {}",
            proc_.regenerations(),
            size
        );
    }

    #[test]
    fn keep_open_uses_single_read_per_sample() {
        let proc_ = SyntheticProc::default();
        let mut g = MemInfoGatherer::new(proc_.clone(), GatherLevel::KeepOpen).unwrap();
        let before = proc_.regenerations();
        for _ in 0..100 {
            g.sample().unwrap();
        }
        let per_sample = (proc_.regenerations() - before) as f64 / 100.0;
        assert!(
            per_sample <= 1.5,
            "keep-open should read once per sample, got {per_sample}"
        );
    }

    #[test]
    fn keep_open_tracks_state_changes() {
        let proc_ = SyntheticProc::default();
        let mut g = MemInfoGatherer::new(proc_.clone(), GatherLevel::KeepOpen).unwrap();
        let a = g.sample().unwrap();
        proc_.with_state(|s| s.mem_free_kb = a.free_kb - 1000);
        let b = g.sample().unwrap();
        assert_eq!(b.free_kb, a.free_kb - 1000);
    }

    #[test]
    fn typed_gatherers_sample_synthetic() {
        let proc_ = SyntheticProc::default();
        proc_.with_state(|s| {
            s.cpus = vec![[10, 0, 5, 85]];
            s.load_one = 1.25;
            s.uptime_secs = 3600.0;
            s.interfaces[1].rx_bytes = 42;
        });
        let mut sg = StatGatherer::new(&proc_).unwrap();
        let st = sg.sample().unwrap();
        assert_eq!(st.total.user, 10);
        assert_eq!(st.ncpu, 1);

        let mut lg = LoadAvgGatherer::new(&proc_).unwrap();
        assert!((lg.sample().unwrap().one - 1.25).abs() < 1e-9);

        let mut ug = UptimeGatherer::new(&proc_).unwrap();
        assert!((ug.sample().unwrap().uptime_secs - 3600.0).abs() < 1e-6);

        let mut ng = NetDevGatherer::new(&proc_).unwrap();
        let ifs = ng.sample().unwrap();
        assert_eq!(ifs.len(), 2);
        assert_eq!(ifs[1].rx_bytes, 42);
    }

    #[test]
    fn diskstats_gatherer_tracks_io() {
        let proc_ = SyntheticProc::default();
        let mut g = DiskStatsGatherer::new(&proc_).unwrap();
        let before = g.sample().unwrap()[0];
        proc_.with_state(|s| s.tick(10.0, 0.8));
        let after = g.sample().unwrap()[0];
        assert!(after.reads > before.reads, "busy node does I/O");
        assert!(after.sectors_written > before.sectors_written);
    }

    #[test]
    fn gatherer_construction_fails_on_missing_file() {
        let src = crate::source::RealProc::with_root("/nonexistent-cwx");
        assert!(MemInfoGatherer::new(src.clone(), GatherLevel::KeepOpen).is_err());
        assert!(StatGatherer::new(&src).is_err());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn ladder_works_on_real_proc() {
        let src = crate::source::RealProc::new();
        if !src.available() {
            return;
        }
        for level in GatherLevel::ALL {
            let mut g = MemInfoGatherer::new(src.clone(), level).unwrap();
            let m = g.sample().unwrap();
            assert!(m.total_kb > 0, "level {:?}", level);
        }
    }
}
