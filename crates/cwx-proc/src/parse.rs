//! Low-level byte scanners shared by the a-priori parsers.
//!
//! The paper's third optimization step "takes advantage of the fact
//! that /proc data uses standard ASCII output and ... a priori knowledge
//! about the output format". Concretely that means: no UTF-8 validation,
//! no `str::split_whitespace`, no intermediate `String`s — just scanning
//! a byte slice for digit runs. These helpers are the whole vocabulary
//! the typed parsers need.

use std::collections::HashMap;

/// Advance `pos` past the next unsigned decimal integer in `b` and return
/// it, skipping any non-digit bytes before it. Returns `None` when no
/// digits remain.
#[inline]
pub fn next_u64(b: &[u8], pos: &mut usize) -> Option<u64> {
    let mut i = *pos;
    while i < b.len() && !b[i].is_ascii_digit() {
        i += 1;
    }
    if i == b.len() {
        *pos = i;
        return None;
    }
    let mut v: u64 = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        v = v.wrapping_mul(10).wrapping_add((b[i] - b'0') as u64);
        i += 1;
    }
    *pos = i;
    Some(v)
}

/// Like [`next_u64`] but reads a simple decimal fraction (`123.45`).
/// Skips non-digit bytes before the number. `None` when no digits remain.
#[inline]
pub fn next_f64(b: &[u8], pos: &mut usize) -> Option<f64> {
    let int = next_u64(b, pos)? as f64;
    let mut i = *pos;
    if i < b.len() && b[i] == b'.' {
        i += 1;
        // Accumulate fraction digits as an integer and divide once; both
        // operands are exactly representable, so the single division
        // rounds the same way std's parser does for short fractions.
        let mut digits: u64 = 0;
        let mut count: i32 = 0;
        while i < b.len() && b[i].is_ascii_digit() {
            if count < 18 {
                digits = digits * 10 + (b[i] - b'0') as u64;
                count += 1;
            }
            i += 1;
        }
        *pos = i;
        Some(int + digits as f64 / 10f64.powi(count))
    } else {
        Some(int)
    }
}

/// Advance `pos` to the byte after the next `needle` byte. Returns false
/// if `needle` does not occur.
#[inline]
pub fn skip_past(b: &[u8], pos: &mut usize, needle: u8) -> bool {
    while *pos < b.len() {
        let cur = b[*pos];
        *pos += 1;
        if cur == needle {
            return true;
        }
    }
    false
}

/// Advance `pos` to the start of the next line. Returns false at EOF.
#[inline]
pub fn skip_line(b: &[u8], pos: &mut usize) -> bool {
    skip_past(b, pos, b'\n')
}

/// The *generic, allocating* parser used by the L0/L1 gatherers — the
/// "before" picture in the paper's optimization story.
///
/// Parses `Key: value [unit]` lines (the meminfo shape) into an owned
/// map, allocating a `String` per key. Lines without a value are skipped.
pub fn parse_key_values(text: &str) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(key) = parts.next() else { continue };
        let Some(value) = parts.next() else { continue };
        if let Ok(v) = value.parse::<u64>() {
            out.insert(key.trim_end_matches(':').to_string(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn next_u64_walks_numbers() {
        let b = b"cpu  12 345 6";
        let mut pos = 0;
        assert_eq!(next_u64(b, &mut pos), Some(12));
        assert_eq!(next_u64(b, &mut pos), Some(345));
        assert_eq!(next_u64(b, &mut pos), Some(6));
        assert_eq!(next_u64(b, &mut pos), None);
    }

    #[test]
    fn next_u64_empty_and_no_digits() {
        let mut pos = 0;
        assert_eq!(next_u64(b"", &mut pos), None);
        pos = 0;
        assert_eq!(next_u64(b"abc def", &mut pos), None);
    }

    #[test]
    fn next_f64_reads_fractions() {
        let b = b"load: 0.42 1.5 3";
        let mut pos = 0;
        assert_eq!(next_f64(b, &mut pos), Some(0.42));
        assert_eq!(next_f64(b, &mut pos), Some(1.5));
        assert_eq!(next_f64(b, &mut pos), Some(3.0));
        assert_eq!(next_f64(b, &mut pos), None);
    }

    #[test]
    fn skip_line_moves_to_next_line() {
        let b = b"one\ntwo\n";
        let mut pos = 0;
        assert!(skip_line(b, &mut pos));
        assert_eq!(&b[pos..pos + 3], b"two");
        assert!(skip_line(b, &mut pos));
        assert!(!skip_line(b, &mut pos));
    }

    #[test]
    fn key_values_parses_meminfo_shape() {
        let m = parse_key_values("MemTotal: 1024 kB\nMemFree: 512 kB\nJunk\n");
        assert_eq!(m.get("MemTotal"), Some(&1024));
        assert_eq!(m.get("MemFree"), Some(&512));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn key_values_skips_non_numeric() {
        let m = parse_key_values("A: x\nB: 7\n");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("B"), Some(&7));
    }

    proptest! {
        #[test]
        fn next_u64_matches_std_parse(v in 0u64..=(u64::MAX / 2), pad in "[a-z :]{0,8}") {
            let s = format!("{pad}{v} tail");
            let mut pos = 0;
            prop_assert_eq!(next_u64(s.as_bytes(), &mut pos), Some(v));
        }

        #[test]
        fn next_f64_close_to_std_parse(int in 0u64..1_000_000, frac in 0u32..100) {
            let s = format!("{int}.{frac:02}");
            let mut pos = 0;
            let got = next_f64(s.as_bytes(), &mut pos).unwrap();
            let want: f64 = s.parse().unwrap();
            prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
