//! `/proc/diskstats`-style disk I/O counters.
//!
//! The paper lists "disk I/O" among the system functions ClusterWorX
//! monitors (§5.1). Kernel 2.4 exposed these in `/proc/stat`'s
//! `disk_io:` line; 2.6 moved them to `/proc/diskstats`. We model the
//! (cleaner) diskstats shape: one line per block device with read/write
//! operation and sector counts.
//!
//! ```text
//!    8       0 hda 4672 23000 104 2000
//! ```
//!
//! columns: major, minor, name, reads, sectors_read, writes,
//! sectors_written (a simplified fixed subset). Real 2.6+ kernels emit
//! 11+ statistic columns; both parsers detect that shape and map the
//! right columns (reads = col 0, sectors read = col 2, writes = col 4,
//! sectors written = col 6), so the gatherers work on a live
//! `/proc/diskstats` too.

use crate::parse::{next_u64, skip_line};

/// Counters for one block device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Device major number.
    pub major: u32,
    /// Device minor number.
    pub minor: u32,
    /// Device name, inline (8 bytes is plenty for `hda`/`sda1`).
    pub name: DiskName,
    /// Completed read operations.
    pub reads: u64,
    /// Sectors read (512 B each).
    pub sectors_read: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Sectors written.
    pub sectors_written: u64,
}

/// A device name stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskName {
    bytes: [u8; 8],
    len: u8,
}

impl DiskName {
    /// Build from bytes (truncating to 8).
    pub fn new(name: &[u8]) -> Self {
        let mut bytes = [0u8; 8];
        let len = name.len().min(8);
        bytes[..len].copy_from_slice(&name[..len]);
        DiskName {
            bytes,
            len: len as u8,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("?")
    }
}

impl PartialEq<&str> for DiskName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::fmt::Display for DiskName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Allocating parser.
pub fn parse_generic(text: &str) -> Option<Vec<DiskStats>> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let name = parts.next()?;
        let nums: Vec<u64> = parts.map_while(|p| p.parse().ok()).collect();
        let (reads, sectors_read, writes, sectors_written) = if nums.len() >= 11 {
            // real 2.6+ kernel layout
            (nums[0], nums[2], nums[4], nums[6])
        } else if nums.len() >= 4 {
            (nums[0], nums[1], nums[2], nums[3])
        } else {
            return None;
        };
        out.push(DiskStats {
            major,
            minor,
            name: DiskName::new(name.as_bytes()),
            reads,
            sectors_read,
            writes,
            sectors_written,
        });
    }
    Some(out)
}

/// Zero-allocation parser into a reused buffer.
pub fn parse_apriori(b: &[u8], out: &mut Vec<DiskStats>) -> Option<usize> {
    out.clear();
    let mut pos = 0usize;
    while pos < b.len() {
        // skip blank lines
        while pos < b.len() && (b[pos] == b'\n' || b[pos] == b' ') {
            pos += 1;
        }
        if pos >= b.len() {
            break;
        }
        let major = next_u64(b, &mut pos)? as u32;
        let minor = next_u64(b, &mut pos)? as u32;
        // device name: skip spaces, take until space
        while pos < b.len() && b[pos] == b' ' {
            pos += 1;
        }
        let name_start = pos;
        while pos < b.len() && b[pos] != b' ' && b[pos] != b'\n' {
            pos += 1;
        }
        let mut st = DiskStats {
            major,
            minor,
            name: DiskName::new(&b[name_start..pos]),
            ..Default::default()
        };
        // read all numeric columns up to end of line, then map by count
        let line_end = b[pos..]
            .iter()
            .position(|&c| c == b'\n')
            .map(|k| pos + k)
            .unwrap_or(b.len());
        let mut cols = [0u64; 16];
        let mut ncols = 0;
        while ncols < 16 {
            let mut probe = pos;
            match next_u64(b, &mut probe) {
                Some(v)
                    if probe <= line_end || b[pos..line_end].iter().any(|c| c.is_ascii_digit()) =>
                {
                    // ensure the number started before the line end
                    let mut scan = pos;
                    while scan < line_end && !b[scan].is_ascii_digit() {
                        scan += 1;
                    }
                    if scan >= line_end {
                        break;
                    }
                    cols[ncols] = v;
                    ncols += 1;
                    pos = probe;
                }
                _ => break,
            }
        }
        if ncols >= 11 {
            st.reads = cols[0];
            st.sectors_read = cols[2];
            st.writes = cols[4];
            st.sectors_written = cols[6];
        } else if ncols >= 4 {
            st.reads = cols[0];
            st.sectors_read = cols[1];
            st.writes = cols[2];
            st.sectors_written = cols[3];
        } else {
            return None;
        }
        out.push(st);
        pos = line_end;
        if !skip_line(b, &mut pos) {
            break;
        }
    }
    Some(out.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "   3    0 hda 4672 233600 1040 83200\n   3    1 hda1 4600 230000 1000 80000\n   8    0 sda 99 792 7 56\n";

    #[test]
    fn generic_parses_sample() {
        let v = parse_generic(SAMPLE).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].name, "hda");
        assert_eq!(v[0].major, 3);
        assert_eq!(v[0].reads, 4672);
        assert_eq!(v[0].sectors_written, 83200);
        assert_eq!(v[2].name, "sda");
    }

    #[test]
    fn apriori_agrees_with_generic() {
        let g = parse_generic(SAMPLE).unwrap();
        let mut a = Vec::new();
        assert_eq!(parse_apriori(SAMPLE.as_bytes(), &mut a), Some(3));
        assert_eq!(a, g);
    }

    #[test]
    fn apriori_reuses_buffer() {
        let mut buf = Vec::with_capacity(8);
        parse_apriori(SAMPLE.as_bytes(), &mut buf).unwrap();
        let ptr = buf.as_ptr();
        for _ in 0..50 {
            parse_apriori(SAMPLE.as_bytes(), &mut buf).unwrap();
        }
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn rejects_short_lines() {
        assert!(parse_generic("3 0 hda 1 2\n").is_none());
        let mut out = Vec::new();
        assert!(parse_apriori(b"3 0 hda 1 2", &mut out).is_none());
    }

    #[test]
    fn empty_input_is_empty_list() {
        assert_eq!(parse_generic("").unwrap().len(), 0);
        let mut out = Vec::new();
        assert_eq!(parse_apriori(b"", &mut out), Some(0));
    }

    #[test]
    fn long_names_truncate() {
        let n = DiskName::new(b"verylongdevicename");
        assert_eq!(n.as_str(), "verylong");
    }

    #[test]
    fn real_kernel_layout_maps_columns() {
        let real = "   8       0 sda 100 50 1600 30 200 70 3200 40 0 60 70\n";
        let g = parse_generic(real).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].reads, 100);
        assert_eq!(g[0].sectors_read, 1600);
        assert_eq!(g[0].writes, 200);
        assert_eq!(g[0].sectors_written, 3200);
        let mut a = Vec::new();
        parse_apriori(real.as_bytes(), &mut a).unwrap();
        assert_eq!(a, g);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_proc_diskstats() {
        let Ok(text) = std::fs::read("/proc/diskstats") else {
            return;
        };
        if text.is_empty() {
            return;
        }
        let g = parse_generic(std::str::from_utf8(&text).unwrap());
        let mut a = Vec::new();
        let ap = parse_apriori(&text, &mut a);
        if let (Some(g), Some(_)) = (g, ap) {
            assert_eq!(a, g);
        }
    }
}
