//! The /proc statistics-gathering substrate (paper §5.3.1).
//!
//! ClusterWorX rejects rstatd/SNMP ("limited information... slow and
//! inefficient") and gathers every node statistic straight from the
//! `/proc` virtual filesystem. The paper's key observation is that each
//! `read()` on a proc file invokes a kernel handler that regenerates the
//! *entire* file, so how you read matters enormously. Its measured ladder
//! on a 1 GHz Pentium III (Linux 2.4.18, `/proc/meminfo`):
//!
//! | step | technique | samples/s |
//! |---|---|---|
//! | L0 | naive read/parse | 85 |
//! | L1 | single read into a buffer, parse in the buffer | 4 173 |
//! | L2 | + a-priori knowledge of the output format | 14 031 |
//! | L3 | + keep the file open, rewind between samples | 33 855 |
//!
//! This crate reproduces all four levels as distinct gatherer
//! implementations ([`gather`]), over two interchangeable backends:
//!
//! * [`source::RealProc`] — the actual `/proc` of the machine we run on
//!   (the benchmarks use this), and
//! * [`synthetic::SyntheticProc`] — an in-memory /proc whose files are
//!   regenerated on every read exactly like the kernel handlers, driven
//!   by a mutable [`synthetic::SyntheticState`]. The cluster simulator
//!   plugs node activity into this state, and tests get determinism.
//!
//! Typed parsers for the five files the paper names (`meminfo`, `stat`,
//! `loadavg`, `uptime`, `net/dev`) live in their own modules, each with a
//! generic allocating parser (the "before" in the paper's story) and a
//! zero-allocation a-priori parser (the "after").

#![warn(missing_docs)]

pub mod diskstats;
pub mod gather;
pub mod loadavg;
pub mod meminfo;
pub mod netdev;
pub mod parse;
pub mod rstatd;
pub mod source;
pub mod stat;
pub mod synthetic;
pub mod uptime;

pub use gather::{GatherLevel, MemInfoGatherer};
pub use source::{ProcHandle, ProcSource, RealProc};
pub use synthetic::{SyntheticProc, SyntheticState};
