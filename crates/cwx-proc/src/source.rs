//! Backends that serve /proc-style files.
//!
//! The gatherers in [`crate::gather`] are generic over a [`ProcSource`],
//! which mirrors the POSIX surface the paper's agent uses: `open()` a
//! path, then positional `read()`s on the handle. The crucial semantic —
//! "each time a proc file is read, a handler is called by the kernel ...
//! the entire file is reconstructed whether a single character or a large
//! block is read" — is what both backends preserve: the real one because
//! the kernel behaves that way, the synthetic one by regenerating its
//! content on every `read_at` call.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// An open /proc-style file supporting positional reads.
pub trait ProcHandle {
    /// Read up to `buf.len()` bytes at byte `offset` into `buf`,
    /// returning the number of bytes read (0 at end of file).
    ///
    /// Every call may regenerate the underlying content, exactly like a
    /// kernel proc handler; callers that issue many small reads pay that
    /// regeneration cost repeatedly.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Read the whole file from offset 0 into `buf` (which is cleared),
    /// looping `read_at` until EOF. Returns total bytes.
    fn read_to_vec(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        buf.clear();
        let mut chunk = [0u8; 4096];
        let mut off = 0u64;
        loop {
            let n = self.read_at(off, &mut chunk)?;
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
            off += n as u64;
        }
        Ok(buf.len())
    }
}

/// A source of /proc-style files.
pub trait ProcSource {
    /// Handle type for open files.
    type Handle: ProcHandle;

    /// Open `path` (e.g. `"meminfo"`, `"net/dev"`, relative to the proc
    /// root).
    fn open(&self, path: &str) -> io::Result<Self::Handle>;
}

/// The real `/proc` of the machine we are running on.
///
/// Used by the benchmarks so the E1/E2 numbers are measured against an
/// actual kernel, like the paper's. The root is configurable for tests.
#[derive(Debug, Clone)]
pub struct RealProc {
    root: PathBuf,
}

impl RealProc {
    /// `/proc` itself.
    pub fn new() -> Self {
        RealProc {
            root: PathBuf::from("/proc"),
        }
    }

    /// A proc-like tree rooted elsewhere (used by tests with fixture
    /// files).
    pub fn with_root(root: impl Into<PathBuf>) -> Self {
        RealProc { root: root.into() }
    }

    /// The configured root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether this source can actually serve files (i.e. the root
    /// exists); lets benches skip gracefully off-Linux.
    pub fn available(&self) -> bool {
        self.root.join("meminfo").exists()
    }
}

impl Default for RealProc {
    fn default() -> Self {
        Self::new()
    }
}

/// An open real file.
#[derive(Debug)]
pub struct RealHandle {
    file: File,
}

impl ProcSource for RealProc {
    type Handle = RealHandle;

    fn open(&self, path: &str) -> io::Result<RealHandle> {
        Ok(RealHandle {
            file: File::open(self.root.join(path))?,
        })
    }
}

impl ProcHandle for RealHandle {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read(buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn fixture_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwx-proc-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_source_reads_fixture() {
        let dir = fixture_dir();
        let mut f = std::fs::File::create(dir.join("meminfo")).unwrap();
        writeln!(f, "MemTotal: 1024 kB").unwrap();
        drop(f);

        let src = RealProc::with_root(&dir);
        assert!(src.available());
        let mut h = src.open("meminfo").unwrap();
        let mut buf = Vec::new();
        let n = h.read_to_vec(&mut buf).unwrap();
        assert_eq!(n, buf.len());
        assert!(String::from_utf8(buf)
            .unwrap()
            .starts_with("MemTotal: 1024 kB"));
    }

    #[test]
    fn positional_reads_are_independent() {
        let dir = fixture_dir();
        std::fs::write(dir.join("pos"), b"0123456789").unwrap();
        let src = RealProc::with_root(&dir);
        let mut h = src.open("pos").unwrap();
        let mut b = [0u8; 4];
        assert_eq!(h.read_at(3, &mut b).unwrap(), 4);
        assert_eq!(&b, b"3456");
        assert_eq!(h.read_at(0, &mut b).unwrap(), 4);
        assert_eq!(&b, b"0123");
        assert_eq!(h.read_at(10, &mut b).unwrap(), 0);
    }

    #[test]
    fn missing_file_errors() {
        let src = RealProc::with_root("/nonexistent-cwx");
        assert!(!src.available());
        assert!(src.open("meminfo").is_err());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn real_proc_meminfo_readable() {
        let src = RealProc::new();
        if !src.available() {
            return; // containerized environments may mask /proc
        }
        let mut h = src.open("meminfo").unwrap();
        let mut buf = Vec::new();
        h.read_to_vec(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("MemTotal:"), "unexpected meminfo: {text}");
    }
}
