//! `/proc/loadavg` — the cheapest file in the paper's table (7.5 µs/call).

use crate::parse::{next_f64, next_u64};

/// Parsed `/proc/loadavg`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadAvg {
    /// 1-minute load average.
    pub one: f64,
    /// 5-minute load average.
    pub five: f64,
    /// 15-minute load average.
    pub fifteen: f64,
    /// Currently runnable tasks.
    pub running: u64,
    /// Total scheduling entities.
    pub total: u64,
    /// Most recently created pid.
    pub last_pid: u64,
}

/// Allocating parser.
pub fn parse_generic(text: &str) -> Option<LoadAvg> {
    let mut parts = text.split_whitespace();
    let one = parts.next()?.parse().ok()?;
    let five = parts.next()?.parse().ok()?;
    let fifteen = parts.next()?.parse().ok()?;
    let rt = parts.next()?;
    let (running, total) = rt.split_once('/')?;
    let last_pid = parts.next()?.parse().ok()?;
    Some(LoadAvg {
        one,
        five,
        fifteen,
        running: running.parse().ok()?,
        total: total.parse().ok()?,
        last_pid,
    })
}

/// Zero-allocation parser: the format is one fixed line.
pub fn parse_apriori(b: &[u8]) -> Option<LoadAvg> {
    let mut pos = 0;
    Some(LoadAvg {
        one: next_f64(b, &mut pos)?,
        five: next_f64(b, &mut pos)?,
        fifteen: next_f64(b, &mut pos)?,
        running: next_u64(b, &mut pos)?,
        total: next_u64(b, &mut pos)?,
        last_pid: next_u64(b, &mut pos)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_parsers_agree_on_kernel_format() {
        let text = "0.42 1.05 2.33 3/128 4567\n";
        let g = parse_generic(text).unwrap();
        let a = parse_apriori(text.as_bytes()).unwrap();
        assert_eq!(g, a);
        assert!((g.one - 0.42).abs() < 1e-9);
        assert!((g.fifteen - 2.33).abs() < 1e-9);
        assert_eq!(g.running, 3);
        assert_eq!(g.total, 128);
        assert_eq!(g.last_pid, 4567);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_generic("hello world").is_none());
        assert!(parse_apriori(b"no digits here").is_none());
    }

    #[test]
    fn rejects_truncated() {
        assert!(parse_generic("0.1 0.2").is_none());
        assert!(parse_apriori(b"0.1 0.2").is_none());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_loadavg() {
        let Ok(text) = std::fs::read("/proc/loadavg") else {
            return;
        };
        let a = parse_apriori(&text).expect("parse real loadavg");
        let g = parse_generic(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(a, g);
        assert!(a.total >= 1);
    }
}
