//! `/proc/meminfo` — the file the paper's optimization ladder is built on.
//!
//! Two parsers:
//!
//! * [`parse_generic`] — the allocating, format-agnostic parser the L0/L1
//!   gatherers use (splits lines, builds a key map).
//! * [`parse_apriori`] — the zero-allocation parser of L2/L3. It relies
//!   on a [`Layout`] learned once from a sample read: proc file layouts
//!   are fixed per kernel, so after learning *which line* holds each
//!   field, parsing is a single forward scan that never compares key
//!   names again.

use crate::parse::{next_u64, parse_key_values, skip_line};

/// Parsed memory statistics, in kB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemInfo {
    /// Total usable RAM.
    pub total_kb: u64,
    /// Free RAM.
    pub free_kb: u64,
    /// Buffer cache.
    pub buffers_kb: u64,
    /// Page cache.
    pub cached_kb: u64,
    /// Total swap.
    pub swap_total_kb: u64,
    /// Free swap.
    pub swap_free_kb: u64,
}

impl MemInfo {
    /// RAM in use (total − free), the quantity most monitors chart.
    pub fn used_kb(&self) -> u64 {
        self.total_kb.saturating_sub(self.free_kb)
    }

    /// Fraction of RAM in use, `[0,1]`.
    pub fn used_fraction(&self) -> f64 {
        if self.total_kb == 0 {
            0.0
        } else {
            self.used_kb() as f64 / self.total_kb as f64
        }
    }
}

/// Number of fields [`Layout`] tracks.
const FIELDS: usize = 6;
const KEYS: [&str; FIELDS] = [
    "MemTotal:",
    "MemFree:",
    "Buffers:",
    "Cached:",
    "SwapTotal:",
    "SwapFree:",
];

/// The learned line positions of the six fields within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// `line_of[f]` = zero-based line index of field `f`.
    line_of: [u16; FIELDS],
    /// Highest line index we need to scan to.
    max_line: u16,
}

impl Layout {
    /// Learn the layout from one full read of the file. Returns `None`
    /// if any of the six keys is missing.
    pub fn learn(text: &[u8]) -> Option<Layout> {
        let text = std::str::from_utf8(text).ok()?;
        let mut line_of = [u16::MAX; FIELDS];
        for (i, line) in text.lines().enumerate() {
            for (f, key) in KEYS.iter().enumerate() {
                if line_of[f] == u16::MAX && line.starts_with(key) {
                    line_of[f] = i as u16;
                }
            }
        }
        if line_of.contains(&u16::MAX) {
            return None;
        }
        Some(Layout {
            line_of,
            max_line: *line_of.iter().max().unwrap(),
        })
    }
}

/// Allocating parser (L0/L1): builds a key map, then extracts fields.
pub fn parse_generic(text: &str) -> Option<MemInfo> {
    let map = parse_key_values(text);
    Some(MemInfo {
        total_kb: *map.get("MemTotal")?,
        free_kb: *map.get("MemFree")?,
        buffers_kb: *map.get("Buffers")?,
        cached_kb: *map.get("Cached")?,
        swap_total_kb: *map.get("SwapTotal")?,
        swap_free_kb: *map.get("SwapFree")?,
    })
}

/// Zero-allocation parser (L2/L3): one forward scan picking the number
/// off each learned line.
pub fn parse_apriori(b: &[u8], layout: &Layout) -> Option<MemInfo> {
    let mut values = [0u64; FIELDS];
    let mut found = 0;
    let mut pos = 0usize;
    let mut line: u16 = 0;
    while line <= layout.max_line {
        // is this line one of ours?
        let mut wanted = usize::MAX;
        for f in 0..FIELDS {
            if layout.line_of[f] == line {
                wanted = f;
                break;
            }
        }
        if wanted != usize::MAX {
            values[wanted] = next_u64(b, &mut pos)?;
            found += 1;
            // next_u64 stopped just past the number; continue to line end
        }
        if !skip_line(b, &mut pos) && line < layout.max_line {
            return None; // file shorter than the learned layout
        }
        line += 1;
    }
    if found != FIELDS {
        return None;
    }
    Some(MemInfo {
        total_kb: values[0],
        free_kb: values[1],
        buffers_kb: values[2],
        cached_kb: values[3],
        swap_total_kb: values[4],
        swap_free_kb: values[5],
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit field setup reads clearer in tests
mod tests {
    use super::*;
    use crate::synthetic::SyntheticState;

    fn sample() -> String {
        let mut s = String::new();
        let mut st = SyntheticState::default();
        st.mem_free_kb = 432_100;
        st.buffers_kb = 11_111;
        st.cached_kb = 222_222;
        st.swap_free_kb = 2_000_000;
        st.render_meminfo(&mut s);
        s
    }

    #[test]
    fn generic_parses_synthetic() {
        let m = parse_generic(&sample()).unwrap();
        assert_eq!(m.total_kb, 1_048_576);
        assert_eq!(m.free_kb, 432_100);
        assert_eq!(m.buffers_kb, 11_111);
        assert_eq!(m.cached_kb, 222_222);
        assert_eq!(m.swap_total_kb, 2_097_152);
        assert_eq!(m.swap_free_kb, 2_000_000);
    }

    #[test]
    fn apriori_agrees_with_generic() {
        let s = sample();
        let layout = Layout::learn(s.as_bytes()).unwrap();
        let a = parse_apriori(s.as_bytes(), &layout).unwrap();
        let g = parse_generic(&s).unwrap();
        assert_eq!(a, g);
    }

    #[test]
    fn apriori_handles_interleaved_extra_lines() {
        // modern kernels put many extra keys between ours; the layout
        // learner must cope
        let text = "MemTotal: 100 kB\nMemAvailable: 5 kB\nMemFree: 50 kB\nBuffers: 7 kB\nWeird: x\nCached: 9 kB\nSwapCached: 1 kB\nSwapTotal: 200 kB\nSwapFree: 150 kB\nDirty: 3 kB\n";
        let layout = Layout::learn(text.as_bytes()).unwrap();
        let m = parse_apriori(text.as_bytes(), &layout).unwrap();
        assert_eq!(m.total_kb, 100);
        assert_eq!(m.free_kb, 50);
        assert_eq!(m.buffers_kb, 7);
        assert_eq!(m.cached_kb, 9);
        assert_eq!(m.swap_total_kb, 200);
        assert_eq!(m.swap_free_kb, 150);
    }

    #[test]
    fn learn_fails_on_missing_keys() {
        assert!(Layout::learn(b"MemTotal: 5 kB\n").is_none());
    }

    #[test]
    fn apriori_fails_on_truncated_file() {
        let s = sample();
        let layout = Layout::learn(s.as_bytes()).unwrap();
        let truncated = &s.as_bytes()[..s.len() / 2];
        assert!(parse_apriori(truncated, &layout).is_none());
    }

    #[test]
    fn generic_fails_on_garbage() {
        assert!(parse_generic("not meminfo at all").is_none());
    }

    #[test]
    fn used_fraction_sane() {
        let m = MemInfo {
            total_kb: 1000,
            free_kb: 250,
            ..Default::default()
        };
        assert_eq!(m.used_kb(), 750);
        assert!((m.used_fraction() - 0.75).abs() < 1e-12);
        let z = MemInfo::default();
        assert_eq!(z.used_fraction(), 0.0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_proc_meminfo() {
        let Ok(text) = std::fs::read("/proc/meminfo") else {
            return;
        };
        let layout = Layout::learn(&text).expect("learn layout from real meminfo");
        let a = parse_apriori(&text, &layout).expect("apriori parse real meminfo");
        let g = parse_generic(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(a, g);
        assert!(a.total_kb > 0);
    }
}
