//! `/proc/uptime` — 6.2 µs/call in the paper's table.

use crate::parse::next_f64;

/// Parsed `/proc/uptime`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Uptime {
    /// Seconds since boot.
    pub uptime_secs: f64,
    /// Aggregate idle seconds (summed over CPUs).
    pub idle_secs: f64,
}

/// Allocating parser.
pub fn parse_generic(text: &str) -> Option<Uptime> {
    let mut parts = text.split_whitespace();
    Some(Uptime {
        uptime_secs: parts.next()?.parse().ok()?,
        idle_secs: parts.next()?.parse().ok()?,
    })
}

/// Zero-allocation parser.
pub fn parse_apriori(b: &[u8]) -> Option<Uptime> {
    let mut pos = 0;
    Some(Uptime {
        uptime_secs: next_f64(b, &mut pos)?,
        idle_secs: next_f64(b, &mut pos)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsers_agree() {
        let text = "605502.42 589836.24\n";
        let g = parse_generic(text).unwrap();
        let a = parse_apriori(text.as_bytes()).unwrap();
        assert!((g.uptime_secs - a.uptime_secs).abs() < 1e-6);
        assert!((g.uptime_secs - 605502.42).abs() < 1e-6);
        assert!((g.idle_secs - 589836.24).abs() < 1e-6);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse_generic("x y").is_none());
        assert!(parse_apriori(b"42.0").is_none());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_uptime() {
        let Ok(text) = std::fs::read("/proc/uptime") else {
            return;
        };
        let a = parse_apriori(&text).expect("parse real uptime");
        assert!(a.uptime_secs > 0.0);
    }
}
