//! `/proc/net/dev` — per-interface traffic counters (21.6 µs per call
//! per network device in the paper's table).
//!
//! The zero-allocation parser writes into a caller-provided `Vec` that is
//! cleared and reused between samples, and stores interface names in a
//! fixed 16-byte inline buffer (IFNAMSIZ), so the steady state allocates
//! nothing.

use crate::parse::{next_u64, skip_line};

/// An interface name stored inline (IFNAMSIZ = 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IfName {
    bytes: [u8; 16],
    len: u8,
}

impl IfName {
    /// Build from a byte slice (truncated to 16 bytes).
    pub fn new(name: &[u8]) -> Self {
        let mut bytes = [0u8; 16];
        let len = name.len().min(16);
        bytes[..len].copy_from_slice(&name[..len]);
        IfName {
            bytes,
            len: len as u8,
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("?")
    }
}

impl std::fmt::Display for IfName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<&str> for IfName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Counters for one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IfStats {
    /// Interface name.
    pub name: IfName,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Received packets.
    pub rx_packets: u64,
    /// Receive errors.
    pub rx_errs: u64,
    /// Dropped on receive.
    pub rx_drop: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Transmit errors.
    pub tx_errs: u64,
    /// Dropped on transmit.
    pub tx_drop: u64,
}

/// Allocating parser.
pub fn parse_generic(text: &str) -> Option<Vec<IfStats>> {
    let mut out = Vec::new();
    for line in text.lines().skip(2) {
        let (name, rest) = line.split_once(':')?;
        let nums: Vec<u64> = rest
            .split_whitespace()
            .map_while(|p| p.parse().ok())
            .collect();
        if nums.len() < 16 {
            return None;
        }
        out.push(IfStats {
            name: IfName::new(name.trim().as_bytes()),
            rx_bytes: nums[0],
            rx_packets: nums[1],
            rx_errs: nums[2],
            rx_drop: nums[3],
            tx_bytes: nums[8],
            tx_packets: nums[9],
            tx_errs: nums[10],
            tx_drop: nums[11],
        })
    }
    Some(out)
}

/// Zero-allocation parser into a reused buffer.
///
/// Returns the number of interfaces parsed; `out` is cleared first. The
/// a-priori knowledge used: two header lines, then one `name: 16 numbers`
/// line per interface with rx in columns 0–3 and tx in columns 8–11.
pub fn parse_apriori(b: &[u8], out: &mut Vec<IfStats>) -> Option<usize> {
    out.clear();
    let mut pos = 0;
    // two header lines
    if !skip_line(b, &mut pos) || !skip_line(b, &mut pos) {
        return None;
    }
    while pos < b.len() {
        let line_start = pos;
        // find the colon terminating the name
        let mut colon = pos;
        while colon < b.len() && b[colon] != b':' {
            if b[colon] == b'\n' {
                return None; // interface line without colon
            }
            colon += 1;
        }
        if colon == b.len() {
            break;
        }
        // trim leading spaces from the name
        let mut ns = line_start;
        while ns < colon && b[ns] == b' ' {
            ns += 1;
        }
        let mut st = IfStats {
            name: IfName::new(&b[ns..colon]),
            ..Default::default()
        };
        pos = colon + 1;
        let mut cols = [0u64; 16];
        for col in cols.iter_mut() {
            *col = next_u64(b, &mut pos)?;
        }
        st.rx_bytes = cols[0];
        st.rx_packets = cols[1];
        st.rx_errs = cols[2];
        st.rx_drop = cols[3];
        st.tx_bytes = cols[8];
        st.tx_packets = cols[9];
        st.tx_errs = cols[10];
        st.tx_drop = cols[11];
        out.push(st);
        if !skip_line(b, &mut pos) {
            break;
        }
    }
    Some(out.len())
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit field setup reads clearer in tests
mod tests {
    use super::*;
    use crate::synthetic::{SynthInterface, SyntheticState};

    fn sample() -> String {
        let mut st = SyntheticState::default();
        st.interfaces = vec![
            {
                let mut i = SynthInterface::new("lo");
                i.rx_bytes = 1111;
                i.rx_packets = 11;
                i.tx_bytes = 1111;
                i.tx_packets = 11;
                i
            },
            {
                let mut i = SynthInterface::new("eth0");
                i.rx_bytes = 99_999_999;
                i.rx_packets = 88_888;
                i.rx_errs = 2;
                i.rx_drop = 1;
                i.tx_bytes = 55_555_555;
                i.tx_packets = 44_444;
                i.tx_errs = 3;
                i.tx_drop = 4;
                i
            },
        ];
        let mut s = String::new();
        st.render_netdev(&mut s);
        s
    }

    #[test]
    fn generic_parses_synthetic() {
        let v = parse_generic(&sample()).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].name, "lo");
        assert_eq!(v[1].name, "eth0");
        assert_eq!(v[1].rx_bytes, 99_999_999);
        assert_eq!(v[1].tx_packets, 44_444);
        assert_eq!(v[1].tx_drop, 4);
    }

    #[test]
    fn apriori_agrees_with_generic() {
        let s = sample();
        let g = parse_generic(&s).unwrap();
        let mut a = Vec::new();
        assert_eq!(parse_apriori(s.as_bytes(), &mut a), Some(2));
        assert_eq!(a, g);
    }

    #[test]
    fn apriori_reuses_buffer_without_realloc() {
        let s = sample();
        let mut buf = Vec::with_capacity(8);
        parse_apriori(s.as_bytes(), &mut buf).unwrap();
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..100 {
            parse_apriori(s.as_bytes(), &mut buf).unwrap();
        }
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn rejects_headerless_input() {
        let mut out = Vec::new();
        assert!(parse_apriori(b"eth0: 1 2 3", &mut out).is_none());
    }

    #[test]
    fn rejects_short_column_count() {
        let text = "h1\nh2\n eth0: 1 2 3 4 5\n";
        assert!(parse_generic(text).is_none());
        let mut out = Vec::new();
        assert!(parse_apriori(text.as_bytes(), &mut out).is_none());
    }

    #[test]
    fn ifname_truncates_long_names() {
        let n = IfName::new(b"averyveryverylongname");
        assert_eq!(n.as_str().len(), 16);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_netdev() {
        let Ok(text) = std::fs::read("/proc/net/dev") else {
            return;
        };
        let g = parse_generic(std::str::from_utf8(&text).unwrap()).unwrap();
        let mut a = Vec::new();
        parse_apriori(&text, &mut a).unwrap();
        assert_eq!(a, g);
        assert!(!a.is_empty());
    }
}
