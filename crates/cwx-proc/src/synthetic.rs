//! An in-memory /proc that behaves like the kernel's.
//!
//! Each simulated node owns a [`SyntheticState`] describing its current
//! activity (memory occupancy, per-CPU jiffie counters, load averages,
//! uptime, NIC counters). [`SyntheticProc`] serves the five proc files
//! the paper's agent reads, **regenerating the full file text on every
//! `read_at` call** — the exact kernel-handler behaviour the paper calls
//! "a crucial point for efficiency". A regeneration counter lets tests
//! assert that naive byte-at-a-time readers pay the quadratic cost.

use std::io;
use std::sync::{Arc, Mutex};

use crate::source::{ProcHandle, ProcSource};

/// Per-disk counters for `/proc/diskstats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthDisk {
    /// Device name, e.g. `hda`.
    pub name: String,
    /// Major number.
    pub major: u32,
    /// Read operations completed.
    pub reads: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Sectors written.
    pub sectors_written: u64,
}

impl SynthDisk {
    /// A fresh disk with zeroed counters.
    pub fn new(name: impl Into<String>, major: u32) -> Self {
        SynthDisk {
            name: name.into(),
            major,
            reads: 0,
            sectors_read: 0,
            writes: 0,
            sectors_written: 0,
        }
    }
}

/// Per-interface counters for `/proc/net/dev`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthInterface {
    /// Interface name (e.g. `eth0`).
    pub name: String,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Received packets.
    pub rx_packets: u64,
    /// Receive errors.
    pub rx_errs: u64,
    /// Dropped on receive.
    pub rx_drop: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Transmit errors.
    pub tx_errs: u64,
    /// Dropped on transmit.
    pub tx_drop: u64,
}

impl SynthInterface {
    /// A fresh interface with zeroed counters.
    pub fn new(name: impl Into<String>) -> Self {
        SynthInterface {
            name: name.into(),
            rx_bytes: 0,
            rx_packets: 0,
            rx_errs: 0,
            rx_drop: 0,
            tx_bytes: 0,
            tx_packets: 0,
            tx_errs: 0,
            tx_drop: 0,
        }
    }
}

/// The live state a synthetic node exposes through /proc.
///
/// The cluster hardware simulation (`cwx-hw`) mutates this as simulated
/// time advances; gatherers observe it through [`SyntheticProc`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticState {
    /// Total RAM in kB.
    pub mem_total_kb: u64,
    /// Free RAM in kB.
    pub mem_free_kb: u64,
    /// Buffer cache in kB.
    pub buffers_kb: u64,
    /// Page cache in kB.
    pub cached_kb: u64,
    /// Total swap in kB.
    pub swap_total_kb: u64,
    /// Free swap in kB.
    pub swap_free_kb: u64,
    /// Per-CPU jiffie counters `[user, nice, system, idle]`.
    pub cpus: Vec<[u64; 4]>,
    /// Context switches since boot.
    pub ctxt: u64,
    /// Forks since boot.
    pub processes: u64,
    /// Boot time (seconds since the epoch).
    pub btime: u64,
    /// Currently runnable tasks.
    pub procs_running: u64,
    /// Tasks blocked on I/O.
    pub procs_blocked: u64,
    /// 1-minute load average.
    pub load_one: f64,
    /// 5-minute load average.
    pub load_five: f64,
    /// 15-minute load average.
    pub load_fifteen: f64,
    /// Total scheduling entities, for the `running/total` field.
    pub tasks_total: u64,
    /// Most recently assigned pid.
    pub last_pid: u64,
    /// Seconds since boot.
    pub uptime_secs: f64,
    /// Aggregate idle seconds.
    pub idle_secs: f64,
    /// Network interfaces.
    pub interfaces: Vec<SynthInterface>,
    /// Block devices.
    pub disks: Vec<SynthDisk>,
}

impl Default for SyntheticState {
    fn default() -> Self {
        SyntheticState {
            // paper testbed: 1 GB Pentium III node
            mem_total_kb: 1_048_576,
            mem_free_kb: 900_000,
            buffers_kb: 20_000,
            cached_kb: 100_000,
            swap_total_kb: 2_097_152,
            swap_free_kb: 2_097_152,
            cpus: vec![[0, 0, 0, 0]],
            ctxt: 0,
            processes: 1,
            btime: 1_041_379_200, // 2003-01-01, era-appropriate
            procs_running: 1,
            procs_blocked: 0,
            load_one: 0.0,
            load_five: 0.0,
            load_fifteen: 0.0,
            tasks_total: 60,
            last_pid: 1,
            uptime_secs: 0.0,
            idle_secs: 0.0,
            interfaces: vec![SynthInterface::new("lo"), SynthInterface::new("eth0")],
            disks: vec![SynthDisk::new("hda", 3)],
        }
    }
}

impl SyntheticState {
    /// Render `/proc/meminfo`.
    pub fn render_meminfo(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        let used = self.mem_total_kb.saturating_sub(self.mem_free_kb);
        let _ = writeln!(out, "MemTotal: {:>8} kB", self.mem_total_kb);
        let _ = writeln!(out, "MemFree: {:>9} kB", self.mem_free_kb);
        let _ = writeln!(out, "Buffers: {:>9} kB", self.buffers_kb);
        let _ = writeln!(out, "Cached: {:>10} kB", self.cached_kb);
        let _ = writeln!(out, "Active: {:>10} kB", used / 2);
        let _ = writeln!(out, "Inactive: {:>8} kB", used / 4);
        let _ = writeln!(out, "SwapTotal: {:>7} kB", self.swap_total_kb);
        let _ = writeln!(out, "SwapFree: {:>8} kB", self.swap_free_kb);
    }

    /// Render `/proc/stat`.
    pub fn render_stat(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        let mut total = [0u64; 4];
        for cpu in &self.cpus {
            for k in 0..4 {
                total[k] += cpu[k];
            }
        }
        let _ = writeln!(
            out,
            "cpu  {} {} {} {}",
            total[0], total[1], total[2], total[3]
        );
        for (i, cpu) in self.cpus.iter().enumerate() {
            let _ = writeln!(out, "cpu{} {} {} {} {}", i, cpu[0], cpu[1], cpu[2], cpu[3]);
        }
        let _ = writeln!(out, "ctxt {}", self.ctxt);
        let _ = writeln!(out, "btime {}", self.btime);
        let _ = writeln!(out, "processes {}", self.processes);
        let _ = writeln!(out, "procs_running {}", self.procs_running);
        let _ = writeln!(out, "procs_blocked {}", self.procs_blocked);
    }

    /// Render `/proc/loadavg`.
    pub fn render_loadavg(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        let _ = writeln!(
            out,
            "{:.2} {:.2} {:.2} {}/{} {}",
            self.load_one,
            self.load_five,
            self.load_fifteen,
            self.procs_running,
            self.tasks_total,
            self.last_pid
        );
    }

    /// Render `/proc/uptime`.
    pub fn render_uptime(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        let _ = writeln!(out, "{:.2} {:.2}", self.uptime_secs, self.idle_secs);
    }

    /// Render `/proc/net/dev`.
    pub fn render_netdev(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        out.push_str(
            "Inter-|   Receive                                                |  Transmit\n",
        );
        out.push_str(" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n");
        for ifc in &self.interfaces {
            let _ = writeln!(
                out,
                "{:>6}: {:>8} {:>7} {:>4} {:>4}    0     0          0         0 {:>8} {:>7} {:>4} {:>4}    0     0       0          0",
                ifc.name,
                ifc.rx_bytes,
                ifc.rx_packets,
                ifc.rx_errs,
                ifc.rx_drop,
                ifc.tx_bytes,
                ifc.tx_packets,
                ifc.tx_errs,
                ifc.tx_drop,
            );
        }
    }

    /// Render `/proc/diskstats`.
    pub fn render_diskstats(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        for d in &self.disks {
            let _ = writeln!(
                out,
                "{:>4} {:>4} {} {} {} {} {}",
                d.major, 0, d.name, d.reads, d.sectors_read, d.writes, d.sectors_written
            );
        }
    }

    /// Advance activity counters by `dt_secs` of simulated time given a
    /// CPU utilisation in `[0,1]` spread across all CPUs (assumes 100 Hz
    /// jiffies, the 2.4-kernel tick).
    pub fn tick(&mut self, dt_secs: f64, cpu_util: f64) {
        let util = cpu_util.clamp(0.0, 1.0);
        let jiffies = (dt_secs * 100.0) as u64;
        for cpu in &mut self.cpus {
            let busy = (jiffies as f64 * util) as u64;
            cpu[0] += busy * 7 / 10; // user
            cpu[2] += busy - busy * 7 / 10; // system
            cpu[3] += jiffies - busy; // idle
        }
        self.uptime_secs += dt_secs;
        self.idle_secs += dt_secs * (1.0 - util) * self.cpus.len() as f64;
        self.ctxt += (dt_secs * (100.0 + 4000.0 * util)) as u64;
        // busy nodes do I/O roughly in proportion to their load
        for d in &mut self.disks {
            let ops = (dt_secs * (2.0 + 60.0 * util)) as u64;
            d.reads += ops * 2 / 3;
            d.writes += ops - ops * 2 / 3;
            d.sectors_read += ops * 2 / 3 * 16;
            d.sectors_written += (ops - ops * 2 / 3) * 16;
        }
    }
}

/// A proc source backed by a shared [`SyntheticState`].
///
/// Clones share the same state, so the simulator can hold one clone and
/// mutate it while gatherers hold another.
#[derive(Debug, Clone)]
pub struct SyntheticProc {
    state: Arc<Mutex<SyntheticState>>,
    regens: Arc<Mutex<u64>>,
}

impl SyntheticProc {
    /// Wrap a state.
    pub fn new(state: SyntheticState) -> Self {
        SyntheticProc {
            state: Arc::new(Mutex::new(state)),
            regens: Arc::new(Mutex::new(0)),
        }
    }

    /// Run `f` with exclusive access to the state (how the simulator
    /// injects activity).
    pub fn with_state<R>(&self, f: impl FnOnce(&mut SyntheticState) -> R) -> R {
        f(&mut self.state.lock().unwrap())
    }

    /// How many times a file handler regenerated content. A direct
    /// measure of the waste the paper's naive gatherer incurs.
    pub fn regenerations(&self) -> u64 {
        *self.regens.lock().unwrap()
    }
}

impl Default for SyntheticProc {
    fn default() -> Self {
        SyntheticProc::new(SyntheticState::default())
    }
}

/// Which file a synthetic handle serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    MemInfo,
    Stat,
    LoadAvg,
    Uptime,
    NetDev,
    DiskStats,
}

/// An open synthetic file.
#[derive(Debug)]
pub struct SyntheticHandle {
    proc_: SyntheticProc,
    kind: FileKind,
    scratch: String,
}

impl ProcSource for SyntheticProc {
    type Handle = SyntheticHandle;

    fn open(&self, path: &str) -> io::Result<SyntheticHandle> {
        let kind = match path {
            "meminfo" => FileKind::MemInfo,
            "stat" => FileKind::Stat,
            "loadavg" => FileKind::LoadAvg,
            "uptime" => FileKind::Uptime,
            "net/dev" => FileKind::NetDev,
            "diskstats" => FileKind::DiskStats,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no synthetic proc file: {other}"),
                ))
            }
        };
        Ok(SyntheticHandle {
            proc_: self.clone(),
            kind,
            scratch: String::new(),
        })
    }
}

impl ProcHandle for SyntheticHandle {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        // Regenerate the whole file on every read — kernel semantics.
        {
            let state = self.proc_.state.lock().unwrap();
            match self.kind {
                FileKind::MemInfo => state.render_meminfo(&mut self.scratch),
                FileKind::Stat => state.render_stat(&mut self.scratch),
                FileKind::LoadAvg => state.render_loadavg(&mut self.scratch),
                FileKind::Uptime => state.render_uptime(&mut self.scratch),
                FileKind::NetDev => state.render_netdev(&mut self.scratch),
                FileKind::DiskStats => state.render_diskstats(&mut self.scratch),
            }
        }
        *self.proc_.regens.lock().unwrap() += 1;
        let bytes = self.scratch.as_bytes();
        let offset = offset as usize;
        if offset >= bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(bytes.len() - offset);
        buf[..n].copy_from_slice(&bytes[offset..offset + n]);
        Ok(n)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit field setup reads clearer in tests
mod tests {
    use super::*;

    #[test]
    fn meminfo_renders_expected_keys() {
        let mut s = String::new();
        SyntheticState::default().render_meminfo(&mut s);
        for key in [
            "MemTotal:",
            "MemFree:",
            "Buffers:",
            "Cached:",
            "SwapTotal:",
            "SwapFree:",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn stat_renders_cpu_lines_per_cpu() {
        let mut st = SyntheticState::default();
        st.cpus = vec![[1, 2, 3, 4], [5, 6, 7, 8]];
        let mut s = String::new();
        st.render_stat(&mut s);
        assert!(s.starts_with("cpu  6 8 10 12\n"));
        assert!(s.contains("cpu0 1 2 3 4\n"));
        assert!(s.contains("cpu1 5 6 7 8\n"));
        assert!(s.contains("procs_running 1"));
    }

    #[test]
    fn loadavg_format_matches_kernel() {
        let mut st = SyntheticState::default();
        st.load_one = 0.42;
        st.load_five = 0.30;
        st.load_fifteen = 0.1;
        st.procs_running = 2;
        st.tasks_total = 77;
        st.last_pid = 1234;
        let mut s = String::new();
        st.render_loadavg(&mut s);
        assert_eq!(s, "0.42 0.30 0.10 2/77 1234\n");
    }

    #[test]
    fn netdev_has_two_header_lines_then_interfaces() {
        let mut s = String::new();
        SyntheticState::default().render_netdev(&mut s);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].trim_start().starts_with("lo:"));
        assert!(lines[3].trim_start().starts_with("eth0:"));
    }

    #[test]
    fn every_read_regenerates() {
        let proc_ = SyntheticProc::default();
        let mut h = proc_.open("meminfo").unwrap();
        let mut b = [0u8; 1];
        for _ in 0..10 {
            h.read_at(0, &mut b).unwrap();
        }
        assert_eq!(proc_.regenerations(), 10);
    }

    #[test]
    fn reads_observe_state_mutations() {
        let proc_ = SyntheticProc::default();
        let mut h = proc_.open("uptime").unwrap();
        let mut buf = Vec::new();
        h.read_to_vec(&mut buf).unwrap();
        let before = String::from_utf8(buf.clone()).unwrap();
        proc_.with_state(|s| s.uptime_secs = 123.0);
        h.read_to_vec(&mut buf).unwrap();
        let after = String::from_utf8(buf).unwrap();
        assert_ne!(before, after);
        assert!(after.starts_with("123.00 "));
    }

    #[test]
    fn unknown_path_is_not_found() {
        let proc_ = SyntheticProc::default();
        let err = proc_.open("cpuinfo").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn tick_advances_jiffies_consistently() {
        let mut st = SyntheticState::default();
        st.cpus = vec![[0; 4]; 2];
        st.tick(10.0, 0.5);
        for cpu in &st.cpus {
            let total: u64 = cpu.iter().sum();
            assert_eq!(total, 1000); // 10s * 100Hz
            assert!(cpu[3] >= 400 && cpu[3] <= 600, "idle {:?}", cpu);
        }
        assert!((st.uptime_secs - 10.0).abs() < 1e-9);
        assert!(st.ctxt > 0);
    }

    #[test]
    fn clones_share_state() {
        let a = SyntheticProc::default();
        let b = a.clone();
        b.with_state(|s| s.mem_free_kb = 1);
        assert_eq!(a.with_state(|s| s.mem_free_kb), 1);
    }
}
