//! An rstatd-style RPC baseline (paper §5.3.1).
//!
//! "Standard tools for gathering system statistics, such as rstatd and
//! SNMP tools, only provide limited information and tend to be slow and
//! inefficient. Thus we focus on using the /proc virtual file system."
//!
//! To make that comparison concrete we implement the thing being
//! dismissed: a miniature `rstatd` — the classic `statstime` structure,
//! XDR-encoded (big-endian words), served over a real UDP socket and
//! fetched with a real request/response round trip. Every sample pays
//! two syscalls plus kernel network stack traversal, and the response
//! carries only the fixed dozen-or-so statistics rstat ever knew about —
//! both of the paper's complaints, measurably.

use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The classic `statstime` payload (the interesting subset).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RstatReply {
    /// CPU jiffies: user, nice, system, idle.
    pub cpu: [u32; 4],
    /// Disk transfer counters (4 drives — rstat's fixed array).
    pub dk_xfer: [u32; 4],
    /// Pages in/out.
    pub pages: [u32; 2],
    /// Swap in/out.
    pub swaps: [u32; 2],
    /// Interrupts.
    pub intr: u32,
    /// Packets in/out.
    pub packets: [u32; 2],
    /// Collisions + errors.
    pub errors: [u32; 2],
    /// Load averages × 256 (rstat's fixed-point encoding).
    pub avenrun: [u32; 3],
    /// Boot time, seconds since the epoch.
    pub boottime: u32,
}

const WORDS: usize = 4 + 4 + 2 + 2 + 1 + 2 + 2 + 3 + 1;
/// Wire size of one reply.
pub const REPLY_BYTES: usize = WORDS * 4;
const REQUEST: &[u8; 8] = b"RSTAT\0v1"; // stands in for the ONC RPC header

/// XDR-encode a reply (big-endian words, like real XDR).
pub fn encode(r: &RstatReply) -> [u8; REPLY_BYTES] {
    let mut out = [0u8; REPLY_BYTES];
    let mut i = 0;
    let mut put = |v: u32| {
        out[i..i + 4].copy_from_slice(&v.to_be_bytes());
        i += 4;
    };
    for v in r.cpu {
        put(v);
    }
    for v in r.dk_xfer {
        put(v);
    }
    for v in r.pages {
        put(v);
    }
    for v in r.swaps {
        put(v);
    }
    put(r.intr);
    for v in r.packets {
        put(v);
    }
    for v in r.errors {
        put(v);
    }
    for v in r.avenrun {
        put(v);
    }
    put(r.boottime);
    out
}

/// Decode a reply; `None` when the buffer is short.
pub fn decode(b: &[u8]) -> Option<RstatReply> {
    if b.len() < REPLY_BYTES {
        return None;
    }
    let mut i = 0;
    let mut get = || {
        let v = u32::from_be_bytes(b[i..i + 4].try_into().unwrap());
        i += 4;
        v
    };
    let mut r = RstatReply::default();
    for v in r.cpu.iter_mut() {
        *v = get();
    }
    for v in r.dk_xfer.iter_mut() {
        *v = get();
    }
    for v in r.pages.iter_mut() {
        *v = get();
    }
    for v in r.swaps.iter_mut() {
        *v = get();
    }
    r.intr = get();
    for v in r.packets.iter_mut() {
        *v = get();
    }
    for v in r.errors.iter_mut() {
        *v = get();
    }
    for v in r.avenrun.iter_mut() {
        *v = get();
    }
    r.boottime = get();
    Some(r)
}

/// Build a reply from the synthetic node state (what a 2002 rstatd
/// compiled against the kernel would report).
pub fn reply_from_state(s: &crate::synthetic::SyntheticState) -> RstatReply {
    let mut cpu = [0u32; 4];
    for c in &s.cpus {
        for k in 0..4 {
            cpu[k] = cpu[k].wrapping_add(c[k] as u32);
        }
    }
    let mut dk = [0u32; 4];
    for (i, d) in s.disks.iter().take(4).enumerate() {
        dk[i] = (d.reads + d.writes) as u32;
    }
    let (mut ipk, mut opk, mut errs, mut colls) = (0u32, 0u32, 0u32, 0u32);
    for ifc in &s.interfaces {
        ipk = ipk.wrapping_add(ifc.rx_packets as u32);
        opk = opk.wrapping_add(ifc.tx_packets as u32);
        errs = errs.wrapping_add((ifc.rx_errs + ifc.tx_errs) as u32);
        colls = colls.wrapping_add((ifc.rx_drop + ifc.tx_drop) as u32);
    }
    RstatReply {
        cpu,
        dk_xfer: dk,
        pages: [0, 0],
        swaps: [0, 0],
        intr: s.ctxt as u32,
        packets: [ipk, opk],
        errors: [colls, errs],
        avenrun: [
            (s.load_one * 256.0) as u32,
            (s.load_five * 256.0) as u32,
            (s.load_fifteen * 256.0) as u32,
        ],
        boottime: s.btime as u32,
    }
}

/// A running rstatd: a thread answering requests on a loopback UDP
/// socket. Dropped handles shut the server down.
pub struct RstatServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RstatServer {
    /// Spawn a server whose replies come from `source` (called per
    /// request, like the kernel handler it wraps).
    pub fn spawn(source: impl Fn() -> RstatReply + Send + 'static) -> io::Result<RstatServer> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 64];
            while !stop2.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((n, peer)) if n >= REQUEST.len() && &buf[..REQUEST.len()] == REQUEST => {
                        let reply = encode(&source());
                        let _ = socket.send_to(&reply, peer);
                    }
                    _ => {} // timeout or malformed: keep serving
                }
            }
        });
        Ok(RstatServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The server's address for clients.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for RstatServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A client performing real request/response round trips.
pub struct RstatClient {
    socket: UdpSocket,
    buf: [u8; REPLY_BYTES],
}

impl RstatClient {
    /// Connect to a server address.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<RstatClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(addr)?;
        socket.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
        Ok(RstatClient {
            socket,
            buf: [0; REPLY_BYTES],
        })
    }

    /// One RPC round trip.
    pub fn sample(&mut self) -> io::Result<RstatReply> {
        self.socket.send(REQUEST)?;
        let n = self.socket.recv(&mut self.buf)?;
        decode(&self.buf[..n])
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short rstat reply"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticState;

    #[test]
    fn xdr_round_trip() {
        let r = RstatReply {
            cpu: [1, 2, 3, 4],
            dk_xfer: [5, 6, 7, 8],
            pages: [9, 10],
            swaps: [11, 12],
            intr: 13,
            packets: [14, 15],
            errors: [16, 17],
            avenrun: [18, 19, 20],
            boottime: 21,
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
        assert!(decode(&encode(&r)[..REPLY_BYTES - 1]).is_none());
    }

    #[test]
    fn reply_reflects_state() {
        let mut s = SyntheticState::default();
        s.tick(100.0, 0.5);
        s.load_one = 1.5;
        let r = reply_from_state(&s);
        assert!(r.cpu.iter().sum::<u32>() > 0);
        assert_eq!(r.avenrun[0], 384); // 1.5 * 256
        assert_eq!(r.boottime, s.btime as u32);
    }

    #[test]
    fn real_udp_round_trip() {
        let state = SyntheticState::default();
        let server = RstatServer::spawn(move || reply_from_state(&state)).unwrap();
        let mut client = RstatClient::connect(server.addr()).unwrap();
        for _ in 0..10 {
            let r = client.sample().unwrap();
            assert_eq!(r.boottime, 1_041_379_200);
        }
    }

    #[test]
    fn limited_information_claim_holds() {
        // rstat carries a fixed ~21 words; the /proc pipeline ships 50+
        // monitors — the "limited information" half of the complaint
        assert_eq!(REPLY_BYTES / 4, 21);
    }

    #[test]
    fn server_survives_garbage() {
        let server = RstatServer::spawn(RstatReply::default).unwrap();
        let junk = UdpSocket::bind("127.0.0.1:0").unwrap();
        junk.send_to(b"not an rpc", server.addr()).unwrap();
        // server still answers real clients afterwards
        let mut client = RstatClient::connect(server.addr()).unwrap();
        assert!(client.sample().is_ok());
    }
}
