//! `/proc/stat` — CPU jiffies and kernel counters (paper: 35 µs/call).

use crate::parse::{next_u64, skip_line};

/// Aggregate CPU jiffie counters (USER_HZ ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTimes {
    /// Time in user mode.
    pub user: u64,
    /// Time in user mode at low priority.
    pub nice: u64,
    /// Time in kernel mode.
    pub system: u64,
    /// Idle time.
    pub idle: u64,
}

impl CpuTimes {
    /// Non-idle jiffies.
    pub fn busy(&self) -> u64 {
        self.user + self.nice + self.system
    }

    /// All jiffies.
    pub fn total(&self) -> u64 {
        self.busy() + self.idle
    }

    /// CPU utilisation between two snapshots, `[0,1]`.
    ///
    /// Returns 0 when no time elapsed (or counters went backwards, e.g.
    /// across a reboot).
    pub fn utilization_since(&self, earlier: &CpuTimes) -> f64 {
        let dt = self.total().saturating_sub(earlier.total());
        if dt == 0 {
            return 0.0;
        }
        let busy = self.busy().saturating_sub(earlier.busy());
        (busy as f64 / dt as f64).clamp(0.0, 1.0)
    }
}

/// Parsed `/proc/stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stat {
    /// Sum over all CPUs.
    pub total: CpuTimes,
    /// Number of `cpuN` lines.
    pub ncpu: usize,
    /// Context switches since boot.
    pub ctxt: u64,
    /// Boot time, seconds since epoch.
    pub btime: u64,
    /// Forks since boot.
    pub processes: u64,
    /// Currently runnable tasks (0 on kernels that omit it).
    pub procs_running: u64,
    /// Tasks blocked on I/O (0 on kernels that omit it).
    pub procs_blocked: u64,
}

/// Allocating parser (the generic path).
pub fn parse_generic(text: &str) -> Option<Stat> {
    let mut stat = Stat::default();
    let mut saw_cpu = false;
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(tag) = parts.next() else { continue };
        let nums: Vec<u64> = parts.map_while(|p| p.parse().ok()).collect();
        match tag {
            "cpu" => {
                if nums.len() < 4 {
                    return None;
                }
                stat.total = CpuTimes {
                    user: nums[0],
                    nice: nums[1],
                    system: nums[2],
                    idle: nums[3],
                };
                saw_cpu = true;
            }
            t if t.starts_with("cpu") => stat.ncpu += 1,
            "ctxt" => stat.ctxt = *nums.first()?,
            "btime" => stat.btime = *nums.first()?,
            "processes" => stat.processes = *nums.first()?,
            "procs_running" => stat.procs_running = *nums.first()?,
            "procs_blocked" => stat.procs_blocked = *nums.first()?,
            _ => {}
        }
    }
    saw_cpu.then_some(stat)
}

/// Zero-allocation a-priori parser: the aggregate `cpu` line is always
/// first, `cpuN` lines follow, keyword lines are identified by their
/// leading bytes without building strings.
pub fn parse_apriori(b: &[u8]) -> Option<Stat> {
    let mut stat = Stat::default();
    if !b.starts_with(b"cpu ") && !b.starts_with(b"cpu\t") {
        return None;
    }
    let mut pos = 4;
    stat.total.user = next_u64(b, &mut pos)?;
    stat.total.nice = next_u64(b, &mut pos)?;
    stat.total.system = next_u64(b, &mut pos)?;
    stat.total.idle = next_u64(b, &mut pos)?;
    if !skip_line(b, &mut pos) {
        return Some(stat);
    }
    loop {
        let rest = &b[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.starts_with(b"cpu") {
            stat.ncpu += 1;
        } else if rest.starts_with(b"ctxt") {
            let mut p = pos;
            stat.ctxt = next_u64(b, &mut p)?;
        } else if rest.starts_with(b"btime") {
            let mut p = pos;
            stat.btime = next_u64(b, &mut p)?;
        } else if rest.starts_with(b"processes") {
            let mut p = pos;
            stat.processes = next_u64(b, &mut p)?;
        } else if rest.starts_with(b"procs_running") {
            let mut p = pos;
            stat.procs_running = next_u64(b, &mut p)?;
        } else if rest.starts_with(b"procs_blocked") {
            let mut p = pos;
            stat.procs_blocked = next_u64(b, &mut p)?;
        }
        // "intr", "softirq", "page", "swap", ... all skipped
        if !skip_line(b, &mut pos) {
            break;
        }
    }
    Some(stat)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit field setup reads clearer in tests
mod tests {
    use super::*;
    use crate::synthetic::SyntheticState;

    fn sample() -> String {
        let mut st = SyntheticState::default();
        st.cpus = vec![[100, 5, 30, 865], [120, 2, 40, 838]];
        st.ctxt = 9999;
        st.processes = 321;
        st.procs_running = 3;
        st.procs_blocked = 1;
        let mut s = String::new();
        st.render_stat(&mut s);
        s
    }

    #[test]
    fn generic_parses_synthetic() {
        let st = parse_generic(&sample()).unwrap();
        assert_eq!(
            st.total,
            CpuTimes {
                user: 220,
                nice: 7,
                system: 70,
                idle: 1703
            }
        );
        assert_eq!(st.ncpu, 2);
        assert_eq!(st.ctxt, 9999);
        assert_eq!(st.processes, 321);
        assert_eq!(st.procs_running, 3);
        assert_eq!(st.procs_blocked, 1);
    }

    #[test]
    fn apriori_agrees_with_generic() {
        let s = sample();
        assert_eq!(
            parse_apriori(s.as_bytes()).unwrap(),
            parse_generic(&s).unwrap()
        );
    }

    #[test]
    fn apriori_handles_modern_kernel_extras() {
        let text = "cpu  1 2 3 4 5 6 7 8 9 10\ncpu0 1 2 3 4 5 6 7 8 9 10\nintr 12345 0 1 2\nctxt 777\nbtime 1600000000\nprocesses 42\nprocs_running 2\nprocs_blocked 0\nsoftirq 99 1 2 3\n";
        let st = parse_apriori(text.as_bytes()).unwrap();
        assert_eq!(st.total.user, 1);
        assert_eq!(st.total.idle, 4);
        assert_eq!(st.ncpu, 1);
        assert_eq!(st.ctxt, 777);
        assert_eq!(st.processes, 42);
    }

    #[test]
    fn rejects_non_stat_content() {
        assert!(parse_apriori(b"MemTotal: 5 kB\n").is_none());
        assert!(parse_generic("MemTotal: 5 kB\n").is_none());
    }

    #[test]
    fn utilization_between_snapshots() {
        let a = CpuTimes {
            user: 100,
            nice: 0,
            system: 50,
            idle: 850,
        };
        let b = CpuTimes {
            user: 175,
            nice: 0,
            system: 75,
            idle: 950,
        };
        // busy delta 100, total delta 200
        assert!((b.utilization_since(&a) - 0.5).abs() < 1e-12);
        // reversed order saturates to 0
        assert_eq!(a.utilization_since(&b), 0.0);
        // no elapsed time
        assert_eq!(a.utilization_since(&a), 0.0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parses_real_proc_stat() {
        let Ok(text) = std::fs::read("/proc/stat") else {
            return;
        };
        let a = parse_apriori(&text).expect("apriori parse real stat");
        let g = parse_generic(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(a.total, g.total);
        assert_eq!(a.ncpu, g.ncpu);
        assert_eq!(a.ctxt, g.ctxt);
        assert!(a.ncpu >= 1);
        assert!(a.total.total() > 0);
    }
}
