//! Robustness: no parser in this crate may panic on arbitrary input.
//! The agent runs unattended on a thousand nodes; a malformed file (or a
//! kernel we never saw) must surface as `None`/`Err`, never as a crash.

use cwx_proc::{diskstats, loadavg, meminfo, netdev, rstatd, stat, uptime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsers_never_panic_on_bytes(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = stat::parse_apriori(&data);
        let _ = loadavg::parse_apriori(&data);
        let _ = uptime::parse_apriori(&data);
        let mut ifaces = Vec::new();
        let _ = netdev::parse_apriori(&data, &mut ifaces);
        let mut disks = Vec::new();
        let _ = diskstats::parse_apriori(&data, &mut disks);
        if let Some(layout) = meminfo::Layout::learn(&data) {
            let _ = meminfo::parse_apriori(&data, &layout);
        }
        let _ = rstatd::decode(&data);
    }

    #[test]
    fn parsers_never_panic_on_text(text in "\\PC{0,400}") {
        let _ = stat::parse_generic(&text);
        let _ = loadavg::parse_generic(&text);
        let _ = uptime::parse_generic(&text);
        let _ = netdev::parse_generic(&text);
        let _ = diskstats::parse_generic(&text);
        let _ = meminfo::parse_generic(&text);
    }

    /// Mutated-but-plausible proc files: flip bytes in real renderings.
    #[test]
    fn mutated_proc_files_never_panic(
        idx in 0usize..200,
        byte in any::<u8>(),
        which in 0usize..5,
    ) {
        use cwx_proc::synthetic::SyntheticState;
        let mut st = SyntheticState::default();
        st.tick(100.0, 0.5);
        let mut text = String::new();
        match which {
            0 => st.render_meminfo(&mut text),
            1 => st.render_stat(&mut text),
            2 => st.render_loadavg(&mut text),
            3 => st.render_uptime(&mut text),
            _ => st.render_netdev(&mut text),
        }
        let mut bytes = text.into_bytes();
        if !bytes.is_empty() {
            let k = idx % bytes.len();
            bytes[k] = byte;
        }
        let _ = stat::parse_apriori(&bytes);
        let _ = loadavg::parse_apriori(&bytes);
        let _ = uptime::parse_apriori(&bytes);
        let mut ifaces = Vec::new();
        let _ = netdev::parse_apriori(&bytes, &mut ifaces);
        if let Some(layout) = meminfo::Layout::learn(&bytes) {
            let _ = meminfo::parse_apriori(&bytes, &layout);
        }
    }
}

#[test]
fn wire_decoder_never_panics_on_fuzzed_compressed_input() {
    use cwx_util::compress::{compress, decompress};
    // take a valid compressed buffer and flip every byte position once
    let original = b"CWX1 node=1 seq=2 t=3.0\nmem.free=12345\nload.one=0.5\n";
    let packed = compress(original);
    for i in 0..packed.len() {
        for delta in [1u8, 0x80] {
            let mut corrupted = packed.clone();
            corrupted[i] = corrupted[i].wrapping_add(delta);
            let _ = decompress(&corrupted); // must never panic
        }
    }
}
