//! Simulated cluster-node hardware.
//!
//! The paper's management plane observes nodes through two channels:
//! software counters in `/proc` (gathered by the ClusterWorX agent) and
//! physical probes wired into the ICE Box (temperature, power, reset).
//! This crate is the *thing being observed*: a behavioural model of one
//! compute node with
//!
//! * a power state driven externally (the ICE Box relay),
//! * a CPU activity model ([`Workload`]) that feeds the node's synthetic
//!   `/proc` ([`cwx_proc::SyntheticState`]),
//! * a first-order thermal model — CPU temperature relaxes toward a
//!   target set by ambient, utilisation, and fan health — so that the
//!   paper's flagship event-engine scenario ("powering down a node on
//!   CPU fan failure to prevent the CPU from burning") plays out
//!   physically,
//! * fault injection ([`Fault`]) for fans, power supplies, and kernel
//!   panics, and
//! * a serial console the node prints to (drained into the ICE Box 16 KiB
//!   capture buffers by the integration layer).

#![warn(missing_docs)]

pub mod fleet;
pub mod node;
pub mod workload;

pub use node::{Fault, HealthState, HwEvent, NodeHardware, PowerState, ThermalConfig};
pub use workload::Workload;

/// Identifies a node within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}
