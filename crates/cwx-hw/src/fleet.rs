//! Parallel fleet stepping with a deterministic merge.
//!
//! The hardware integration step is embarrassingly parallel — each node
//! evolves its own thermal/workload state from its own RNG — but the
//! simulation demands bit-for-bit reproducibility regardless of how many
//! worker threads run it. [`step_fleet`] delivers both: nodes are split
//! into contiguous index shards, each shard is stepped on its own scoped
//! thread, and the per-shard outputs are concatenated in shard order,
//! which (because shards are contiguous and in-order) *is* node-id
//! order. The caller then applies outputs single-threaded, so handler
//! semantics never see concurrency.

/// Step every item, optionally across `shards` scoped threads, and
/// return the non-`None` outputs tagged with their item index, in index
/// order — identical for every shard count.
///
/// `shards <= 1` runs inline with no thread setup cost.
pub fn step_fleet<T, Out, F>(items: &mut [T], shards: usize, step: F) -> Vec<(u32, Out)>
where
    T: Send,
    Out: Send,
    F: Fn(u32, &mut T) -> Option<Out> + Sync,
{
    let n = items.len();
    if shards <= 1 || n < 2 {
        let mut out = Vec::new();
        for (i, item) in items.iter_mut().enumerate() {
            if let Some(o) = step(i as u32, item) {
                out.push((i as u32, o));
            }
        }
        return out;
    }
    let shards = shards.min(n);
    let chunk = n.div_ceil(shards);
    let step = &step;
    let per_shard: Vec<Vec<(u32, Out)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(k, slice)| {
                let base = (k * chunk) as u32;
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    for (j, item) in slice.iter_mut().enumerate() {
                        let id = base + j as u32;
                        if let Some(o) = step(id, item) {
                            out.push((id, o));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet shard panicked"))
            .collect()
    })
    .expect("fleet scope panicked");
    per_shard.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_sharded_agree_exactly() {
        let build = || (0u64..103).collect::<Vec<_>>();
        let step = |i: u32, v: &mut u64| {
            *v = v.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            (!v.is_multiple_of(3)).then_some(*v)
        };
        let mut a = build();
        let inline = step_fleet(&mut a, 1, step);
        for shards in [2, 3, 4, 7, 64, 200] {
            let mut b = build();
            let sharded = step_fleet(&mut b, shards, step);
            assert_eq!(inline, sharded, "shards={shards}");
            assert_eq!(a, b, "mutations differ at shards={shards}");
        }
    }

    #[test]
    fn outputs_are_in_index_order() {
        let mut items = vec![0u8; 1000];
        let out = step_fleet(&mut items, 8, |i, _| Some(i));
        let ids: Vec<u32> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_fleets() {
        let mut none: Vec<u8> = Vec::new();
        assert!(step_fleet(&mut none, 4, |_, _| Some(())).is_empty());
        let mut one = vec![5u8];
        assert_eq!(
            step_fleet(&mut one, 4, |i, v| Some((i, *v))),
            vec![(0, (0, 5))]
        );
    }
}
