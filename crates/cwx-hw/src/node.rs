//! The behavioural model of one compute node.

use cwx_proc::synthetic::SyntheticProc;
use rand::rngs::StdRng;
use rand::Rng;

use crate::workload::Workload;
use crate::NodeId;

/// Power relay state (controlled by the ICE Box).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Outlet off.
    Off,
    /// Outlet energized.
    On,
}

/// Physical health of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// All components nominal.
    Healthy,
    /// CPU fan has stopped; temperature will climb under load.
    FanFailed,
    /// Power supply has failed; the node is dark regardless of the relay.
    PsuFailed,
    /// The kernel panicked; the node spews console output and stops
    /// updating /proc, but stays warm.
    Panicked,
    /// The CPU exceeded its damage threshold. Permanent until repaired —
    /// the failure mode the event engine exists to prevent.
    Burned,
}

/// Faults the experiment driver can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Stop the CPU fan.
    FanFailure,
    /// Kill the power supply.
    PsuFailure,
    /// Panic the kernel.
    KernelPanic,
    /// A runaway process starts leaking memory; untreated it exhausts
    /// RAM, then swap, then the node OOM-panics.
    MemoryLeak,
}

/// Observable happenings produced while advancing the model.
#[derive(Debug, Clone, PartialEq)]
pub enum HwEvent {
    /// Bytes appeared on the serial console.
    Console(String),
    /// CPU crossed the damage threshold and is now ruined.
    CpuBurned {
        /// Temperature at the moment of damage.
        temp_c: f64,
    },
}

/// Thermal/electrical constants for a node.
#[derive(Debug, Clone, Copy)]
pub struct ThermalConfig {
    /// Machine-room ambient, °C.
    pub ambient_c: f64,
    /// Added °C at 100% utilisation with a working fan.
    pub util_heating_c: f64,
    /// Added °C when the fan is dead (on top of utilisation heating).
    pub no_fan_heating_c: f64,
    /// Relaxation time constant, seconds.
    pub tau_secs: f64,
    /// Temperature at which the CPU is permanently damaged, °C.
    pub burn_threshold_c: f64,
    /// Nominal fan speed, RPM.
    pub fan_nominal_rpm: f64,
    /// Idle power draw, watts.
    pub idle_watts: f64,
    /// Additional draw at 100% utilisation, watts.
    pub load_watts: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            ambient_c: 22.0,
            util_heating_c: 30.0,
            no_fan_heating_c: 48.0,
            tau_secs: 45.0,
            burn_threshold_c: 95.0,
            fan_nominal_rpm: 6000.0,
            idle_watts: 85.0,
            load_watts: 125.0,
        }
    }
}

/// One simulated compute node.
#[derive(Debug)]
pub struct NodeHardware {
    id: NodeId,
    config: ThermalConfig,
    power: PowerState,
    health: HealthState,
    workload: Workload,
    workload_state: f64,
    cpu_temp_c: f64,
    util: f64,
    booted: bool,
    /// kB leaked so far by a runaway process (see [`Fault::MemoryLeak`]).
    leak_kb: u64,
    leaking: bool,
    proc_: SyntheticProc,
    /// seconds of simulated life (drives workload phase)
    age_secs: f64,
}

impl NodeHardware {
    /// A healthy, powered-off node.
    pub fn new(id: NodeId, config: ThermalConfig, workload: Workload) -> Self {
        let proc_ = SyntheticProc::default();
        NodeHardware {
            id,
            config,
            power: PowerState::Off,
            health: HealthState::Healthy,
            workload,
            workload_state: 0.0,
            cpu_temp_c: config.ambient_c,
            util: 0.0,
            booted: false,
            leak_kb: 0,
            leaking: false,
            proc_,
            age_secs: 0.0,
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current power relay state.
    pub fn power(&self) -> PowerState {
        self.power
    }

    /// Current health.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Whether the OS has finished booting and the agent is running.
    /// (Set by the boot model in `cwx-bios` via [`NodeHardware::set_booted`].)
    pub fn is_up(&self) -> bool {
        self.booted
            && self.power == PowerState::On
            && matches!(self.health, HealthState::Healthy | HealthState::FanFailed)
    }

    /// Mark the OS as up (the boot sequence completed) or down.
    pub fn set_booted(&mut self, booted: bool) {
        self.booted = booted;
        if booted {
            self.proc_.with_state(|s| s.uptime_secs = 0.0);
        }
    }

    /// The node's synthetic /proc (what the monitoring agent reads).
    pub fn proc_fs(&self) -> &SyntheticProc {
        &self.proc_
    }

    /// Append a canonical byte encoding of the node's complete state to
    /// `out` — every field, floats as exact IEEE-754 bit patterns.
    ///
    /// Two nodes that evolved through the same deterministic history
    /// encode identically; the snapshot subsystem compares these bytes
    /// to verify a resumed replay landed on the same hardware state.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use cwx_util::snapshot::{put_f64, put_str, put_u64};
        put_u64(out, self.id.0 as u64);
        put_str(out, &format!("{:?}", self.config));
        put_str(out, &format!("{:?}", self.power));
        put_str(out, &format!("{:?}", self.health));
        put_str(out, &format!("{:?}", self.workload));
        put_f64(out, self.workload_state);
        put_f64(out, self.cpu_temp_c);
        put_f64(out, self.util);
        out.push(self.booted as u8);
        put_u64(out, self.leak_kb);
        out.push(self.leaking as u8);
        put_str(out, &format!("{:?}", self.proc_));
        put_f64(out, self.age_secs);
    }

    /// Instantaneous CPU utilisation, `[0,1]`.
    pub fn utilization(&self) -> f64 {
        self.util
    }

    /// Replace the workload model (e.g. when a scheduler places a job).
    pub fn set_workload(&mut self, w: Workload) {
        self.workload = w;
    }

    // ---- probe surface (what the ICE Box measures) ----

    /// CPU temperature probe, °C.
    pub fn temperature_c(&self) -> f64 {
        self.cpu_temp_c
    }

    /// Fan tachometer, RPM.
    pub fn fan_rpm(&self) -> f64 {
        match self.health {
            HealthState::FanFailed | HealthState::Burned => 0.0,
            _ if self.power == PowerState::Off || matches!(self.health, HealthState::PsuFailed) => {
                0.0
            }
            _ => self.config.fan_nominal_rpm,
        }
    }

    /// Power draw probe, watts.
    pub fn power_watts(&self) -> f64 {
        if self.power == PowerState::Off
            || matches!(self.health, HealthState::PsuFailed | HealthState::Burned)
        {
            return 0.0;
        }
        self.config.idle_watts + self.config.load_watts * self.util
    }

    // ---- control surface (what the ICE Box relay/reset do) ----

    /// Energize or cut the outlet. Cutting power drops the OS.
    pub fn set_power(&mut self, p: PowerState) {
        if p == self.power {
            return;
        }
        self.power = p;
        if p == PowerState::Off {
            self.booted = false;
            self.util = 0.0;
            self.leaking = false;
            self.leak_kb = 0;
            // a kernel panic is software state: cutting power clears it
            if self.health == HealthState::Panicked {
                self.health = HealthState::Healthy;
            }
        }
    }

    /// Hardware reset line: drops the OS without cutting power. A
    /// panicked node recovers through reboot; a burned one does not.
    pub fn reset(&mut self) {
        self.booted = false;
        self.util = 0.0;
        self.leaking = false;
        self.leak_kb = 0;
        if self.health == HealthState::Panicked {
            self.health = HealthState::Healthy;
        }
    }

    /// Replace failed parts (fan/PSU/CPU) — a technician visit. The node
    /// is left powered off and healthy.
    pub fn repair(&mut self) {
        self.health = HealthState::Healthy;
        self.power = PowerState::Off;
        self.booted = false;
        self.cpu_temp_c = self.config.ambient_c;
        self.util = 0.0;
    }

    /// Inject a fault.
    pub fn inject(&mut self, fault: Fault) -> Vec<HwEvent> {
        match fault {
            Fault::FanFailure => {
                if self.health == HealthState::Healthy {
                    self.health = HealthState::FanFailed;
                }
                vec![]
            }
            Fault::PsuFailure => {
                self.health = HealthState::PsuFailed;
                self.booted = false;
                self.util = 0.0;
                vec![]
            }
            Fault::MemoryLeak => {
                if self.is_up() {
                    self.leaking = true;
                }
                vec![]
            }
            Fault::KernelPanic => {
                let mut events = Vec::new();
                if self.is_up() {
                    self.health = HealthState::Panicked;
                    self.booted = false;
                    events.push(HwEvent::Console(format!(
                        "Oops: kernel NULL pointer dereference on {id}\nEIP: 0010:[<c01263ba>]\nKernel panic: Attempted to kill init!\n",
                        id = self.id
                    )));
                }
                events
            }
        }
    }

    /// Advance the physical model by `dt_secs`.
    pub fn advance(&mut self, dt_secs: f64, rng: &mut StdRng) -> Vec<HwEvent> {
        let mut events = Vec::new();
        self.age_secs += dt_secs;

        // utilisation only while the OS runs
        self.util = if self.is_up() {
            self.workload
                .sample(self.age_secs, dt_secs, &mut self.workload_state, rng)
        } else {
            0.0
        };

        // thermal relaxation toward target
        let powered = self.power == PowerState::On
            && !matches!(self.health, HealthState::PsuFailed | HealthState::Burned);
        let target = if powered {
            let mut t = self.config.ambient_c + 8.0 + self.config.util_heating_c * self.util;
            if matches!(self.health, HealthState::FanFailed) {
                t += self.config.no_fan_heating_c;
            }
            t
        } else {
            self.config.ambient_c
        };
        let alpha = 1.0 - (-dt_secs / self.config.tau_secs).exp();
        self.cpu_temp_c += (target - self.cpu_temp_c) * alpha;
        // sensor noise
        self.cpu_temp_c += (rng.random::<f64>() - 0.5) * 0.2;

        if powered && self.cpu_temp_c >= self.config.burn_threshold_c {
            self.health = HealthState::Burned;
            self.booted = false;
            self.util = 0.0;
            events.push(HwEvent::CpuBurned {
                temp_c: self.cpu_temp_c,
            });
            events.push(HwEvent::Console(format!(
                "CPU0: Temperature above threshold, CPU halted ({:.1} C)\n",
                self.cpu_temp_c
            )));
        }

        // a leaking process claims ~0.7% of RAM per second
        if self.is_up() && self.leaking {
            let total = self.proc_.with_state(|s| s.mem_total_kb);
            self.leak_kb += (total as f64 * 0.007 * dt_secs) as u64;
        }

        // feed /proc
        if self.is_up() {
            let util = self.util;
            let leak_kb = self.leak_kb;
            let mut oom = false;
            self.proc_.with_state(|s| {
                s.tick(dt_secs, util);
                // load average chases utilisation * cpus with 1-min lag
                let ncpu = s.cpus.len() as f64;
                let target = util * ncpu;
                let a1 = 1.0 - (-dt_secs / 60.0).exp();
                s.load_one += (target - s.load_one) * a1;
                let a5 = 1.0 - (-dt_secs / 300.0).exp();
                s.load_five += (target - s.load_five) * a5;
                let a15 = 1.0 - (-dt_secs / 900.0).exp();
                s.load_fifteen += (target - s.load_fifteen) * a15;
                // memory tracks utilisation loosely, plus any leak
                let used_target = 0.15 + 0.7 * util;
                let used = (s.mem_total_kb as f64 * used_target) as u64 + leak_kb;
                if used <= s.mem_total_kb {
                    s.mem_free_kb = s.mem_total_kb - used;
                    s.swap_free_kb = s.swap_total_kb;
                } else {
                    // RAM exhausted: the spill lands in swap
                    s.mem_free_kb = 0;
                    let spill = used - s.mem_total_kb;
                    if spill >= s.swap_total_kb {
                        s.swap_free_kb = 0;
                        oom = true;
                    } else {
                        s.swap_free_kb = s.swap_total_kb - spill;
                    }
                }
                s.procs_running = 1 + (util * 4.0) as u64;
                // parallel jobs chatter on the interconnect roughly in
                // proportion to their compute (MPI halo exchanges)
                if let Some(eth) = s.interfaces.iter_mut().find(|i| i.name == "eth0") {
                    let bytes = (dt_secs * (2_000.0 + 2_000_000.0 * util)) as u64;
                    let pkts = bytes / 900;
                    eth.rx_bytes += bytes;
                    eth.tx_bytes += bytes * 9 / 10;
                    eth.rx_packets += pkts;
                    eth.tx_packets += pkts * 9 / 10;
                }
            });
            if oom {
                // swap exhausted: the kernel OOM-panics
                self.health = HealthState::Panicked;
                self.booted = false;
                self.util = 0.0;
                self.leaking = false;
                self.leak_kb = 0;
                events.push(HwEvent::Console(format!(
                    "Out of Memory: Killed process 4711 (simulated).\nKernel panic: Out of memory and no killable processes on {id}\n",
                    id = self.id
                )));
            }
        }

        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::rng::rng;

    fn node(w: Workload) -> NodeHardware {
        NodeHardware::new(NodeId(0), ThermalConfig::default(), w)
    }

    fn boot(n: &mut NodeHardware) {
        n.set_power(PowerState::On);
        n.set_booted(true);
    }

    #[test]
    fn off_node_is_cold_and_dark() {
        let mut n = node(Workload::Constant(1.0));
        let mut r = rng(1);
        for _ in 0..100 {
            n.advance(10.0, &mut r);
        }
        assert_eq!(n.power_watts(), 0.0);
        assert_eq!(n.fan_rpm(), 0.0);
        assert!((n.temperature_c() - 22.0).abs() < 2.0);
        assert!(!n.is_up());
    }

    #[test]
    fn loaded_node_warms_up_but_stays_safe_with_fan() {
        let mut n = node(Workload::Constant(1.0));
        boot(&mut n);
        let mut r = rng(1);
        for _ in 0..600 {
            n.advance(1.0, &mut r);
        }
        let t = n.temperature_c();
        assert!(t > 50.0, "hot under load: {t}");
        assert!(t < 70.0, "but safe with a working fan: {t}");
        assert_eq!(n.health(), HealthState::Healthy);
        assert!(n.power_watts() > 150.0);
    }

    #[test]
    fn fan_failure_under_load_burns_cpu_if_ignored() {
        let mut n = node(Workload::Constant(1.0));
        boot(&mut n);
        let mut r = rng(1);
        for _ in 0..300 {
            n.advance(1.0, &mut r);
        }
        n.inject(Fault::FanFailure);
        assert_eq!(n.fan_rpm(), 0.0);
        let mut burned = false;
        for _ in 0..600 {
            for e in n.advance(1.0, &mut r) {
                if matches!(e, HwEvent::CpuBurned { .. }) {
                    burned = true;
                }
            }
        }
        assert!(burned, "unattended fan failure must destroy the CPU");
        assert_eq!(n.health(), HealthState::Burned);
        assert!(!n.is_up());
    }

    #[test]
    fn power_down_after_fan_failure_saves_cpu() {
        let mut n = node(Workload::Constant(1.0));
        boot(&mut n);
        let mut r = rng(1);
        for _ in 0..300 {
            n.advance(1.0, &mut r);
        }
        n.inject(Fault::FanFailure);
        // the event engine reacts after a short delay
        for _ in 0..30 {
            n.advance(1.0, &mut r);
        }
        n.set_power(PowerState::Off);
        for _ in 0..600 {
            n.advance(1.0, &mut r);
        }
        assert_eq!(
            n.health(),
            HealthState::FanFailed,
            "fan still broken but CPU alive"
        );
        assert!(n.temperature_c() < 40.0, "cooled after power-down");
    }

    #[test]
    fn psu_failure_kills_power_draw() {
        let mut n = node(Workload::Constant(0.5));
        boot(&mut n);
        n.inject(Fault::PsuFailure);
        assert_eq!(n.power_watts(), 0.0);
        assert!(!n.is_up());
    }

    #[test]
    fn panic_emits_console_and_reset_recovers() {
        let mut n = node(Workload::Constant(0.5));
        boot(&mut n);
        let events = n.inject(Fault::KernelPanic);
        assert!(matches!(&events[0], HwEvent::Console(s) if s.contains("Kernel panic")));
        assert!(!n.is_up());
        assert_eq!(n.health(), HealthState::Panicked);
        n.reset();
        assert_eq!(n.health(), HealthState::Healthy);
        n.set_booted(true);
        assert!(n.is_up());
    }

    #[test]
    fn burned_node_needs_repair_not_reset() {
        let mut n = node(Workload::Constant(1.0));
        boot(&mut n);
        let mut r = rng(1);
        n.inject(Fault::FanFailure);
        for _ in 0..1200 {
            n.advance(1.0, &mut r);
        }
        assert_eq!(n.health(), HealthState::Burned);
        n.reset();
        assert_eq!(n.health(), HealthState::Burned, "reset cannot fix hardware");
        n.repair();
        assert_eq!(n.health(), HealthState::Healthy);
        assert_eq!(n.power(), PowerState::Off);
    }

    #[test]
    fn proc_reflects_activity() {
        let mut n = node(Workload::Constant(0.8));
        boot(&mut n);
        let mut r = rng(1);
        for _ in 0..300 {
            n.advance(1.0, &mut r);
        }
        let (load, free_frac, uptime) = n.proc_fs().with_state(|s| {
            (
                s.load_one,
                s.mem_free_kb as f64 / s.mem_total_kb as f64,
                s.uptime_secs,
            )
        });
        assert!(load > 0.5, "load chases utilisation: {load}");
        assert!(free_frac < 0.5, "memory fills under load: {free_frac}");
        assert!((uptime - 300.0).abs() < 1.0);
    }

    #[test]
    fn power_cycle_resets_os_state() {
        let mut n = node(Workload::Constant(0.5));
        boot(&mut n);
        assert!(n.is_up());
        n.set_power(PowerState::Off);
        assert!(!n.is_up());
        n.set_power(PowerState::On);
        assert!(!n.is_up(), "power on does not boot the OS by itself");
    }
}

#[cfg(test)]
mod leak_tests {
    use super::*;
    use crate::workload::Workload;
    use crate::NodeId;
    use cwx_util::rng::rng;

    fn booted_node() -> NodeHardware {
        let mut n = NodeHardware::new(NodeId(0), ThermalConfig::default(), Workload::Constant(0.2));
        n.set_power(PowerState::On);
        n.set_booted(true);
        n
    }

    #[test]
    fn leak_fills_ram_then_swap_then_ooms() {
        let mut n = booted_node();
        let mut r = rng(1);
        n.inject(Fault::MemoryLeak);
        let mut saw_ram_exhausted = false;
        let mut saw_swap_pressure = false;
        let mut oomed = false;
        for _ in 0..3000 {
            for e in n.advance(1.0, &mut r) {
                if let HwEvent::Console(text) = e {
                    if text.contains("Out of Memory") {
                        oomed = true;
                    }
                }
            }
            let (free, swap_free) = n.proc_fs().with_state(|s| (s.mem_free_kb, s.swap_free_kb));
            if free == 0 {
                saw_ram_exhausted = true;
            }
            if swap_free < 2_097_152 {
                saw_swap_pressure = true;
            }
            if oomed {
                break;
            }
        }
        assert!(saw_ram_exhausted, "leak must exhaust RAM first");
        assert!(saw_swap_pressure, "then eat into swap");
        assert!(oomed, "and finally OOM-panic");
        assert_eq!(n.health(), HealthState::Panicked);
        assert!(!n.is_up());
    }

    #[test]
    fn reboot_clears_the_leak() {
        let mut n = booted_node();
        let mut r = rng(2);
        n.inject(Fault::MemoryLeak);
        for _ in 0..120 {
            n.advance(1.0, &mut r);
        }
        let free_before = n.proc_fs().with_state(|s| s.mem_free_kb);
        // power cycle: the leaking process dies with the OS
        n.set_power(PowerState::Off);
        n.set_power(PowerState::On);
        n.set_booted(true);
        for _ in 0..30 {
            n.advance(1.0, &mut r);
        }
        let free_after = n.proc_fs().with_state(|s| s.mem_free_kb);
        assert!(free_after > free_before, "{free_after} vs {free_before}");
        assert_eq!(n.health(), HealthState::Healthy);
    }

    #[test]
    fn leak_on_a_down_node_is_ignored() {
        let mut n = NodeHardware::new(NodeId(0), ThermalConfig::default(), Workload::Idle);
        assert!(n.inject(Fault::MemoryLeak).is_empty());
        let mut r = rng(3);
        for _ in 0..100 {
            n.advance(1.0, &mut r);
        }
        assert_eq!(n.health(), HealthState::Healthy);
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::workload::Workload;
    use crate::NodeId;
    use cwx_util::rng::rng;

    #[test]
    fn loaded_nodes_generate_network_traffic() {
        let mut busy =
            NodeHardware::new(NodeId(0), ThermalConfig::default(), Workload::Constant(0.9));
        let mut idle = NodeHardware::new(NodeId(1), ThermalConfig::default(), Workload::Idle);
        for n in [&mut busy, &mut idle] {
            n.set_power(PowerState::On);
            n.set_booted(true);
        }
        let mut r = rng(1);
        for _ in 0..60 {
            busy.advance(1.0, &mut r);
            idle.advance(1.0, &mut r);
        }
        let rx = |n: &NodeHardware| {
            n.proc_fs().with_state(|s| {
                s.interfaces
                    .iter()
                    .find(|i| i.name == "eth0")
                    .unwrap()
                    .rx_bytes
            })
        };
        assert!(rx(&busy) > 50_000_000, "busy node chatters: {}", rx(&busy));
        assert!(
            rx(&idle) < 1_000_000,
            "idle node mostly quiet: {}",
            rx(&idle)
        );
        assert!(rx(&busy) > rx(&idle) * 50);
    }
}
