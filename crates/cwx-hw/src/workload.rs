//! CPU activity models for simulated nodes.
//!
//! The monitoring experiments need nodes whose statistics *move*: load
//! that ramps, memory that fills, traffic that bursts. [`Workload`]
//! produces a target CPU utilisation as a function of simulated time,
//! with an optional mean-reverting noise term so no two samples are
//! identical (which matters for the consolidation experiment E7 — delta
//! encoding only pays off because *most* monitors are static while a few
//! churn).

use rand::Rng;

/// A CPU utilisation generator.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Completely idle (0%).
    Idle,
    /// Constant utilisation.
    Constant(f64),
    /// A batch job: ramp up, hold, ramp down, repeat with the given
    /// period (seconds).
    Batch {
        /// Utilisation while the job runs.
        peak: f64,
        /// Seconds of work per cycle.
        busy_secs: f64,
        /// Seconds idle between jobs.
        gap_secs: f64,
    },
    /// Mean-reverting random walk (Ornstein–Uhlenbeck style) around a
    /// mean, for background-noise nodes.
    Noisy {
        /// Long-run mean utilisation.
        mean: f64,
        /// Reversion strength per second.
        reversion: f64,
        /// Noise magnitude per step.
        sigma: f64,
    },
}

impl Workload {
    /// Utilisation target at time `t_secs`. `state` carries the walk
    /// value for [`Workload::Noisy`]; pass the same `&mut f64` across
    /// calls.
    pub fn sample(&self, t_secs: f64, dt_secs: f64, state: &mut f64, rng: &mut impl Rng) -> f64 {
        match *self {
            Workload::Idle => 0.0,
            Workload::Constant(u) => u.clamp(0.0, 1.0),
            Workload::Batch {
                peak,
                busy_secs,
                gap_secs,
            } => {
                let period = (busy_secs + gap_secs).max(1e-9);
                let phase = t_secs % period;
                if phase < busy_secs {
                    peak.clamp(0.0, 1.0)
                } else {
                    0.02 // OS housekeeping between jobs
                }
            }
            Workload::Noisy {
                mean,
                reversion,
                sigma,
            } => {
                let noise: f64 = rng.random::<f64>() - 0.5;
                *state += reversion * (mean - *state) * dt_secs + sigma * noise * dt_secs.sqrt();
                *state = state.clamp(0.0, 1.0);
                *state
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::rng::rng;

    #[test]
    fn idle_is_zero_constant_clamps() {
        let mut r = rng(1);
        let mut s = 0.0;
        assert_eq!(Workload::Idle.sample(10.0, 1.0, &mut s, &mut r), 0.0);
        assert_eq!(
            Workload::Constant(1.7).sample(0.0, 1.0, &mut s, &mut r),
            1.0
        );
        assert_eq!(
            Workload::Constant(-0.2).sample(0.0, 1.0, &mut s, &mut r),
            0.0
        );
    }

    #[test]
    fn batch_alternates_with_period() {
        let w = Workload::Batch {
            peak: 0.9,
            busy_secs: 60.0,
            gap_secs: 40.0,
        };
        let mut r = rng(1);
        let mut s = 0.0;
        assert_eq!(w.sample(10.0, 1.0, &mut s, &mut r), 0.9);
        assert_eq!(w.sample(59.0, 1.0, &mut s, &mut r), 0.9);
        assert!(w.sample(70.0, 1.0, &mut s, &mut r) < 0.1);
        // next cycle
        assert_eq!(w.sample(110.0, 1.0, &mut s, &mut r), 0.9);
    }

    #[test]
    fn noisy_stays_in_bounds_and_reverts_to_mean() {
        let w = Workload::Noisy {
            mean: 0.4,
            reversion: 0.5,
            sigma: 0.3,
        };
        let mut r = rng(7);
        let mut s = 0.0;
        let mut sum = 0.0;
        let n = 5000;
        for i in 0..n {
            let u = w.sample(i as f64, 1.0, &mut s, &mut r);
            assert!((0.0..=1.0).contains(&u));
            if i > 100 {
                sum += u;
            }
        }
        let mean = sum / (n - 101) as f64;
        assert!((mean - 0.4).abs() < 0.1, "long-run mean {mean}");
    }

    #[test]
    fn noisy_is_deterministic_per_seed() {
        let w = Workload::Noisy {
            mean: 0.5,
            reversion: 0.3,
            sigma: 0.2,
        };
        let run = |seed| {
            let mut r = rng(seed);
            let mut s = 0.0;
            (0..100)
                .map(|i| w.sample(i as f64, 1.0, &mut s, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
