//! The ClusterWorX event and notification engine (paper §5.2).
//!
//! "When cluster problems arise, administrators can customize ClusterWorX
//! to automatically take action, e.g. power down, reboot, or halt any
//! malfunctioning node. This is accomplished through an event engine
//! that allows administrators to set thresholds on any value monitored.
//! ... If the administrator-defined threshold is exceeded, ClusterWorX
//! automatically triggers an action."
//!
//! And the notification algebra: "Using a smart notification algorithm,
//! ClusterWorX notifies administrators of problems without swamping them
//! with unnecessary e-mails. ... Only one email is sent per triggered
//! event, even if multiple nodes are involved. If a node is fixed by an
//! administrator but fails again later, the event re-fires
//! automatically, without administrative interventions."
//!
//! * [`engine`] — threshold rules over monitor values, per-(event, node)
//!   trigger state with hysteresis, automatic re-arm on recovery, and
//!   the action to take ([`Action`]).
//! * [`notify`] — the episode-based mailer: one email per triggered
//!   event per episode regardless of node count, new episode (and new
//!   email) after recovery.

#![warn(missing_docs)]

pub mod engine;
pub mod notify;

pub use engine::{
    Action, ClusterEventId, Comparison, EventDef, EventEngine, EventId, Firing, Threshold,
};
pub use notify::{Email, Notifier, StormPolicy};
