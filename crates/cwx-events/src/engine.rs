//! Threshold evaluation and trigger state.

use std::collections::BTreeMap;

use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::SimTime;

/// Identifies an event definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

/// An event id qualified by the cluster it fired in — what a federation
/// head records, so merged fan-in logs stay unambiguous when the same
/// rule fires in several clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterEventId {
    /// Originating cluster.
    pub cluster: u16,
    /// Event id within that cluster.
    pub event: EventId,
}

impl std::fmt::Display for ClusterEventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{:03}/e{}", self.cluster, self.event.0)
    }
}

/// Threshold comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Fire when the value exceeds the threshold.
    GreaterThan,
    /// Fire when the value drops below the threshold.
    LessThan,
    /// Fire when the value equals the threshold (within 1e-9).
    Equal,
}

/// A threshold on a monitored value.
#[derive(Debug, Clone, PartialEq)]
pub struct Threshold {
    /// Which monitor the rule watches.
    pub monitor: MonitorKey,
    /// Operator.
    pub cmp: Comparison,
    /// Threshold value.
    pub value: f64,
    /// Hysteresis band for clearing: a `GreaterThan 90` rule with
    /// hysteresis 5 fires above 90 and clears below 85, preventing
    /// flapping.
    pub hysteresis: f64,
}

impl Threshold {
    /// Does `x` trip the rule?
    pub fn fires(&self, x: f64) -> bool {
        match self.cmp {
            Comparison::GreaterThan => x > self.value,
            Comparison::LessThan => x < self.value,
            Comparison::Equal => (x - self.value).abs() < 1e-9,
        }
    }

    /// Has `x` receded far enough to re-arm?
    pub fn clears(&self, x: f64) -> bool {
        match self.cmp {
            Comparison::GreaterThan => x <= self.value - self.hysteresis,
            Comparison::LessThan => x >= self.value + self.hysteresis,
            Comparison::Equal => (x - self.value).abs() >= 1e-9 + self.hysteresis,
        }
    }
}

/// What the engine does when an event fires. "Default actions include
/// node power down and node reboot"; plug-in actions cover "shell
/// scripts, perl scripts, symbolic links, programs, and more".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Notify only.
    None,
    /// Power the node down through the ICE Box.
    PowerDown,
    /// Power-cycle the node.
    Reboot,
    /// Halt the OS (leave power on).
    Halt,
    /// Run an administrator-defined plug-in by name.
    Plugin(String),
}

impl Action {
    /// Short label for audit trails and dashboards.
    pub fn label(&self) -> &str {
        match self {
            Action::None => "none",
            Action::PowerDown => "power-down",
            Action::Reboot => "reboot",
            Action::Halt => "halt",
            Action::Plugin(name) => name,
        }
    }

    /// Whether the action drives the chassis power relays (and therefore
    /// must be gated on a scheduler drain when the node is allocated).
    pub fn is_power(&self) -> bool {
        matches!(self, Action::PowerDown | Action::Reboot)
    }

    /// Whether the action is meaningless against a node whose outlet is
    /// already dark. Every real variant qualifies: cutting or cycling
    /// power is redundant, and neither a halt nor a plug-in script can
    /// reach an OS that is not running. Only `None` (notify-only) has
    /// nothing to suppress.
    pub fn noop_when_off(&self) -> bool {
        !matches!(self, Action::None)
    }
}

/// An administrator-defined event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDef {
    /// Id.
    pub id: EventId,
    /// Human name (appears in notifications).
    pub name: String,
    /// The rule.
    pub threshold: Threshold,
    /// Action taken automatically on firing.
    pub action: Action,
    /// Whether the administrator wants an email.
    pub notify: bool,
}

/// A fired event instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// Which event.
    pub event: EventId,
    /// Which node.
    pub node: u32,
    /// When.
    pub time: SimTime,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// Action to execute.
    pub action: Action,
}

/// A cleared (recovered) event instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clearing {
    /// Which event.
    pub event: EventId,
    /// Which node.
    pub node: u32,
}

/// The evaluation engine.
#[derive(Debug, Default)]
pub struct EventEngine {
    defs: Vec<EventDef>,
    /// (event, node) pairs currently triggered
    triggered: BTreeMap<(EventId, u32), f64>,
    firings: u64,
    clearings: u64,
}

impl EventEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn add(&mut self, def: EventDef) {
        self.defs.push(def);
    }

    /// Remove a rule; clears its trigger state. Returns true if found.
    pub fn remove(&mut self, id: EventId) -> bool {
        let before = self.defs.len();
        self.defs.retain(|d| d.id != id);
        self.triggered.retain(|(e, _), _| *e != id);
        self.defs.len() != before
    }

    /// Registered rules.
    pub fn defs(&self) -> &[EventDef] {
        &self.defs
    }

    /// Total firings / clearings so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.firings, self.clearings)
    }

    /// Is `(event, node)` currently triggered?
    pub fn is_triggered(&self, event: EventId, node: u32) -> bool {
        self.triggered.contains_key(&(event, node))
    }

    /// Feed one observed value; returns any state transitions.
    pub fn observe(
        &mut self,
        now: SimTime,
        node: u32,
        key: &MonitorKey,
        value: f64,
    ) -> (Vec<Firing>, Vec<Clearing>) {
        let mut fired = Vec::new();
        let mut cleared = Vec::new();
        for def in &self.defs {
            if def.threshold.monitor != *key {
                continue;
            }
            let state_key = (def.id, node);
            let active = self.triggered.contains_key(&state_key);
            if !active && def.threshold.fires(value) {
                self.triggered.insert(state_key, value);
                self.firings += 1;
                fired.push(Firing {
                    event: def.id,
                    node,
                    time: now,
                    value,
                    action: def.action.clone(),
                });
            } else if active && def.threshold.clears(value) {
                self.triggered.remove(&state_key);
                self.clearings += 1;
                cleared.push(Clearing {
                    event: def.id,
                    node,
                });
            }
        }
        (fired, cleared)
    }

    /// Forget all trigger state for a node (it was powered down or
    /// removed); returns clearings for episode bookkeeping.
    pub fn forget_node(&mut self, node: u32) -> Vec<Clearing> {
        let keys: Vec<(EventId, u32)> = self
            .triggered
            .keys()
            .filter(|(_, n)| *n == node)
            .copied()
            .collect();
        let mut out = Vec::new();
        for k in keys {
            self.triggered.remove(&k);
            self.clearings += 1;
            out.push(Clearing { event: k.0, node });
        }
        out
    }
}

/// The canonical rule set the paper motivates: overheat protection,
/// fan-failure power-down, overload notification, dead-network alarm.
pub fn default_rules() -> Vec<EventDef> {
    vec![
        EventDef {
            id: EventId(1),
            name: "cpu-overtemp".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("temp.cpu"),
                cmp: Comparison::GreaterThan,
                value: 75.0,
                hysteresis: 10.0,
            },
            action: Action::PowerDown,
            notify: true,
        },
        EventDef {
            id: EventId(2),
            name: "cpu-fan-failure".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("fan.cpu_rpm"),
                cmp: Comparison::LessThan,
                value: 1000.0,
                hysteresis: 500.0,
            },
            action: Action::PowerDown,
            notify: true,
        },
        EventDef {
            id: EventId(3),
            name: "load-too-high".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("load.one"),
                cmp: Comparison::GreaterThan,
                value: 8.0,
                hysteresis: 2.0,
            },
            action: Action::None,
            notify: true,
        },
        EventDef {
            id: EventId(6),
            name: "swap-pressure".into(),
            threshold: Threshold {
                // a healthy node never touches swap; serious swap use
                // means runaway memory — warn the administrator before
                // the OOM killer decides for them
                monitor: MonitorKey::new("swap.free"),
                cmp: Comparison::LessThan,
                value: 1_048_576.0, // half of the 2 GiB swap gone
                hysteresis: 524_288.0,
            },
            action: Action::None,
            notify: true,
        },
        EventDef {
            id: EventId(5),
            name: "psu-failure".into(),
            threshold: Threshold {
                // "The power probe is used to detect failing power
                // supplies": a relay that is on but draws nothing means
                // the supply is dead.
                monitor: MonitorKey::new("power.watts"),
                cmp: Comparison::LessThan,
                value: 20.0,
                hysteresis: 20.0,
            },
            action: Action::PowerDown,
            notify: true,
        },
        EventDef {
            id: EventId(4),
            name: "network-unreachable".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("net.connectivity"),
                cmp: Comparison::LessThan,
                value: 0.5,
                hysteresis: 0.0,
            },
            action: Action::Reboot,
            notify: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> SimTime {
        SimTime::ZERO
    }

    fn temp_rule() -> EventDef {
        EventDef {
            id: EventId(1),
            name: "overtemp".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("temp.cpu"),
                cmp: Comparison::GreaterThan,
                value: 75.0,
                hysteresis: 10.0,
            },
            action: Action::PowerDown,
            notify: true,
        }
    }

    #[test]
    fn fires_once_above_threshold() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        let (f, _) = e.observe(t(), 3, &key, 70.0);
        assert!(f.is_empty());
        let (f, _) = e.observe(t(), 3, &key, 80.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].action, Action::PowerDown);
        assert_eq!(f[0].node, 3);
        // stays triggered, no duplicate firing
        let (f, _) = e.observe(t(), 3, &key, 85.0);
        assert!(f.is_empty());
        assert!(e.is_triggered(EventId(1), 3));
    }

    #[test]
    fn hysteresis_governs_clearing() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        e.observe(t(), 1, &key, 80.0);
        // inside the hysteresis band: still triggered
        let (_, c) = e.observe(t(), 1, &key, 70.0);
        assert!(c.is_empty());
        assert!(e.is_triggered(EventId(1), 1));
        // below value - hysteresis: clears
        let (_, c) = e.observe(t(), 1, &key, 64.0);
        assert_eq!(c.len(), 1);
        assert!(!e.is_triggered(EventId(1), 1));
    }

    #[test]
    fn refires_after_recovery() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        assert_eq!(e.observe(t(), 1, &key, 80.0).0.len(), 1);
        assert_eq!(e.observe(t(), 1, &key, 60.0).1.len(), 1);
        // "fails again later, the event re-fires automatically"
        assert_eq!(e.observe(t(), 1, &key, 80.0).0.len(), 1);
        assert_eq!(e.counts(), (2, 1));
    }

    #[test]
    fn per_node_state_is_independent() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        assert_eq!(e.observe(t(), 1, &key, 80.0).0.len(), 1);
        assert_eq!(e.observe(t(), 2, &key, 80.0).0.len(), 1);
        assert!(e.is_triggered(EventId(1), 1));
        assert!(e.is_triggered(EventId(1), 2));
        e.observe(t(), 1, &key, 60.0);
        assert!(!e.is_triggered(EventId(1), 1));
        assert!(e.is_triggered(EventId(1), 2));
    }

    #[test]
    fn less_than_rules() {
        let mut e = EventEngine::new();
        e.add(EventDef {
            id: EventId(2),
            name: "fan-dead".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("fan.cpu_rpm"),
                cmp: Comparison::LessThan,
                value: 1000.0,
                hysteresis: 500.0,
            },
            action: Action::PowerDown,
            notify: true,
        });
        let key = MonitorKey::new("fan.cpu_rpm");
        assert!(e.observe(t(), 1, &key, 6000.0).0.is_empty());
        assert_eq!(e.observe(t(), 1, &key, 0.0).0.len(), 1);
        // needs to exceed value + hysteresis to clear
        assert!(e.observe(t(), 1, &key, 1200.0).1.is_empty());
        assert_eq!(e.observe(t(), 1, &key, 1600.0).1.len(), 1);
    }

    #[test]
    fn equal_rule_with_epsilon() {
        let th = Threshold {
            monitor: MonitorKey::new("x"),
            cmp: Comparison::Equal,
            value: 1.0,
            hysteresis: 0.0,
        };
        assert!(th.fires(1.0));
        assert!(!th.fires(1.1));
        assert!(th.clears(1.1));
    }

    #[test]
    fn unrelated_monitors_are_ignored() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let (f, c) = e.observe(t(), 1, &MonitorKey::new("mem.free"), 0.0);
        assert!(f.is_empty() && c.is_empty());
    }

    #[test]
    fn plugin_actions_carry_their_name() {
        let mut e = EventEngine::new();
        e.add(EventDef {
            id: EventId(9),
            name: "custom".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("site.queue_depth"),
                cmp: Comparison::GreaterThan,
                value: 100.0,
                hysteresis: 0.0,
            },
            action: Action::Plugin("drain-queue.sh".into()),
            notify: false,
        });
        let f = e
            .observe(t(), 1, &MonitorKey::new("site.queue_depth"), 200.0)
            .0;
        assert_eq!(f[0].action, Action::Plugin("drain-queue.sh".into()));
    }

    #[test]
    fn forget_node_clears_state() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        e.observe(t(), 1, &key, 80.0);
        e.observe(t(), 2, &key, 80.0);
        let cleared = e.forget_node(1);
        assert_eq!(cleared.len(), 1);
        assert!(!e.is_triggered(EventId(1), 1));
        assert!(e.is_triggered(EventId(1), 2));
    }

    #[test]
    fn forget_node_returns_one_clearing_per_triggered_rule() {
        let mut e = EventEngine::new();
        for r in default_rules() {
            e.add(r);
        }
        // node 3 trips both the overtemp and fan rules
        e.observe(t(), 3, &MonitorKey::new("temp.cpu"), 90.0);
        e.observe(t(), 3, &MonitorKey::new("fan.cpu_rpm"), 200.0);
        let (f0, c0) = e.counts();
        assert_eq!(f0, 2);
        let cleared = e.forget_node(3);
        assert_eq!(cleared.len(), 2, "one Clearing per triggered rule");
        let mut events: Vec<EventId> = cleared.iter().map(|c| c.event).collect();
        events.sort();
        assert_eq!(events, vec![EventId(1), EventId(2)]);
        assert!(cleared.iter().all(|c| c.node == 3));
        assert_eq!(e.counts(), (f0, c0 + 2), "clearings counted as episodes");
        // forgetting again is an idempotent no-op
        assert!(e.forget_node(3).is_empty());
        assert_eq!(e.counts(), (f0, c0 + 2));
    }

    #[test]
    fn forget_node_rearms_the_rules_for_that_node() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        let key = MonitorKey::new("temp.cpu");
        e.observe(t(), 1, &key, 80.0);
        assert!(e.observe(t(), 1, &key, 82.0).0.is_empty(), "still latched");
        e.forget_node(1);
        // the same over-threshold value fires afresh after the forget —
        // the node rebooted, so its episode history must not suppress it
        assert_eq!(e.observe(t(), 1, &key, 82.0).0.len(), 1);
    }

    #[test]
    fn action_metadata_classifies_the_variants() {
        assert!(Action::PowerDown.is_power());
        assert!(Action::Reboot.is_power());
        assert!(!Action::Halt.is_power());
        assert!(!Action::Plugin("x.sh".into()).is_power());
        assert!(!Action::None.is_power());
        // everything except notify-only is a no-op against a dark node
        assert!(Action::PowerDown.noop_when_off());
        assert!(Action::Reboot.noop_when_off());
        assert!(Action::Halt.noop_when_off());
        assert!(Action::Plugin("x.sh".into()).noop_when_off());
        assert!(!Action::None.noop_when_off());
        assert_eq!(Action::Plugin("clean.sh".into()).label(), "clean.sh");
        assert_eq!(Action::Reboot.label(), "reboot");
    }

    #[test]
    fn remove_rule() {
        let mut e = EventEngine::new();
        e.add(temp_rule());
        e.observe(t(), 1, &MonitorKey::new("temp.cpu"), 80.0);
        assert!(e.remove(EventId(1)));
        assert!(!e.remove(EventId(1)));
        assert!(!e.is_triggered(EventId(1), 1));
        assert!(e
            .observe(t(), 1, &MonitorKey::new("temp.cpu"), 90.0)
            .0
            .is_empty());
    }

    #[test]
    fn default_rules_cover_the_papers_scenarios() {
        let rules = default_rules();
        assert!(rules
            .iter()
            .any(|r| r.name == "cpu-fan-failure" && r.action == Action::PowerDown));
        assert!(rules
            .iter()
            .any(|r| r.name == "cpu-overtemp" && r.action == Action::PowerDown));
        assert!(rules.iter().any(|r| r.name == "load-too-high"));
        assert!(rules
            .iter()
            .any(|r| r.name == "psu-failure" && r.action == Action::PowerDown));
        assert!(rules
            .iter()
            .any(|r| r.name == "swap-pressure" && r.action == Action::None));
        assert!(rules
            .iter()
            .any(|r| r.name == "network-unreachable" && r.action == Action::Reboot));
    }

    #[test]
    fn psu_rule_ignores_healthy_draw() {
        let mut e = EventEngine::new();
        for r in default_rules() {
            e.add(r);
        }
        let key = MonitorKey::new("power.watts");
        assert!(e.observe(SimTime::ZERO, 1, &key, 85.0).0.is_empty());
        let fired = e.observe(SimTime::ZERO, 1, &key, 0.0).0;
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].action, Action::PowerDown);
        // recovers only after a real supply is back (> 40 W)
        assert!(e.observe(SimTime::ZERO, 1, &key, 30.0).1.is_empty());
        assert_eq!(e.observe(SimTime::ZERO, 1, &key, 85.0).1.len(), 1);
    }
}
