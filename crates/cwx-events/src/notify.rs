//! Episode-based smart notification.
//!
//! "The email informs the administrator which cluster is malfunctioning,
//! the name of the triggered event, the node(s) which are experiencing
//! the problem, and the action (if any) that was taken. Only one email
//! is sent per triggered event, even if multiple nodes are involved. ...
//! For those who desire, email can be directed to most wireless devices
//! such as pagers and cell phones."
//!
//! Mechanism: per event id the notifier keeps an *episode*. The first
//! firing opens the episode and schedules one email after a short
//! batching window (so a failure wave lands in a single message). Nodes
//! firing while the episode is open are folded in; no further mail is
//! sent. The episode closes when every involved node has cleared; the
//! next firing opens a new episode — and a new email.

use std::collections::{BTreeMap, BTreeSet};

use cwx_util::time::{SimDuration, SimTime};

use crate::engine::{Action, Clearing, EventDef, EventId, Firing};

/// A rendered notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Email {
    /// Send time.
    pub at: SimTime,
    /// Cluster name.
    pub cluster: String,
    /// Event name.
    pub event: String,
    /// Nodes involved at send time.
    pub nodes: Vec<u32>,
    /// Action description.
    pub action: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

impl Email {
    /// The truncated form "directed to most wireless devices such as
    /// pagers and cell phones": one line, hard 120-character cap (the
    /// era's alphanumeric pager budget).
    pub fn pager_text(&self) -> String {
        let mut line = format!(
            "{}:{} {}node(s) {}",
            self.cluster,
            self.event,
            self.nodes.len(),
            self.action
        );
        if line.len() > 120 {
            line.truncate(117);
            line.push_str("...");
        }
        line
    }
}

#[derive(Debug)]
struct Episode {
    nodes: BTreeSet<u32>,
    active_nodes: BTreeSet<u32>,
    first_value: f64,
    action: Action,
    mail_due: Option<SimTime>,
    /// opened beyond the storm cap: coalesce instead of mailing
    storm: bool,
}

/// Event-storm rate limiting: a flapping node re-opens the same episode
/// over and over (fail → mail, clear, fail → mail, ...). Beyond
/// `max_reopens` episode openings per event inside `window`, individual
/// re-open mails stop and at most one coalesced "storm" email per event
/// per window goes out instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormPolicy {
    /// Episode openings per event per window before coalescing starts.
    pub max_reopens: u32,
    /// Sliding window for the re-open count (and the storm-mail cap).
    pub window: SimDuration,
}

impl Default for StormPolicy {
    fn default() -> Self {
        StormPolicy {
            max_reopens: 3,
            window: SimDuration::from_secs(3600),
        }
    }
}

/// The smart notifier.
#[derive(Debug)]
pub struct Notifier {
    cluster: String,
    window: SimDuration,
    episodes: BTreeMap<EventId, Episode>,
    outbox: Vec<Email>,
    suppressed: u64,
    storm_policy: StormPolicy,
    /// per-event episode-opening times, pruned to the storm window
    reopens: BTreeMap<EventId, Vec<SimTime>>,
    /// when the last storm email per event went out
    storm_mailed: BTreeMap<EventId, SimTime>,
    storms: u64,
}

fn action_text(a: &Action) -> String {
    match a {
        Action::None => "none".to_string(),
        Action::PowerDown => "node powered down".to_string(),
        Action::Reboot => "node rebooted".to_string(),
        Action::Halt => "node halted".to_string(),
        Action::Plugin(p) => format!("ran plug-in {p}"),
    }
}

impl Notifier {
    /// A notifier for `cluster` batching firings for `window` before
    /// mailing.
    pub fn new(cluster: impl Into<String>, window: SimDuration) -> Self {
        Notifier {
            cluster: cluster.into(),
            window,
            episodes: BTreeMap::new(),
            outbox: Vec::new(),
            suppressed: 0,
            storm_policy: StormPolicy::default(),
            reopens: BTreeMap::new(),
            storm_mailed: BTreeMap::new(),
            storms: 0,
        }
    }

    /// Firings folded into an already-notified episode (the mails the
    /// administrator did NOT get — the savings the paper touts).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Override the event-storm rate limit.
    pub fn set_storm_policy(&mut self, p: StormPolicy) {
        self.storm_policy = p;
    }

    /// Episode openings that tripped the storm limiter.
    pub fn storms(&self) -> u64 {
        self.storms
    }

    /// Record a firing. `def` must be the definition that fired.
    pub fn on_fire(&mut self, now: SimTime, def: &EventDef, firing: &Firing) {
        if !def.notify {
            return;
        }
        let window = self.window;
        if !self.episodes.contains_key(&def.id) {
            // a fresh episode opens: count it against the storm limit
            let policy = self.storm_policy;
            let times = self.reopens.entry(def.id).or_default();
            times.retain(|&t0| t0 + policy.window > now);
            times.push(now);
            let storm = times.len() as u32 > policy.max_reopens;
            if storm {
                self.storms += 1;
            }
            self.episodes.insert(
                def.id,
                Episode {
                    nodes: BTreeSet::new(),
                    active_nodes: BTreeSet::new(),
                    first_value: firing.value,
                    action: firing.action.clone(),
                    mail_due: Some(now + window),
                    storm,
                },
            );
        }
        let ep = self.episodes.get_mut(&def.id).expect("just ensured");
        if ep.mail_due.is_none() {
            // mail already sent for this episode
            self.suppressed += 1;
        }
        ep.nodes.insert(firing.node);
        ep.active_nodes.insert(firing.node);
    }

    /// Record a clearing; closes the episode when the last node clears.
    pub fn on_clear(&mut self, clearing: &Clearing) {
        if let Some(ep) = self.episodes.get_mut(&clearing.event) {
            ep.active_nodes.remove(&clearing.node);
            if ep.active_nodes.is_empty() && ep.mail_due.is_none() {
                // episode over — the next firing opens a fresh one
                self.episodes.remove(&clearing.event);
            }
        }
    }

    /// Emit any emails whose batching window has expired. Call
    /// periodically (the server's housekeeping tick).
    pub fn flush(&mut self, now: SimTime, defs: &[EventDef]) -> Vec<Email> {
        let mut sent = Vec::new();
        let mut finished: Vec<EventId> = Vec::new();
        for (&id, ep) in self.episodes.iter_mut() {
            let Some(due) = ep.mail_due else { continue };
            if due > now {
                continue;
            }
            let name = defs
                .iter()
                .find(|d| d.id == id)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("event-{}", id.0));
            let nodes: Vec<u32> = ep.nodes.iter().copied().collect();
            let action = action_text(&ep.action);
            if ep.storm {
                // under storm: at most one coalesced mail per window
                let recently = self
                    .storm_mailed
                    .get(&id)
                    .is_some_and(|&t0| t0 + self.storm_policy.window > now);
                if recently {
                    self.suppressed += 1;
                    ep.mail_due = None;
                    if ep.active_nodes.is_empty() {
                        finished.push(id);
                    }
                    continue;
                }
                self.storm_mailed.insert(id, now);
                let count = self.reopens.get(&id).map(|v| v.len()).unwrap_or(0);
                let subject = format!(
                    "[{}] storm: {} re-fired {} times — further mail coalesced",
                    self.cluster, name, count
                );
                let body = format!(
                    "Cluster: {}\nEvent: {} (STORM)\nRe-opened {} times within the storm \
                     window; individual notifications are coalesced until the event \
                     settles.\nLatest nodes: {}\nAction taken: {}\n",
                    self.cluster,
                    name,
                    count,
                    nodes
                        .iter()
                        .map(|n| format!("node{n:03}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    action
                );
                sent.push(Email {
                    at: now,
                    cluster: self.cluster.clone(),
                    event: name,
                    nodes,
                    action,
                    subject,
                    body,
                });
                ep.mail_due = None;
                if ep.active_nodes.is_empty() {
                    finished.push(id);
                }
                continue;
            }
            let subject = format!("[{}] {} on {} node(s)", self.cluster, name, nodes.len());
            let node_list = nodes
                .iter()
                .map(|n| format!("node{n:03}"))
                .collect::<Vec<_>>()
                .join(", ");
            let body = format!(
                "Cluster: {}\nEvent: {}\nNodes: {}\nTriggering value: {}\nAction taken: {}\n",
                self.cluster, name, node_list, ep.first_value, action
            );
            let email = Email {
                at: now,
                cluster: self.cluster.clone(),
                event: name,
                nodes,
                action,
                subject,
                body,
            };
            sent.push(email);
            ep.mail_due = None;
            if ep.active_nodes.is_empty() {
                finished.push(id);
            }
        }
        for id in finished {
            self.episodes.remove(&id);
        }
        self.outbox.extend(sent.iter().cloned());
        sent
    }

    /// All emails ever sent (the recording sink for tests/experiments).
    pub fn outbox(&self) -> &[Email] {
        &self.outbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Comparison, Threshold};
    use cwx_monitor::monitor::MonitorKey;

    fn def() -> EventDef {
        EventDef {
            id: EventId(1),
            name: "cpu-fan-failure".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("fan.cpu_rpm"),
                cmp: Comparison::LessThan,
                value: 1000.0,
                hysteresis: 500.0,
            },
            action: Action::PowerDown,
            notify: true,
        }
    }

    fn firing(node: u32, t: SimTime) -> Firing {
        Firing {
            event: EventId(1),
            node,
            time: t,
            value: 0.0,
            action: Action::PowerDown,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn one_email_for_many_nodes() {
        let d = def();
        let mut n = Notifier::new("llnl", SimDuration::from_secs(30));
        for node in 0..50 {
            n.on_fire(t(1), &d, &firing(node, t(1)));
        }
        assert!(
            n.flush(t(10), std::slice::from_ref(&d)).is_empty(),
            "window not expired yet"
        );
        let mails = n.flush(t(31), std::slice::from_ref(&d));
        assert_eq!(mails.len(), 1, "one email per triggered event");
        assert_eq!(mails[0].nodes.len(), 50);
        assert!(mails[0].subject.contains("cpu-fan-failure"));
        assert!(mails[0].body.contains("node049"));
        assert!(mails[0].body.contains("powered down"));
    }

    #[test]
    fn late_joiners_do_not_generate_more_mail() {
        let d = def();
        let mut n = Notifier::new("c", SimDuration::from_secs(10));
        n.on_fire(t(0), &d, &firing(1, t(0)));
        assert_eq!(n.flush(t(11), std::slice::from_ref(&d)).len(), 1);
        // node 2 fails while the episode is still open
        n.on_fire(t(20), &d, &firing(2, t(20)));
        assert!(n.flush(t(60), std::slice::from_ref(&d)).is_empty());
        assert_eq!(n.suppressed(), 1);
        assert_eq!(n.outbox().len(), 1);
    }

    #[test]
    fn refire_after_full_recovery_sends_new_mail() {
        let d = def();
        let mut n = Notifier::new("c", SimDuration::from_secs(10));
        n.on_fire(t(0), &d, &firing(1, t(0)));
        n.flush(t(11), std::slice::from_ref(&d));
        // fixed...
        n.on_clear(&Clearing {
            event: EventId(1),
            node: 1,
        });
        // ...fails again later: re-fires automatically with a new email
        n.on_fire(t(100), &d, &firing(1, t(100)));
        let mails = n.flush(t(111), std::slice::from_ref(&d));
        assert_eq!(mails.len(), 1);
        assert_eq!(n.outbox().len(), 2);
    }

    #[test]
    fn clear_before_mail_still_sends_the_report() {
        // transient blip: fired and cleared inside the window — the
        // administrator still learns about it
        let d = def();
        let mut n = Notifier::new("c", SimDuration::from_secs(10));
        n.on_fire(t(0), &d, &firing(1, t(0)));
        n.on_clear(&Clearing {
            event: EventId(1),
            node: 1,
        });
        let mails = n.flush(t(11), std::slice::from_ref(&d));
        assert_eq!(mails.len(), 1);
        // and the episode is gone afterwards
        n.on_fire(t(50), &d, &firing(1, t(50)));
        assert_eq!(n.flush(t(61), std::slice::from_ref(&d)).len(), 1);
    }

    #[test]
    fn notify_false_events_are_silent() {
        let mut d = def();
        d.notify = false;
        let mut n = Notifier::new("c", SimDuration::from_secs(1));
        n.on_fire(t(0), &d, &firing(1, t(0)));
        assert!(n.flush(t(100), &[d]).is_empty());
    }

    #[test]
    fn distinct_events_get_distinct_mail() {
        let d1 = def();
        let mut d2 = def();
        d2.id = EventId(2);
        d2.name = "load-too-high".into();
        let mut n = Notifier::new("c", SimDuration::from_secs(1));
        n.on_fire(t(0), &d1, &firing(1, t(0)));
        let mut f2 = firing(1, t(0));
        f2.event = EventId(2);
        f2.action = Action::None;
        n.on_fire(t(0), &d2, &f2);
        let mails = n.flush(t(2), &[d1, d2]);
        assert_eq!(mails.len(), 2);
    }

    #[test]
    fn reopen_storm_is_coalesced_into_one_storm_mail() {
        let d = def();
        let mut n = Notifier::new("c", SimDuration::from_secs(5));
        n.set_storm_policy(StormPolicy {
            max_reopens: 2,
            window: SimDuration::from_secs(1000),
        });
        // a flapping node re-opens the episode six times
        let mut now = t(0);
        for _ in 0..6 {
            n.on_fire(now, &d, &firing(1, now));
            let _ = n.flush(now + SimDuration::from_secs(6), std::slice::from_ref(&d));
            n.on_clear(&Clearing {
                event: EventId(1),
                node: 1,
            });
            now += SimDuration::from_secs(30);
        }
        // opens 1 and 2 mail normally; open 3 trips the storm (one
        // coalesced mail); opens 4-6 are suppressed outright
        assert_eq!(n.outbox().len(), 3, "{:#?}", n.outbox());
        assert!(n.outbox()[2].subject.contains("storm"));
        assert_eq!(n.storms(), 4, "opens 3-6 all counted as storm opens");
        assert!(n.suppressed() >= 3, "storm re-opens suppressed");
    }

    #[test]
    fn storm_limiter_resets_after_a_quiet_window() {
        let d = def();
        let mut n = Notifier::new("c", SimDuration::from_secs(5));
        n.set_storm_policy(StormPolicy {
            max_reopens: 1,
            window: SimDuration::from_secs(100),
        });
        let fire_cycle = |n: &mut Notifier, at: SimTime| {
            n.on_fire(at, &d, &firing(1, at));
            let mails = n.flush(at + SimDuration::from_secs(6), std::slice::from_ref(&d));
            n.on_clear(&Clearing {
                event: EventId(1),
                node: 1,
            });
            mails
        };
        assert_eq!(fire_cycle(&mut n, t(0)).len(), 1, "first open mails");
        let storm = fire_cycle(&mut n, t(20));
        assert_eq!(storm.len(), 1);
        assert!(storm[0].subject.contains("storm"), "second open coalesces");
        // long quiet spell: the window drains and normal mail resumes
        let later = fire_cycle(&mut n, t(500));
        assert_eq!(later.len(), 1);
        assert!(!later[0].subject.contains("storm"));
    }

    #[test]
    fn pager_text_is_one_short_line() {
        let d = def();
        let mut n = Notifier::new(
            "a-cluster-with-a-fairly-long-name",
            SimDuration::from_secs(1),
        );
        for node in 0..500 {
            n.on_fire(t(0), &d, &firing(node, t(0)));
        }
        let mails = n.flush(t(2), &[d]);
        let pager = mails[0].pager_text();
        assert!(pager.len() <= 120, "{} chars", pager.len());
        assert!(!pager.contains('\n'));
        assert!(pager.contains("cpu-fan-failure"));
        assert!(pager.contains("500"));
    }
}
