//! The reliable-multicast cloning protocol, as an event-driven state
//! machine over the simulated network.
//!
//! Three deployment strategies share the repair machinery:
//!
//! * [`RepairStrategy::MulticastRoundRobin`] — the paper's protocol: one
//!   paced multicast stream, then a master-controlled round-robin
//!   acknowledge phase where missing chunks are repaired peer-to-peer
//!   (unicast) with the master.
//! * [`RepairStrategy::MulticastRemulticast`] — ablation: repair rounds
//!   re-multicast the union of missing chunks before falling back to the
//!   round-robin phase.
//! * [`RepairStrategy::Unicast`] — the pre-multicast baseline: the master
//!   pushes the image to every node over concurrent unicast streams
//!   (N× the bytes on a shared segment).
//!
//! Control messages (poll/NACK/complete) run over a TCP-like channel:
//! on loss they are retransmitted after an RTO, consuming wire time each
//! attempt. Data chunks are fire-and-forget datagrams, exactly like the
//! real system's multicast stream.

use cwx_bios::{BiosChip, Firmware, MemoryCheck};
use cwx_net::{Delivery, GroupId, Network, NodeAddr, SegmentId};
use cwx_util::rng::rng as seeded_rng;
use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// Cloning campaign strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The paper's protocol: multicast stream + round-robin unicast
    /// repair.
    MulticastRoundRobin,
    /// Multicast stream + up to `rounds` re-multicast repair rounds,
    /// then round-robin unicast for the stragglers.
    MulticastRemulticast {
        /// Maximum re-multicast rounds before unicast fallback.
        rounds: u32,
    },
    /// Concurrent unicast pushes (baseline).
    Unicast,
}

/// Parameters of a cloning campaign.
#[derive(Debug, Clone)]
pub struct CloneConfig {
    /// Image size in bytes.
    pub image_bytes: u64,
    /// Stream chunk size in bytes.
    pub chunk_bytes: u64,
    /// Master's pacing rate for the multicast stream, bytes/s. Reliable
    /// multicast must run below wire speed so receivers keep up.
    pub pace_bps: u64,
    /// Strategy.
    pub strategy: RepairStrategy,
    /// Sequential disk write rate on the nodes, bytes/s.
    pub disk_write_bps: u64,
    /// Firmware installed on the nodes (drives reboot time).
    pub firmware: Firmware,
    /// Control-message retransmission timeout.
    pub ctrl_rto: SimDuration,
    /// Give up on a node after this many poll rounds.
    pub max_poll_rounds: u32,
    /// Reboot after writing (full reclone). `false` models the in-place
    /// package/kernel-file update path — "update files or packages on
    /// the nodes in parallel" — where nodes stay up.
    pub reboot: bool,
    /// Response deadline for a poll, measured from its wire delivery
    /// time (so queued repair traffic cannot fake a dead receiver).
    pub poll_timeout: SimDuration,
    /// Consecutive missed poll deadlines before a receiver is evicted
    /// as dead and the session moves on for the survivors.
    pub max_poll_misses: u32,
    /// Fault injection: receivers that die mid-session, as `(node,
    /// seconds after campaign start)`. A dead receiver ignores every
    /// message — chunks, polls, everything.
    pub dropouts: Vec<(u32, f64)>,
}

impl Default for CloneConfig {
    fn default() -> Self {
        CloneConfig {
            image_bytes: 650 << 20,
            chunk_bytes: 1 << 20,
            pace_bps: 4 << 20,
            strategy: RepairStrategy::MulticastRoundRobin,
            disk_write_bps: 25 << 20,
            firmware: Firmware::LinuxBios,
            ctrl_rto: SimDuration::from_millis(200),
            max_poll_rounds: 1000,
            reboot: true,
            poll_timeout: SimDuration::from_secs(10),
            max_poll_misses: 5,
            dropouts: Vec::new(),
        }
    }
}

/// Outcome of a cloning campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CloneReport {
    /// Nodes targeted.
    pub n_nodes: u32,
    /// Image size, bytes.
    pub image_bytes: u64,
    /// When the initial stream finished leaving the master.
    pub stream_secs: f64,
    /// When the last node had a complete image in memory.
    pub data_complete_secs: f64,
    /// When the last node was back up and operational (disk written,
    /// rebooted) — the paper's "12 minutes" number.
    pub makespan_secs: f64,
    /// Total bytes that crossed the wire (incl. framing).
    pub wire_bytes: u64,
    /// Repair chunks unicast by the master.
    pub repair_chunks: u64,
    /// Re-multicast chunks (remulticast strategy only).
    pub remulticast_chunks: u64,
    /// Poll messages sent.
    pub polls: u64,
    /// Nodes abandoned after `max_poll_rounds`.
    pub failed_nodes: u32,
    /// Per-node operational times (seconds; NaN for failed nodes).
    pub per_node_operational: Vec<f64>,
}

const CLONE_GROUP: GroupId = GroupId(1);
const CTRL_BYTES: u64 = 64;
const MAX_CTRL_RETRIES: u32 = 60;
/// Cap on missing-chunk indices listed per NACK.
const NACK_LIST_CAP: usize = 1024;

#[derive(Debug, Clone)]
enum Msg {
    /// Data chunk (stream, repair, or re-multicast).
    Chunk(u32),
    /// Master asks a node what it is missing.
    Poll,
    /// Node reports missing chunks (possibly truncated to the cap).
    /// Carries the sender so a stale response from an evicted receiver
    /// cannot be misattributed to the node now at the head.
    Nack(u32, Vec<u32>),
    /// Node has the full image (sender id, same reason).
    Complete(u32),
}

/// Dense bitmap tracking which image chunks a node has received.
#[derive(Debug, Clone)]
pub struct ChunkBitmap {
    words: Vec<u64>,
    nchunks: u32,
    count: u32,
}

impl ChunkBitmap {
    /// An empty bitmap over `nchunks` chunks.
    pub fn new(nchunks: u32) -> Self {
        ChunkBitmap {
            words: vec![0; (nchunks as usize).div_ceil(64)],
            nchunks,
            count: 0,
        }
    }

    /// Record chunk `idx` as received.
    pub fn mark(&mut self, idx: u32) {
        let (w, b) = (idx as usize / 64, idx % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.count += 1;
        }
    }

    /// Whether chunk `idx` has been received.
    pub fn has(&self, idx: u32) -> bool {
        self.words[idx as usize / 64] & (1 << (idx % 64)) != 0
    }

    /// Chunks received so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Up to `cap` missing chunk indices, ascending. Scans a word at a
    /// time with `trailing_zeros`, so a NACK over a mostly-complete
    /// image costs one inspection per 64 chunks, not one per chunk.
    pub fn missing(&self, cap: usize) -> Vec<u32> {
        let mut out = Vec::new();
        'words: for (w, &word) in self.words.iter().enumerate() {
            let base = (w * 64) as u32;
            let mut inv = !word;
            let tail = self.nchunks - base;
            if tail < 64 {
                inv &= (1u64 << tail) - 1;
            }
            while inv != 0 {
                out.push(base + inv.trailing_zeros());
                if out.len() >= cap {
                    break 'words;
                }
                inv &= inv - 1;
            }
        }
        out
    }
}

#[derive(Debug)]
struct Target {
    have: ChunkBitmap,
    complete_at: Option<SimTime>,
    operational_at: Option<SimTime>,
    failed: bool,
    /// the receiver died mid-session: it ignores everything
    dead: bool,
}

impl Target {
    fn new(nchunks: u32) -> Self {
        Target {
            have: ChunkBitmap::new(nchunks),
            complete_at: None,
            operational_at: None,
            failed: false,
            dead: false,
        }
    }
}

struct World {
    net: Network<Msg>,
    cfg: CloneConfig,
    nchunks: u32,
    n_nodes: u32,
    targets: Vec<Target>,
    rng: StdRng,
    // master state
    poll_queue: std::collections::VecDeque<u32>,
    current_rounds: u32,
    remulticast_rounds_left: u32,
    completed: u32,
    /// outstanding poll the master is waiting on: `(node, sequence)`
    awaiting: Option<(u32, u64)>,
    next_poll_seq: u64,
    /// consecutive missed poll deadlines for the head node
    poll_misses: u32,
    // accounting
    stream_done: Option<SimTime>,
    data_complete: Option<SimTime>,
    repair_chunks: u64,
    remulticast_chunks: u64,
    polls: u64,
    failed: u32,
}

const MASTER: NodeAddr = NodeAddr(0);

fn addr_of(node: u32) -> NodeAddr {
    NodeAddr(node + 1)
}

fn node_of(addr: NodeAddr) -> u32 {
    addr.0 - 1
}

type CloneSim = Sim<World>;

fn schedule_deliveries(sim: &mut CloneSim, ds: Vec<Delivery<Msg>>) {
    for d in ds {
        sim.schedule_at(d.at, move |sim| on_receive(sim, d.to, d.msg));
    }
}

/// Reliable control send: retransmit on loss after the RTO.
fn send_ctrl(sim: &mut CloneSim, from: NodeAddr, to: NodeAddr, size: u64, msg: Msg, attempt: u32) {
    let now = sim.now();
    let ds = sim
        .world_mut()
        .net
        .unicast(now, from, to, size, msg.clone());
    if ds.is_empty() {
        if attempt < MAX_CTRL_RETRIES {
            let rto = sim.world().cfg.ctrl_rto;
            sim.schedule_in(rto, move |sim| {
                send_ctrl(sim, from, to, size, msg, attempt + 1)
            });
        }
        // else: control channel broken; the poll-round cap will abandon
        // the node
    } else {
        schedule_deliveries(sim, ds);
    }
}

fn on_receive(sim: &mut CloneSim, to: NodeAddr, msg: Msg) {
    if to == MASTER {
        on_master_receive(sim, msg);
    } else {
        on_node_receive(sim, to, msg);
    }
}

fn on_node_receive(sim: &mut CloneSim, to: NodeAddr, msg: Msg) {
    let node = node_of(to);
    if sim.world().targets[node as usize].dead {
        return; // a dead receiver ignores everything
    }
    match msg {
        Msg::Chunk(idx) => {
            sim.world_mut().targets[node as usize].have.mark(idx);
        }
        Msg::Poll => {
            let nchunks = sim.world().nchunks;
            let target = &sim.world().targets[node as usize];
            if target.have.count() == nchunks {
                send_ctrl(sim, to, MASTER, CTRL_BYTES, Msg::Complete(node), 0);
            } else {
                let missing = target.have.missing(NACK_LIST_CAP);
                let size = CTRL_BYTES + 4 * missing.len() as u64;
                send_ctrl(sim, to, MASTER, size, Msg::Nack(node, missing), 0);
            }
        }
        _ => {}
    }
}

fn on_master_receive(sim: &mut CloneSim, msg: Msg) {
    match msg {
        Msg::Complete(sender) => {
            let Some(&node) = sim.world().poll_queue.front() else {
                return;
            };
            if node != sender {
                return; // stale response from an evicted receiver
            }
            let now = sim.now();
            {
                let w = sim.world_mut();
                w.awaiting = None;
                w.poll_misses = 0;
                w.poll_queue.pop_front();
                w.current_rounds = 0;
                let t = &mut w.targets[node as usize];
                if t.complete_at.is_none() {
                    t.complete_at = Some(now);
                    w.completed += 1;
                    if w.completed == w.n_nodes {
                        w.data_complete = Some(now);
                    }
                }
            }
            finish_node(sim, node);
            poll_next(sim);
        }
        Msg::Nack(sender, missing) => {
            let Some(&node) = sim.world().poll_queue.front() else {
                return;
            };
            if node != sender {
                return; // stale response from an evicted receiver
            }
            let now = sim.now();
            let chunk = sim.world().cfg.chunk_bytes;
            // repair peer-to-peer with the master, then re-poll; FIFO
            // segment ordering lands the poll after the repairs
            let mut deliveries = Vec::new();
            {
                let w = sim.world_mut();
                w.awaiting = None;
                w.poll_misses = 0;
                w.repair_chunks += missing.len() as u64;
                for idx in missing {
                    deliveries.extend(w.net.unicast(
                        now,
                        MASTER,
                        addr_of(node),
                        chunk,
                        Msg::Chunk(idx),
                    ));
                }
            }
            schedule_deliveries(sim, deliveries);
            poll_current(sim);
        }
        _ => {}
    }
}

/// Disk write (+ reboot for full reclones) for a node whose image data
/// is complete.
fn finish_node(sim: &mut CloneSim, node: u32) {
    let (disk_secs, firmware, reboot) = {
        let w = sim.world();
        (
            w.cfg.image_bytes as f64 / w.cfg.disk_write_bps as f64,
            w.cfg.firmware,
            w.cfg.reboot,
        )
    };
    let boot = if reboot {
        let w = sim.world_mut();
        let mut chip = BiosChip::new(firmware);
        chip.begin_boot(&mut w.rng, MemoryCheck::Ok).total_time()
    } else {
        SimDuration::ZERO
    };
    let done = sim.now() + SimDuration::from_secs_f64(disk_secs) + boot;
    sim.schedule_at(done, move |sim| {
        sim.world_mut().targets[node as usize].operational_at = Some(sim.now());
    });
}

/// Poll the node at the head of the queue (counting rounds; abandon
/// after the cap).
fn poll_current(sim: &mut CloneSim) {
    let Some(&node) = sim.world().poll_queue.front() else {
        return;
    };
    let now = sim.now();
    let abandoned = {
        let w = sim.world_mut();
        w.current_rounds += 1;
        w.polls += 1;
        if w.current_rounds > w.cfg.max_poll_rounds {
            w.targets[node as usize].failed = true;
            w.failed += 1;
            w.poll_queue.pop_front();
            w.current_rounds = 0;
            // treat as "done" for termination purposes
            w.completed += 1;
            if w.completed == w.n_nodes {
                w.data_complete = Some(now);
            }
            true
        } else {
            false
        }
    };
    if abandoned {
        {
            let w = sim.world_mut();
            w.awaiting = None;
            w.poll_misses = 0;
        }
        poll_next(sim);
    } else {
        send_poll(sim, node);
    }
}

/// Send a poll to `node` and arm its response deadline.
fn send_poll(sim: &mut CloneSim, node: u32) {
    let seq = {
        let w = sim.world_mut();
        w.next_poll_seq += 1;
        w.awaiting = Some((node, w.next_poll_seq));
        w.next_poll_seq
    };
    send_poll_attempt(sim, node, seq, 0);
}

fn send_poll_attempt(sim: &mut CloneSim, node: u32, seq: u64, attempt: u32) {
    let now = sim.now();
    let ds = sim
        .world_mut()
        .net
        .unicast(now, MASTER, addr_of(node), CTRL_BYTES, Msg::Poll);
    if ds.is_empty() {
        if attempt < MAX_CTRL_RETRIES {
            let rto = sim.world().cfg.ctrl_rto;
            sim.schedule_in(rto, move |sim| {
                send_poll_attempt(sim, node, seq, attempt + 1)
            });
        }
    } else if attempt == 0 {
        // Deadline measured from the poll's wire delivery, so queued
        // repair traffic ahead of it cannot fake a dead receiver.
        let deliver = ds.iter().map(|d| d.at).max().unwrap_or(now);
        let timeout = sim.world().cfg.poll_timeout;
        schedule_deliveries(sim, ds);
        sim.schedule_at(deliver + timeout, move |sim| {
            check_poll_deadline(sim, node, seq)
        });
        return;
    } else {
        schedule_deliveries(sim, ds);
        return;
    }
    if attempt == 0 {
        // first copy lost: arm the deadline anyway so a receiver behind
        // a fully broken control channel is still evicted
        let timeout = sim.world().cfg.poll_timeout;
        sim.schedule_in(timeout, move |sim| check_poll_deadline(sim, node, seq));
    }
}

/// The response deadline for poll `seq` to `node` expired.
///
/// Re-arms a few times (retransmits or a jammed wire may still produce
/// the answer); after [`CloneConfig::max_poll_misses`] consecutive
/// misses the receiver is declared dead and evicted so the session
/// completes for the survivors.
fn check_poll_deadline(sim: &mut CloneSim, node: u32, seq: u64) {
    if sim.world().awaiting != Some((node, seq)) {
        return; // answered (or the head moved on); stale deadline
    }
    let (evict, timeout) = {
        let w = sim.world_mut();
        w.poll_misses += 1;
        (w.poll_misses >= w.cfg.max_poll_misses, w.cfg.poll_timeout)
    };
    if !evict {
        sim.schedule_in(timeout, move |sim| check_poll_deadline(sim, node, seq));
        return;
    }
    let now = sim.now();
    {
        let w = sim.world_mut();
        w.awaiting = None;
        w.poll_misses = 0;
        w.current_rounds = 0;
        let t = &mut w.targets[node as usize];
        if !t.failed {
            t.failed = true;
            w.failed += 1;
        }
        w.poll_queue.pop_front();
        // treat as "done" for termination purposes
        w.completed += 1;
        if w.completed == w.n_nodes {
            w.data_complete = Some(now);
        }
    }
    poll_next(sim);
}

/// Move to the next node in the round-robin acknowledge phase.
fn poll_next(sim: &mut CloneSim) {
    if sim.world().poll_queue.is_empty() {
        return; // campaign data phase over
    }
    sim.world_mut().current_rounds = 0;
    poll_current(sim);
}

/// Begin the acknowledge phase.
fn start_ack_phase(sim: &mut CloneSim) {
    let now = sim.now();
    sim.world_mut().stream_done.get_or_insert(now);
    match sim.world().cfg.strategy {
        RepairStrategy::MulticastRemulticast { .. } if sim.world().remulticast_rounds_left > 0 => {
            remulticast_round(sim);
        }
        _ => {
            let n = sim.world().n_nodes;
            sim.world_mut().poll_queue = (0..n).collect();
            poll_next(sim);
        }
    }
}

/// One re-multicast repair round: union of missing chunks across nodes.
fn remulticast_round(sim: &mut CloneSim) {
    let nchunks = sim.world().nchunks;
    let mut union: Vec<u32> = Vec::new();
    {
        let w = sim.world();
        for idx in 0..nchunks {
            if w.targets.iter().any(|t| !t.have.has(idx)) {
                union.push(idx);
            }
        }
    }
    sim.world_mut().remulticast_rounds_left -= 1;
    if union.is_empty() {
        let n = sim.world().n_nodes;
        sim.world_mut().poll_queue = (0..n).collect();
        return poll_next(sim);
    }
    // pace the repair stream like the main stream
    let interval = {
        let cfg = &sim.world().cfg;
        SimDuration::from_secs_f64(cfg.chunk_bytes as f64 / cfg.pace_bps as f64)
    };
    let total = union.len();
    sim.world_mut().remulticast_chunks += total as u64;
    let chunk_bytes = sim.world().cfg.chunk_bytes;
    for (k, idx) in union.into_iter().enumerate() {
        sim.schedule_in(interval * k as u64, move |sim| {
            let now = sim.now();
            let ds = sim.world_mut().net.multicast(
                now,
                MASTER,
                CLONE_GROUP,
                chunk_bytes,
                Msg::Chunk(idx),
            );
            schedule_deliveries(sim, ds);
        });
    }
    // after the round, either run another or fall through to round-robin
    sim.schedule_in(interval * (total as u64 + 1), start_ack_phase);
}

/// Run a cloning campaign and return the report.
///
/// `loss` is the per-receiver chunk loss probability on the shared
/// segment; `bandwidth_bps` its capacity (use
/// [`cwx_net::FAST_ETHERNET_BPS`] for the paper's setup).
pub fn run_clone(
    seed: u64,
    n_nodes: u32,
    bandwidth_bps: u64,
    loss: f64,
    cfg: CloneConfig,
) -> CloneReport {
    assert!(n_nodes > 0, "need at least one target node");
    let nchunks = cfg.image_bytes.div_ceil(cfg.chunk_bytes) as u32;
    let mut net: Network<Msg> = Network::single_segment(seed, n_nodes + 1, bandwidth_bps, loss);
    for i in 0..n_nodes {
        net.join(CLONE_GROUP, addr_of(i));
    }
    let world = World {
        net,
        nchunks,
        n_nodes,
        targets: (0..n_nodes).map(|_| Target::new(nchunks)).collect(),
        rng: seeded_rng(seed ^ 0x9e3779b97f4a7c15),
        poll_queue: std::collections::VecDeque::new(),
        current_rounds: 0,
        remulticast_rounds_left: match cfg.strategy {
            RepairStrategy::MulticastRemulticast { rounds } => rounds,
            _ => 0,
        },
        completed: 0,
        awaiting: None,
        next_poll_seq: 0,
        poll_misses: 0,
        stream_done: None,
        data_complete: None,
        repair_chunks: 0,
        remulticast_chunks: 0,
        polls: 0,
        failed: 0,
        cfg,
    };
    let mut sim = Sim::new(world);

    // fault injection: receivers scheduled to die mid-session
    for (node, secs) in sim.world().cfg.dropouts.clone() {
        assert!(node < n_nodes, "dropout names a node outside the group");
        sim.schedule_in(SimDuration::from_secs_f64(secs), move |sim| {
            sim.world_mut().targets[node as usize].dead = true;
        });
    }

    match sim.world().cfg.strategy {
        RepairStrategy::Unicast => {
            // concurrent unicast pushes, interleaved chunk-by-chunk for
            // fairness; the shared segment serializes them
            let interval = {
                let cfg = &sim.world().cfg;
                // master paces each stream; aggregate offered load is
                // n * pace, the wire enforces its own limit
                SimDuration::from_secs_f64(cfg.chunk_bytes as f64 / cfg.pace_bps as f64)
            };
            for idx in 0..nchunks {
                sim.schedule_in(interval * idx as u64, move |sim| {
                    let now = sim.now();
                    let chunk = sim.world().cfg.chunk_bytes;
                    let n = sim.world().n_nodes;
                    let mut deliveries = Vec::new();
                    for node in 0..n {
                        deliveries.extend(sim.world_mut().net.unicast(
                            now,
                            MASTER,
                            addr_of(node),
                            chunk,
                            Msg::Chunk(idx),
                        ));
                    }
                    schedule_deliveries(sim, deliveries);
                });
            }
            let last = interval * nchunks as u64 + SimDuration::from_millis(500);
            sim.schedule_in(last, start_ack_phase);
        }
        _ => {
            // the paced multicast stream
            let interval = {
                let cfg = &sim.world().cfg;
                SimDuration::from_secs_f64(cfg.chunk_bytes as f64 / cfg.pace_bps as f64)
            };
            for idx in 0..nchunks {
                sim.schedule_in(interval * idx as u64, move |sim| {
                    let now = sim.now();
                    let chunk = sim.world().cfg.chunk_bytes;
                    let ds = sim.world_mut().net.multicast(
                        now,
                        MASTER,
                        CLONE_GROUP,
                        chunk,
                        Msg::Chunk(idx),
                    );
                    schedule_deliveries(sim, ds);
                });
            }
            let last = interval * nchunks as u64 + SimDuration::from_millis(500);
            sim.schedule_in(last, start_ack_phase);
        }
    }

    sim.run();

    let w = sim.world();
    let ops: Vec<f64> = w
        .targets
        .iter()
        .map(|t| {
            t.operational_at
                .map(|x| x.as_secs_f64())
                .unwrap_or(f64::NAN)
        })
        .collect();
    let makespan = ops
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(0.0, f64::max);
    CloneReport {
        n_nodes: w.n_nodes,
        image_bytes: w.cfg.image_bytes,
        stream_secs: w.stream_done.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        data_complete_secs: w.data_complete.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        makespan_secs: makespan,
        wire_bytes: w.net.segment(SegmentId(0)).wire_bytes(),
        repair_chunks: w.repair_chunks,
        remulticast_chunks: w.remulticast_chunks,
        polls: w.polls,
        failed_nodes: w.failed,
        per_node_operational: ops,
    }
}

/// Convenience: push an in-place update (a kernel package, changed
/// files) of `delta_bytes` to `n_nodes` without rebooting them.
pub fn run_update(
    seed: u64,
    n_nodes: u32,
    bandwidth_bps: u64,
    loss: f64,
    delta_bytes: u64,
) -> CloneReport {
    run_clone(
        seed,
        n_nodes,
        bandwidth_bps,
        loss,
        CloneConfig {
            image_bytes: delta_bytes,
            chunk_bytes: (1 << 20).min(delta_bytes.max(1)),
            reboot: false,
            ..CloneConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_net::FAST_ETHERNET_BPS;

    fn small_cfg() -> CloneConfig {
        CloneConfig {
            image_bytes: 32 << 20,
            chunk_bytes: 1 << 20,
            pace_bps: 6 << 20,
            ..CloneConfig::default()
        }
    }

    #[test]
    fn bitmap_missing_matches_naive_scan() {
        // 150 chunks spans two full words plus a 22-bit tail
        let mut bm = ChunkBitmap::new(150);
        for idx in (0..150).filter(|i| i % 3 != 0 && *i != 64 && *i != 128) {
            bm.mark(idx);
        }
        let naive: Vec<u32> = (0..150).filter(|&i| !bm.has(i)).collect();
        assert_eq!(bm.missing(usize::MAX), naive);
        assert_eq!(bm.count() as usize, 150 - naive.len());
        // bits past nchunks in the last word must never be reported
        assert!(bm.missing(usize::MAX).iter().all(|&i| i < 150));
    }

    #[test]
    fn bitmap_missing_cap_truncates_at_word_boundaries() {
        let mut bm = ChunkBitmap::new(200);
        // everything missing: the cap cuts mid-word and exactly on a
        // word boundary
        assert_eq!(bm.missing(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(bm.missing(64).len(), 64);
        assert_eq!(bm.missing(64).last(), Some(&63));
        assert_eq!(bm.missing(65).last(), Some(&64));
        // fill word 0 entirely; the first misses now start at 64
        for idx in 0..64 {
            bm.mark(idx);
        }
        assert_eq!(bm.missing(3), vec![64, 65, 66]);
        // leave exactly one hole at the very end
        for idx in 64..199 {
            bm.mark(idx);
        }
        assert_eq!(bm.missing(1024), vec![199]);
        bm.mark(199);
        assert!(bm.missing(1024).is_empty());
        assert_eq!(bm.count(), 200);
    }

    #[test]
    fn lossless_multicast_needs_no_repairs() {
        let r = run_clone(1, 20, FAST_ETHERNET_BPS, 0.0, small_cfg());
        assert_eq!(r.failed_nodes, 0);
        assert_eq!(r.repair_chunks, 0);
        assert!(r.makespan_secs.is_finite());
        assert!(r.per_node_operational.iter().all(|t| t.is_finite()));
        // stream of 32 MiB at 6 MiB/s ≈ 5.3 s
        assert!(
            (4.0..=8.0).contains(&r.stream_secs),
            "stream {}",
            r.stream_secs
        );
    }

    #[test]
    fn lossy_multicast_repairs_and_completes() {
        let r = run_clone(2, 20, FAST_ETHERNET_BPS, 0.05, small_cfg());
        assert_eq!(r.failed_nodes, 0);
        assert!(r.repair_chunks > 0, "5% loss must trigger repairs");
        // expected missing ≈ 5% of 32 chunks × 20 nodes = 32
        assert!(
            r.repair_chunks < 200,
            "repairs should stay proportional: {}",
            r.repair_chunks
        );
    }

    #[test]
    fn multicast_wire_bytes_nearly_independent_of_node_count() {
        let a = run_clone(3, 5, FAST_ETHERNET_BPS, 0.0, small_cfg());
        let b = run_clone(3, 50, FAST_ETHERNET_BPS, 0.0, small_cfg());
        // only control traffic grows with N
        assert!(
            (b.wire_bytes as f64) < (a.wire_bytes as f64) * 1.2,
            "multicast wire bytes must not scale with N: {} vs {}",
            a.wire_bytes,
            b.wire_bytes
        );
    }

    #[test]
    fn unicast_baseline_puts_n_times_the_bytes_on_the_wire() {
        let mc = run_clone(4, 20, FAST_ETHERNET_BPS, 0.0, small_cfg());
        let uni = run_clone(
            4,
            20,
            FAST_ETHERNET_BPS,
            0.0,
            CloneConfig {
                strategy: RepairStrategy::Unicast,
                ..small_cfg()
            },
        );
        assert!(
            uni.wire_bytes > mc.wire_bytes * 15,
            "{} vs {}",
            uni.wire_bytes,
            mc.wire_bytes
        );
        // data distribution is wire-bound: ~N× slower for unicast (the
        // constant reboot+disk tail dilutes the full-makespan ratio)
        assert!(
            uni.data_complete_secs > mc.data_complete_secs * 4.0,
            "{} vs {}",
            uni.data_complete_secs,
            mc.data_complete_secs
        );
        assert!(uni.makespan_secs > mc.makespan_secs);
        assert_eq!(uni.failed_nodes, 0);
    }

    #[test]
    fn remulticast_strategy_completes_with_fewer_unicast_repairs() {
        let rr = run_clone(5, 30, FAST_ETHERNET_BPS, 0.08, small_cfg());
        let rm = run_clone(
            5,
            30,
            FAST_ETHERNET_BPS,
            0.08,
            CloneConfig {
                strategy: RepairStrategy::MulticastRemulticast { rounds: 2 },
                ..small_cfg()
            },
        );
        assert_eq!(rm.failed_nodes, 0);
        assert!(rm.remulticast_chunks > 0);
        assert!(
            rm.repair_chunks < rr.repair_chunks,
            "re-multicast should absorb most repairs: {} vs {}",
            rm.repair_chunks,
            rr.repair_chunks
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_clone(6, 10, FAST_ETHERNET_BPS, 0.03, small_cfg());
        let b = run_clone(6, 10, FAST_ETHERNET_BPS, 0.03, small_cfg());
        assert_eq!(a, b);
        let c = run_clone(7, 10, FAST_ETHERNET_BPS, 0.03, small_cfg());
        assert_ne!(a.makespan_secs, c.makespan_secs);
    }

    #[test]
    fn data_complete_after_stream_operational_after_data() {
        let r = run_clone(8, 10, FAST_ETHERNET_BPS, 0.02, small_cfg());
        assert!(r.stream_secs <= r.data_complete_secs);
        assert!(r.data_complete_secs < r.makespan_secs);
        // disk write + reboot adds at least image/disk_bps
        let disk = (32 << 20) as f64 / (25 << 20) as f64;
        assert!(r.makespan_secs - r.data_complete_secs >= disk);
    }

    #[test]
    fn single_node_clone_works() {
        let r = run_clone(9, 1, FAST_ETHERNET_BPS, 0.0, small_cfg());
        assert_eq!(r.failed_nodes, 0);
        assert_eq!(r.per_node_operational.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_panics() {
        run_clone(1, 0, FAST_ETHERNET_BPS, 0.0, small_cfg());
    }

    #[test]
    fn in_place_update_skips_the_reboot() {
        let full = run_clone(10, 20, FAST_ETHERNET_BPS, 0.0, small_cfg());
        let update = run_clone(
            10,
            20,
            FAST_ETHERNET_BPS,
            0.0,
            CloneConfig {
                reboot: false,
                ..small_cfg()
            },
        );
        // same data distribution, no boot tail
        assert!((full.data_complete_secs - update.data_complete_secs).abs() < 1.0);
        assert!(
            update.makespan_secs + 15.0 < full.makespan_secs,
            "{} vs {}",
            update.makespan_secs,
            full.makespan_secs
        );
    }

    #[test]
    fn package_update_is_fast_at_scale() {
        // a 30 MiB kernel package to 200 nodes in parallel
        let r = run_update(11, 200, FAST_ETHERNET_BPS, 0.005, 30 << 20);
        assert_eq!(r.failed_nodes, 0);
        assert!(
            r.makespan_secs < 60.0,
            "small updates land in seconds: {}",
            r.makespan_secs
        );
    }

    #[test]
    fn dead_receiver_is_evicted_and_survivors_complete() {
        // node 3 dies one second in — before the 32 MiB / 6 MiBps
        // stream finishes — and never answers another poll
        let r = run_clone(
            12,
            10,
            FAST_ETHERNET_BPS,
            0.02,
            CloneConfig {
                dropouts: vec![(3, 1.0)],
                ..small_cfg()
            },
        );
        assert_eq!(r.failed_nodes, 1, "the dead receiver must be evicted");
        assert!(r.per_node_operational[3].is_nan());
        for (k, t) in r.per_node_operational.iter().enumerate() {
            if k != 3 {
                assert!(t.is_finite(), "survivor {k} must still complete");
            }
        }
        assert!(
            r.makespan_secs.is_finite() && r.data_complete_secs.is_finite(),
            "the session must terminate despite the dropout"
        );
        // eviction costs at most max_poll_misses deadline windows
        let cfg = small_cfg();
        let bound = cfg.poll_timeout.as_secs_f64() * (cfg.max_poll_misses + 2) as f64 + 60.0;
        assert!(
            r.data_complete_secs < bound,
            "eviction should be prompt: {} vs bound {bound}",
            r.data_complete_secs
        );
    }

    #[test]
    fn dropout_eviction_is_deterministic() {
        let cfg = || CloneConfig {
            dropouts: vec![(0, 2.0), (7, 4.5)],
            ..small_cfg()
        };
        let a = run_clone(13, 12, FAST_ETHERNET_BPS, 0.05, cfg());
        let b = run_clone(13, 12, FAST_ETHERNET_BPS, 0.05, cfg());
        // the dead nodes report NaN, so compare formatted (NaN == NaN)
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.failed_nodes, 2);
    }
}
