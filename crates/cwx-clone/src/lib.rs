//! Disk image management and reliable-multicast cloning (paper §4).
//!
//! "Disk cloning allows the administrator to load or update the operating
//! system on single nodes, or the entire cluster at one time using
//! reliable multicast technology. Using a multicast mechanism, even a
//! single fast ethernet is sufficient to clone several hundred nodes
//! simultaneously. [footnote: It took about 12 min. to clone and reboot
//! over 400 nodes of the Lawrence Livermore cluster.]"
//!
//! The protocol, straight from the paper's description:
//!
//! 1. all participating nodes listen to the multicast stream, buffering
//!    received chunks locally;
//! 2. once the stream is spread out, nodes acknowledge reception **in a
//!    round-robin fashion controlled by the cloning host**;
//! 3. a node still lacking image data has the missing parts transferred
//!    during the acknowledging phase **peer-to-peer with the master**;
//! 4. a node with all the data clones the image to disk and reboots
//!    itself to operational mode.
//!
//! [`protocol`] implements this as a real message-passing state machine
//! over the simulated network (`cwx-net`) and discrete-event simulator,
//! along with the unicast baseline (concurrent per-node pushes, the
//! pre-multicast state of the art) and a re-multicast repair ablation.
//! [`image`] is the Image Manager: named images, versions, checksums,
//! hard-disk vs NFS-boot flavours, and image builds.

#![warn(missing_docs)]

pub mod image;
pub mod protocol;

pub use image::{Image, ImageId, ImageKind, ImageManager};
pub use protocol::{run_clone, CloneConfig, CloneReport, RepairStrategy};
