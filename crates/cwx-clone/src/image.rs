//! The Image Manager (paper §4).
//!
//! "Administrators are able to load the OS and applications to build the
//! required functionality into an image. ... For convenience we offer
//! prebuilt images for cloning, harddisk as well as NFS boot.
//! Furthermore, customized images can be built with little effort."

use std::collections::BTreeMap;

/// Identifies an image in the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageId(pub u32);

/// How the image is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// Cloned onto the node's local hard disk.
    HardDisk,
    /// Served as an NFS root (diskless nodes).
    NfsRoot,
}

/// A system image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Id within the manager.
    pub id: ImageId,
    /// Human name, e.g. `"rh73-compute"`.
    pub name: String,
    /// Deployment flavour.
    pub kind: ImageKind,
    /// Image payload size in bytes.
    pub size_bytes: u64,
    /// Monotonic version (bumped by updates).
    pub version: u32,
    /// Content checksum (FNV-1a over the image description; stands in
    /// for a hash of the payload, which the simulation does not carry).
    pub checksum: u64,
    /// Packages layered into the image.
    pub packages: Vec<String>,
}

/// FNV-1a, used for the stand-in checksums.
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn checksum_of(name: &str, kind: ImageKind, size: u64, version: u32, packages: &[String]) -> u64 {
    let kind_tag: &[u8] = match kind {
        ImageKind::HardDisk => b"hd",
        ImageKind::NfsRoot => b"nfs",
    };
    let mut parts: Vec<&[u8]> = vec![name.as_bytes(), kind_tag];
    let size_b = size.to_le_bytes();
    let ver_b = version.to_le_bytes();
    parts.push(&size_b);
    parts.push(&ver_b);
    for p in packages {
        parts.push(p.as_bytes());
    }
    fnv1a(&parts)
}

/// Registry of images on the ClusterWorX management host.
#[derive(Debug, Default)]
pub struct ImageManager {
    images: BTreeMap<ImageId, Image>,
    next_id: u32,
}

impl ImageManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager pre-loaded with the prebuilt images the paper mentions.
    pub fn with_prebuilt() -> Self {
        let mut m = Self::new();
        m.build(
            "rh73-compute",
            ImageKind::HardDisk,
            650 << 20,
            &["kernel-2.4.18", "pbs-mom"],
        );
        m.build(
            "rh73-diskless",
            ImageKind::NfsRoot,
            350 << 20,
            &["kernel-2.4.18"],
        );
        m.build(
            "rh73-io-node",
            ImageKind::HardDisk,
            900 << 20,
            &["kernel-2.4.18", "nfs-utils"],
        );
        m
    }

    /// Build a new image from a package list.
    pub fn build(
        &mut self,
        name: &str,
        kind: ImageKind,
        size_bytes: u64,
        packages: &[&str],
    ) -> ImageId {
        let id = ImageId(self.next_id);
        self.next_id += 1;
        let packages: Vec<String> = packages.iter().map(|s| s.to_string()).collect();
        let checksum = checksum_of(name, kind, size_bytes, 1, &packages);
        self.images.insert(
            id,
            Image {
                id,
                name: name.to_string(),
                kind,
                size_bytes,
                version: 1,
                checksum,
                packages,
            },
        );
        id
    }

    /// Look up an image.
    pub fn get(&self, id: ImageId) -> Option<&Image> {
        self.images.get(&id)
    }

    /// Find by name.
    pub fn find(&self, name: &str) -> Option<&Image> {
        self.images.values().find(|i| i.name == name)
    }

    /// All images.
    pub fn list(&self) -> impl Iterator<Item = &Image> {
        self.images.values()
    }

    /// Update an image in place: add packages and/or grow it (a kernel
    /// update, say). Bumps the version and recomputes the checksum —
    /// "improvements to cloning add the ability to more easily update
    /// the kernel on all nodes ... and update files or packages".
    pub fn update(
        &mut self,
        id: ImageId,
        added_packages: &[&str],
        added_bytes: u64,
    ) -> Option<u32> {
        let img = self.images.get_mut(&id)?;
        img.packages
            .extend(added_packages.iter().map(|s| s.to_string()));
        img.size_bytes += added_bytes;
        img.version += 1;
        img.checksum = checksum_of(
            &img.name,
            img.kind,
            img.size_bytes,
            img.version,
            &img.packages,
        );
        Some(img.version)
    }

    /// Delete an image.
    pub fn remove(&mut self, id: ImageId) -> bool {
        self.images.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prebuilt_images_exist() {
        let m = ImageManager::with_prebuilt();
        assert_eq!(m.list().count(), 3);
        let hd = m.find("rh73-compute").unwrap();
        assert_eq!(hd.kind, ImageKind::HardDisk);
        assert_eq!(hd.size_bytes, 650 << 20);
        let nfs = m.find("rh73-diskless").unwrap();
        assert_eq!(nfs.kind, ImageKind::NfsRoot);
    }

    #[test]
    fn build_assigns_unique_ids() {
        let mut m = ImageManager::new();
        let a = m.build("a", ImageKind::HardDisk, 100, &[]);
        let b = m.build("b", ImageKind::HardDisk, 100, &[]);
        assert_ne!(a, b);
        assert_eq!(m.get(a).unwrap().name, "a");
    }

    #[test]
    fn checksums_differ_by_content() {
        let mut m = ImageManager::new();
        let a = m.build("a", ImageKind::HardDisk, 100, &["pkg1"]);
        let b = m.build("a", ImageKind::HardDisk, 100, &["pkg2"]);
        assert_ne!(m.get(a).unwrap().checksum, m.get(b).unwrap().checksum);
        let c = m.build("a", ImageKind::NfsRoot, 100, &["pkg1"]);
        assert_ne!(m.get(a).unwrap().checksum, m.get(c).unwrap().checksum);
    }

    #[test]
    fn update_bumps_version_and_checksum() {
        let mut m = ImageManager::new();
        let id = m.build("img", ImageKind::HardDisk, 1000, &["kernel-2.4.18"]);
        let before = m.get(id).unwrap().clone();
        let v = m.update(id, &["kernel-2.4.20"], 5_000_000).unwrap();
        let after = m.get(id).unwrap();
        assert_eq!(v, 2);
        assert_eq!(after.version, 2);
        assert_ne!(after.checksum, before.checksum);
        assert_eq!(after.size_bytes, 1000 + 5_000_000);
        assert!(after.packages.contains(&"kernel-2.4.20".to_string()));
    }

    #[test]
    fn update_missing_image_is_none() {
        let mut m = ImageManager::new();
        assert!(m.update(ImageId(42), &[], 0).is_none());
    }

    #[test]
    fn remove_works_once() {
        let mut m = ImageManager::new();
        let id = m.build("x", ImageKind::HardDisk, 1, &[]);
        assert!(m.remove(id));
        assert!(!m.remove(id));
        assert!(m.get(id).is_none());
    }
}
