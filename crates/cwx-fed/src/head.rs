//! The federation head: fleet-wide aggregated view, command fan-out
//! with retry, graceful degradation, and per-cluster audit trails.
//!
//! The head never forgets a cluster on silence — it serves the last
//! known view marked [`ClusterStatus::Stale`] with its age, queues
//! commands for the cluster (idempotent, bounded retry once the link
//! returns), and reconciles wholesale when the sub-server's `Resync`
//! frame arrives. Retry attempts only burn while the cluster is fresh:
//! a partition is not the command's fault.

use std::collections::BTreeMap;

use clusterworx::{LifecycleCounts, RetryPolicy};
use cwx_events::engine::{ClusterEventId, EventId};
use cwx_events::Action;
use cwx_monitor::transmit::WireDecoder;
use cwx_util::time::{SimDuration, SimTime};

use crate::protocol::{FedWireError, Frame};
use crate::sub::counts_from_rollup;

/// How the head currently regards a cluster's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStatus {
    /// Heard from within the staleness window.
    Fresh,
    /// Silent for the contained age; the last known view is served.
    Stale(SimDuration),
}

/// The head's view of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Cluster id.
    pub cluster: u16,
    /// Nodes the sub-server manages.
    pub n_nodes: u32,
    /// Last known lifecycle census.
    pub counts: LifecycleCounts,
    /// Last known reachable-node count.
    pub reachable: u32,
    /// When the head last heard from the sub-server.
    pub last_seen: SimTime,
    /// Alarms recorded from this cluster.
    pub alarms_seen: u64,
    /// Alarms the sub-server reported dropping before export.
    pub alarms_dropped: u64,
    /// Latest decoded rollup values by key (merged across delta frames).
    metrics: BTreeMap<String, f64>,
    /// Whether the last `tick` considered the view stale (edge
    /// detection for the audit trail).
    marked_stale: bool,
}

/// One row in a per-cluster head audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadAuditRow {
    /// Head-wide monotonic sequence number (total order across
    /// clusters; rows within one cluster are also in order).
    pub seq: u64,
    /// When.
    pub time: SimTime,
    /// The cluster concerned.
    pub cluster: u16,
    /// What happened.
    pub entry: HeadAuditEntry,
}

impl std::fmt::Display for HeadAuditRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "c{:03} #{} t={:.3}s {:?}",
            self.cluster,
            self.seq,
            self.time.as_secs_f64(),
            self.entry
        )
    }
}

/// What a head audit row records.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadAuditEntry {
    /// A sub-server introduced itself.
    ClusterJoined {
        /// Nodes it manages.
        n_nodes: u32,
    },
    /// An alarm arrived through fan-in.
    AlarmRecorded {
        /// Cluster-qualified event id.
        id: ClusterEventId,
        /// Node it fired on.
        node: u32,
        /// Observed value.
        value: f64,
    },
    /// The sub-server's bounded feed dropped alarms before export.
    AlarmsDropped {
        /// How many.
        n: u64,
    },
    /// A command was sent (attempt 1) or re-sent.
    CommandIssued {
        /// Command id.
        id: u64,
        /// Target node.
        node: u32,
        /// The action.
        action: Action,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A command is waiting out a partition (logged once per outage).
    CommandQueued {
        /// Command id.
        id: u64,
        /// Target node.
        node: u32,
        /// The action.
        action: Action,
    },
    /// The sub-server acknowledged a command.
    CommandDelivered {
        /// Command id.
        id: u64,
        /// True when the sub had already applied it (redelivery).
        duplicate: bool,
    },
    /// A command exhausted its retry budget while the cluster was
    /// reachable.
    CommandFailed {
        /// Command id.
        id: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// The view aged past the staleness window.
    ClusterStale,
    /// A resync frame replaced the view after an outage.
    ClusterResynced {
        /// Nodes after resync.
        n_nodes: u32,
        /// Commands released from the partition queue.
        released: usize,
        /// In-flight commands the resync proved already applied.
        already_applied: usize,
    },
    /// The administrator removed the cluster from the federation.
    ClusterForgotten {
        /// Pending commands aborted with it.
        aborted: usize,
    },
}

/// Head-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadStats {
    /// Federation frames received.
    pub frames_rx: u64,
    /// Federation bytes received.
    pub bytes_rx: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Alarms recorded.
    pub alarms_rx: u64,
    /// Command send attempts (first sends and retries).
    pub commands_sent: u64,
    /// Commands acknowledged.
    pub commands_delivered: u64,
    /// Commands that exhausted their retry budget.
    pub commands_failed: u64,
    /// Resync frames processed.
    pub resyncs: u64,
}

/// The fleet-wide aggregate the head serves to its clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetView {
    /// Clusters known (fresh or stale).
    pub clusters: u32,
    /// Clusters currently stale.
    pub stale: u32,
    /// Total nodes across all clusters.
    pub total_nodes: u32,
    /// Summed lifecycle census.
    pub counts: LifecycleCounts,
    /// Summed reachable-node counts.
    pub reachable: u32,
}

#[derive(Debug, Clone)]
struct PendingCommand {
    id: u64,
    cluster: u16,
    node: u32,
    action: Action,
    attempts: u32,
    next_try: SimTime,
    queued_logged: bool,
}

/// The federation head.
#[derive(Debug)]
pub struct FederationHead {
    stale_after: SimDuration,
    retry: RetryPolicy,
    decoder: WireDecoder,
    clusters: BTreeMap<u16, ClusterView>,
    pending: Vec<PendingCommand>,
    next_id: u64,
    audit: BTreeMap<u16, Vec<HeadAuditRow>>,
    seq: u64,
    stats: HeadStats,
}

impl FederationHead {
    /// A head that marks clusters stale after `stale_after` of silence
    /// and retries commands under `retry`.
    pub fn new(stale_after: SimDuration, retry: RetryPolicy) -> Self {
        FederationHead {
            stale_after,
            retry,
            decoder: WireDecoder::new(),
            clusters: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 1,
            audit: BTreeMap::new(),
            seq: 0,
            stats: HeadStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> HeadStats {
        self.stats
    }

    /// The head's view of one cluster (fresh or stale).
    pub fn cluster(&self, cluster: u16) -> Option<&ClusterView> {
        self.clusters.get(&cluster)
    }

    /// All known cluster ids, in order.
    pub fn cluster_ids(&self) -> Vec<u16> {
        self.clusters.keys().copied().collect()
    }

    /// How the head currently regards `cluster`.
    pub fn status(&self, now: SimTime, cluster: u16) -> Option<ClusterStatus> {
        let view = self.clusters.get(&cluster)?;
        let age = now.since(view.last_seen);
        Some(if age > self.stale_after {
            ClusterStatus::Stale(age)
        } else {
            ClusterStatus::Fresh
        })
    }

    /// The fleet-wide aggregate: stale clusters contribute their last
    /// known view rather than vanishing.
    pub fn aggregate(&self, now: SimTime) -> FleetView {
        let mut fleet = FleetView::default();
        for view in self.clusters.values() {
            fleet.clusters += 1;
            if now.since(view.last_seen) > self.stale_after {
                fleet.stale += 1;
            }
            fleet.total_nodes += view.n_nodes;
            fleet.counts.accumulate(&view.counts);
            fleet.reachable += view.reachable;
        }
        fleet
    }

    /// Commands currently queued or awaiting retry for `cluster`.
    pub fn outstanding(&self, cluster: u16) -> usize {
        self.pending.iter().filter(|p| p.cluster == cluster).count()
    }

    /// Ingest one sub→head frame.
    pub fn ingest(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), FedWireError> {
        self.stats.bytes_rx += bytes.len() as u64;
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(e) => {
                self.stats.decode_errors += 1;
                return Err(e);
            }
        };
        self.stats.frames_rx += 1;
        match frame {
            Frame::Hello { cluster, n_nodes } => {
                let known = self.clusters.contains_key(&cluster);
                let view = self.view_mut(cluster, now);
                view.n_nodes = n_nodes;
                view.last_seen = now;
                if !known {
                    self.record(now, cluster, HeadAuditEntry::ClusterJoined { n_nodes });
                }
            }
            Frame::Metrics { cluster, payload } => {
                let report = self
                    .decoder
                    .decode_auto(&payload)
                    .map_err(|_| FedWireError::BadField)?;
                let view = self.view_mut(cluster, now);
                view.last_seen = now;
                for (key, value) in &report.values {
                    if let cwx_monitor::monitor::Value::Num(x) = value {
                        view.metrics.insert(key.to_string(), *x);
                    }
                }
                let counts = {
                    let m = &view.metrics;
                    counts_from_rollup(|k| m.get(k).copied())
                };
                view.counts = counts;
                if let Some(n) = view.metrics.get("fleet.nodes") {
                    view.n_nodes = *n as u32;
                }
                if let Some(r) = view.metrics.get("fleet.reachable") {
                    view.reachable = *r as u32;
                }
            }
            Frame::Alarm {
                cluster,
                alarms,
                dropped,
            } => {
                let view = self.view_mut(cluster, now);
                view.last_seen = now;
                view.alarms_seen += alarms.len() as u64;
                view.alarms_dropped += dropped;
                self.stats.alarms_rx += alarms.len() as u64;
                for a in alarms {
                    self.record(
                        now,
                        cluster,
                        HeadAuditEntry::AlarmRecorded {
                            id: ClusterEventId {
                                cluster,
                                event: EventId(a.event.0),
                            },
                            node: a.node,
                            value: a.value,
                        },
                    );
                }
                if dropped > 0 {
                    self.record(now, cluster, HeadAuditEntry::AlarmsDropped { n: dropped });
                }
            }
            Frame::Resync {
                cluster,
                n_nodes,
                counts,
                reachable,
                applied,
            } => {
                self.stats.resyncs += 1;
                let view = self.view_mut(cluster, now);
                view.last_seen = now;
                view.n_nodes = n_nodes;
                view.counts = counts;
                view.reachable = reachable;
                view.marked_stale = false;
                // in-flight commands the sub already applied before the
                // partition: delivered, not retried
                let mut already = 0usize;
                let mut delivered = Vec::new();
                self.pending.retain(|p| {
                    if p.cluster == cluster && p.attempts > 0 && applied.contains(&p.id) {
                        delivered.push(p.id);
                        already += 1;
                        false
                    } else {
                        true
                    }
                });
                for id in delivered {
                    self.stats.commands_delivered += 1;
                    self.record(
                        now,
                        cluster,
                        HeadAuditEntry::CommandDelivered {
                            id,
                            duplicate: true,
                        },
                    );
                }
                // release the partition queue: everything still pending
                // becomes due immediately
                let mut released = 0usize;
                for p in self.pending.iter_mut().filter(|p| p.cluster == cluster) {
                    p.next_try = now;
                    p.queued_logged = false;
                    released += 1;
                }
                self.record(
                    now,
                    cluster,
                    HeadAuditEntry::ClusterResynced {
                        n_nodes,
                        released,
                        already_applied: already,
                    },
                );
            }
            Frame::CommandAck { cluster, id, fresh } => {
                let before = self.pending.len();
                self.pending.retain(|p| p.id != id);
                if self.pending.len() != before {
                    self.stats.commands_delivered += 1;
                    self.record(
                        now,
                        cluster,
                        HeadAuditEntry::CommandDelivered {
                            id,
                            duplicate: !fresh,
                        },
                    );
                }
                if let Some(view) = self.clusters.get_mut(&cluster) {
                    view.last_seen = now;
                }
            }
            Frame::Command { .. } => return Err(FedWireError::BadType),
        }
        Ok(())
    }

    /// Queue a control-plane command for the owning sub-server. Returns
    /// the command id (the idempotency token the sub dedups on).
    pub fn request_action(&mut self, now: SimTime, cluster: u16, node: u32, action: Action) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(PendingCommand {
            id,
            cluster,
            node,
            action,
            attempts: 0,
            next_try: now,
            queued_logged: false,
        });
        id
    }

    /// Staleness edge detection: audit each Fresh→Stale transition once.
    pub fn tick(&mut self, now: SimTime) {
        let stale_after = self.stale_after;
        let transitions: Vec<u16> = self
            .clusters
            .values_mut()
            .filter_map(|v| {
                let stale = now.since(v.last_seen) > stale_after;
                if stale && !v.marked_stale {
                    v.marked_stale = true;
                    Some(v.cluster)
                } else {
                    if !stale {
                        v.marked_stale = false;
                    }
                    None
                }
            })
            .collect();
        for cluster in transitions {
            self.record(now, cluster, HeadAuditEntry::ClusterStale);
        }
    }

    /// Due command deliveries: encoded `Command` frames per owning
    /// cluster, in `(cluster, command id)` order. Stale clusters keep
    /// their commands queued without burning attempts; commands that
    /// exhaust the retry budget while the cluster is reachable are
    /// dropped loudly (audited + counted).
    pub fn poll(&mut self, now: SimTime) -> Vec<(u16, Vec<u8>)> {
        self.tick(now);
        let mut out = Vec::new();
        let mut failed = Vec::new();
        let mut rows = Vec::new();
        self.pending.sort_by_key(|p| (p.cluster, p.id));
        for p in &mut self.pending {
            let fresh = match self.clusters.get(&p.cluster) {
                Some(v) => now.since(v.last_seen) <= self.stale_after,
                None => false,
            };
            if !fresh {
                if !p.queued_logged {
                    p.queued_logged = true;
                    rows.push((
                        p.cluster,
                        HeadAuditEntry::CommandQueued {
                            id: p.id,
                            node: p.node,
                            action: p.action.clone(),
                        },
                    ));
                }
                continue;
            }
            if p.next_try > now {
                continue;
            }
            if p.attempts >= self.retry.max_attempts {
                failed.push(p.id);
                rows.push((
                    p.cluster,
                    HeadAuditEntry::CommandFailed {
                        id: p.id,
                        attempts: p.attempts,
                    },
                ));
                continue;
            }
            p.attempts += 1;
            p.next_try = now + self.retry.backoff(p.attempts);
            self.stats.commands_sent += 1;
            rows.push((
                p.cluster,
                HeadAuditEntry::CommandIssued {
                    id: p.id,
                    node: p.node,
                    action: p.action.clone(),
                    attempt: p.attempts,
                },
            ));
            out.push((
                p.cluster,
                Frame::Command {
                    id: p.id,
                    node: p.node,
                    action: p.action.clone(),
                }
                .encode(),
            ));
        }
        self.stats.commands_failed += failed.len() as u64;
        self.pending.retain(|p| !failed.contains(&p.id));
        for (cluster, entry) in rows {
            self.record(now, cluster, entry);
        }
        out
    }

    /// Remove a cluster from the federation — the administrative
    /// counterpart of `Server::forget_node`. Aborts its queued
    /// commands (audited) and drops the view; the audit trail itself
    /// is append-only and survives.
    pub fn forget_cluster(&mut self, now: SimTime, cluster: u16) {
        let before = self.pending.len();
        self.pending.retain(|p| p.cluster != cluster);
        let aborted = before - self.pending.len();
        if self.clusters.remove(&cluster).is_some() || aborted > 0 {
            self.record(now, cluster, HeadAuditEntry::ClusterForgotten { aborted });
        }
    }

    /// One cluster's audit trail, in order.
    pub fn cluster_audit(&self, cluster: u16) -> &[HeadAuditRow] {
        self.audit.get(&cluster).map(Vec::as_slice).unwrap_or(&[])
    }

    /// FNV-1a fingerprint of one cluster's audit trail (the
    /// workspace-canonical [`cwx_util::hash`] debug fold).
    pub fn cluster_audit_hash(&self, cluster: u16) -> u64 {
        cwx_util::hash::fnv1a_debug(self.cluster_audit(cluster))
    }

    /// The head audit hash: FNV-1a over the ordered per-cluster hashes
    /// (cluster-id order), so two heads that saw the same per-cluster
    /// histories agree even if interleaving differed.
    pub fn audit_hash(&self) -> u64 {
        use cwx_util::hash::{fnv1a_fold, FNV_OFFSET};
        let mut h = FNV_OFFSET;
        for &cluster in self.audit.keys() {
            let ch = self.cluster_audit_hash(cluster);
            h = fnv1a_fold(h, &cluster.to_le_bytes());
            h = fnv1a_fold(h, &ch.to_le_bytes());
        }
        h
    }

    fn view_mut(&mut self, cluster: u16, now: SimTime) -> &mut ClusterView {
        self.clusters.entry(cluster).or_insert_with(|| ClusterView {
            cluster,
            n_nodes: 0,
            counts: LifecycleCounts::default(),
            reachable: 0,
            last_seen: now,
            alarms_seen: 0,
            alarms_dropped: 0,
            metrics: BTreeMap::new(),
            marked_stale: false,
        })
    }

    fn record(&mut self, now: SimTime, cluster: u16, entry: HeadAuditEntry) {
        let seq = self.seq;
        self.seq += 1;
        self.audit.entry(cluster).or_default().push(HeadAuditRow {
            seq,
            time: now,
            cluster,
            entry,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn head() -> FederationHead {
        FederationHead::new(SimDuration::from_secs(30), RetryPolicy::default())
    }

    #[test]
    fn hello_then_metrics_builds_a_view() {
        let mut h = head();
        let mut link = crate::sub::SubLink::new(4);
        h.ingest(t(0), &link.hello(16)).unwrap();
        let snap = clusterworx::ClusterSnapshot {
            n_nodes: 16,
            counts: LifecycleCounts {
                up: 14,
                off: 2,
                ..Default::default()
            },
            reachable: 14,
            ..Default::default()
        };
        for f in link.export(t(1), &snap) {
            h.ingest(t(1), &f).unwrap();
        }
        let v = h.cluster(4).unwrap();
        assert_eq!(v.n_nodes, 16);
        assert_eq!(v.counts.up, 14);
        assert_eq!(h.aggregate(t(1)).total_nodes, 16);
        assert_eq!(h.status(t(1), 4), Some(ClusterStatus::Fresh));
    }

    #[test]
    fn silence_degrades_to_stale_not_forgotten() {
        let mut h = head();
        let mut link = crate::sub::SubLink::new(1);
        h.ingest(t(0), &link.hello(8)).unwrap();
        h.tick(t(100));
        assert_eq!(
            h.status(t(100), 1),
            Some(ClusterStatus::Stale(SimDuration::from_secs(100)))
        );
        // the last known view still aggregates
        assert_eq!(h.aggregate(t(100)).clusters, 1);
        assert_eq!(h.aggregate(t(100)).stale, 1);
        // exactly one ClusterStale row despite repeated ticks
        h.tick(t(101));
        h.tick(t(102));
        let stale_rows = h
            .cluster_audit(1)
            .iter()
            .filter(|r| r.entry == HeadAuditEntry::ClusterStale)
            .count();
        assert_eq!(stale_rows, 1);
    }

    #[test]
    fn commands_queue_through_partition_and_release_on_resync() {
        let mut h = head();
        let mut link = crate::sub::SubLink::new(2);
        h.ingest(t(0), &link.hello(4)).unwrap();
        // partition: silence past the window, then a command arrives
        h.tick(t(60));
        let id = h.request_action(t(60), 2, 3, Action::Reboot);
        assert!(h.poll(t(61)).is_empty(), "stale cluster: queued, not sent");
        assert_eq!(h.outstanding(2), 1);
        // heal: sub resyncs, command goes out and is acked
        let snap = clusterworx::ClusterSnapshot {
            n_nodes: 4,
            ..Default::default()
        };
        for f in link.reconnect(t(90), &snap) {
            h.ingest(t(90), &f).unwrap();
        }
        let due = h.poll(t(90));
        assert_eq!(due.len(), 1);
        let delivery = link.handle_frame(&due[0].1).unwrap().unwrap();
        assert_eq!(delivery.apply, Some(Action::Reboot));
        h.ingest(t(90), &delivery.ack).unwrap();
        assert_eq!(h.outstanding(2), 0);
        assert_eq!(h.stats().commands_delivered, 1);
        let audit = h.cluster_audit(2);
        assert!(audit
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::CommandQueued { id: i, .. } if i == id)));
        assert!(audit
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::CommandDelivered { id: i, .. } if i == id)));
    }

    #[test]
    fn retries_burn_only_while_fresh_and_fail_loudly() {
        let mut h = FederationHead::new(
            SimDuration::from_secs(1_000_000),
            RetryPolicy {
                base: SimDuration::from_secs(1),
                max_delay: SimDuration::from_secs(4),
                max_attempts: 2,
            },
        );
        let mut link = crate::sub::SubLink::new(1);
        h.ingest(t(0), &link.hello(4)).unwrap();
        h.request_action(t(0), 1, 0, Action::Halt);
        assert_eq!(h.poll(t(0)).len(), 1, "attempt 1");
        assert_eq!(h.poll(t(2)).len(), 1, "attempt 2");
        assert!(h.poll(t(10)).is_empty(), "budget exhausted");
        assert_eq!(h.stats().commands_failed, 1);
        assert_eq!(h.outstanding(1), 0, "failed command is dropped loudly");
        assert!(h
            .cluster_audit(1)
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::CommandFailed { .. })));
    }

    #[test]
    fn forget_cluster_aborts_and_audits() {
        let mut h = head();
        let mut link = crate::sub::SubLink::new(9);
        h.ingest(t(0), &link.hello(4)).unwrap();
        h.request_action(t(1), 9, 0, Action::PowerDown);
        h.forget_cluster(t(2), 9);
        assert!(h.cluster(9).is_none());
        assert_eq!(h.outstanding(9), 0);
        assert!(h
            .cluster_audit(9)
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::ClusterForgotten { aborted: 1 })));
        // audit hash still covers the forgotten cluster's history
        assert_ne!(
            h.audit_hash(),
            FederationHead::new(SimDuration::from_secs(30), RetryPolicy::default()).audit_hash()
        );
    }

    #[test]
    fn audit_rows_carry_cluster_prefix() {
        let mut h = head();
        let mut link = crate::sub::SubLink::new(12);
        h.ingest(t(0), &link.hello(4)).unwrap();
        let row = &h.cluster_audit(12)[0];
        assert!(row.to_string().starts_with("c012 "), "got {row}");
    }
}
