//! The federated simulation: N independent cluster worlds stepped in
//! lock-step epochs under one seed, exchanging federation frames with
//! an in-process head.
//!
//! Determinism discipline: sub-clusters are stepped and drained in
//! cluster-id order every epoch, per-cluster seeds derive from the
//! federation seed with a splitmix-style mix, and every head structure
//! iterates in `BTreeMap` order — so two runs with the same
//! [`FederationConfig`] produce byte-identical audit trails (the CI
//! smoke job asserts the hash). Wall-clock load accounting uses
//! `std::time::Instant` but never feeds back into simulated state.

use std::time::{Duration, Instant};

use clusterworx::{Cluster, ClusterConfig, LifecycleCounts, RetryPolicy, World};
use cwx_events::Action;
use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};

use crate::head::{FederationHead, FleetView};
use crate::sub::SubLink;

/// Build parameters for [`FederationSim`].
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Federation seed; per-cluster seeds derive from it.
    pub seed: u64,
    /// One config per sub-cluster. `cluster_id` and `seed` are
    /// overwritten by the builder to keep identities and streams
    /// consistent.
    pub clusters: Vec<ClusterConfig>,
    /// How often each sub-server exports a rollup upward.
    pub uplink_interval: SimDuration,
    /// Head-side staleness window.
    pub stale_after: SimDuration,
    /// Head-side command retry policy.
    pub retry: RetryPolicy,
}

impl FederationConfig {
    /// A federation of `n_clusters` identical clusters of `nodes_per`
    /// nodes each.
    pub fn uniform(n_clusters: u16, nodes_per: u32, seed: u64) -> Self {
        let clusters = (0..n_clusters)
            .map(|_| ClusterConfig {
                n_nodes: nodes_per,
                ..ClusterConfig::default()
            })
            .collect();
        FederationConfig {
            seed,
            clusters,
            uplink_interval: SimDuration::from_secs(10),
            stale_after: SimDuration::from_secs(40),
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-tier load accounting (experiment E15 reads this).
#[derive(Debug, Clone, Copy, Default)]
pub struct FedLoad {
    /// Wall time the head spent ingesting frames and polling commands.
    pub head_busy: Duration,
    /// Wall time spent stepping the sub-cluster simulations.
    pub sub_busy: Duration,
    /// Simulation events executed across all sub-clusters.
    pub sub_events: u64,
}

struct SubEntry {
    sim: Sim<World>,
    link: SubLink,
    connected: bool,
    /// Needs a full resync on the next connected epoch.
    resync_due: bool,
    /// The introduction frame was sent.
    hello_sent: bool,
}

/// N cluster worlds plus a federation head, stepped in lock-step.
pub struct FederationSim {
    head: FederationHead,
    subs: Vec<SubEntry>,
    now: SimTime,
    uplink: SimDuration,
    load: FedLoad,
}

impl FederationSim {
    /// Wire the federation: one simulated world per cluster config,
    /// cluster ids assigned by index, per-cluster seeds derived from
    /// the federation seed.
    pub fn build(cfg: FederationConfig) -> Self {
        let subs = cfg
            .clusters
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                let id = i as u16;
                c.cluster_id = id;
                c.seed = cfg
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                SubEntry {
                    sim: Cluster::build(c),
                    link: SubLink::new(id),
                    connected: true,
                    resync_due: false,
                    hello_sent: false,
                }
            })
            .collect();
        FederationSim {
            head: FederationHead::new(cfg.stale_after, cfg.retry),
            subs,
            now: SimTime::ZERO,
            uplink: cfg.uplink_interval,
            load: FedLoad::default(),
        }
    }

    /// Current simulated time (epoch-aligned).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The head (fleet view, audit trails, command entry point).
    pub fn head(&self) -> &FederationHead {
        &self.head
    }

    /// Mutable head access (administrative operations like
    /// `forget_cluster`).
    pub fn head_mut(&mut self) -> &mut FederationHead {
        &mut self.head
    }

    /// Per-tier load counters so far.
    pub fn load(&self) -> FedLoad {
        FedLoad {
            sub_events: self.subs.iter().map(|s| s.sim.events_executed()).sum(),
            ..self.load
        }
    }

    /// Total uplink traffic across every sub link: `(frames, bytes)`.
    pub fn uplink_stats(&self) -> (u64, u64) {
        self.subs.iter().fold((0, 0), |(f, b), s| {
            let (lf, lb) = s.link.tx_stats();
            (f + lf, b + lb)
        })
    }

    /// One sub-cluster's simulation (assertions, fault injection).
    pub fn sub_sim(&self, cluster: u16) -> &Sim<World> {
        &self.subs[cluster as usize].sim
    }

    /// Mutable access to one sub-cluster's simulation.
    pub fn sub_sim_mut(&mut self, cluster: u16) -> &mut Sim<World> {
        &mut self.subs[cluster as usize].sim
    }

    /// Sever the uplink of `cluster` (sub keeps running; the head
    /// hears nothing and command frames fall on the floor).
    pub fn disconnect(&mut self, cluster: u16) {
        let s = &mut self.subs[cluster as usize];
        s.connected = false;
        s.resync_due = true;
    }

    /// Restore the uplink; the next epoch performs the full resync
    /// handshake (dictionary reset + `Resync` frame).
    pub fn heal(&mut self, cluster: u16) {
        self.subs[cluster as usize].connected = true;
    }

    /// Queue a command through the head for `node` in `cluster`.
    pub fn request_action(&mut self, cluster: u16, node: u32, action: Action) -> u64 {
        self.head.request_action(self.now, cluster, node, action)
    }

    /// The head's aggregated fleet view as of now.
    pub fn aggregate(&self) -> FleetView {
        self.head.aggregate(self.now)
    }

    /// Ground truth: the summed lifecycle census straight from the
    /// sub-cluster control planes (what the head's aggregate must
    /// match while every link is fresh).
    pub fn sub_counts_sum(&self) -> LifecycleCounts {
        let mut sum = LifecycleCounts::default();
        for s in &self.subs {
            sum.accumulate(&s.sim.world().control.lifecycle().counts());
        }
        sum
    }

    /// The configured uplink (epoch) interval.
    pub fn uplink_interval(&self) -> SimDuration {
        self.uplink
    }

    /// Capture the complete federation state as named canonical
    /// sections: a `fed` section (clock, link states, head audit and
    /// command accounting) plus every sub-cluster's full world capture
    /// with a `sub<id>/` prefix. Strictly read-only — no snapshot
    /// export, no alarm drain — so capturing never perturbs the run.
    ///
    /// Only meaningful at an epoch boundary (which is the only place
    /// [`FederationSim::run_for`] can stop anyway): between epochs the
    /// head's view and the sub-worlds are mutually consistent.
    pub fn capture_sections(&self) -> Vec<(String, Vec<u8>)> {
        use cwx_util::hash::fnv1a_debug;
        use cwx_util::snapshot::{put_str, put_u32, put_u64};
        let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
        let mut b = Vec::new();
        put_u64(&mut b, self.now.as_nanos());
        put_u64(&mut b, self.uplink.as_nanos());
        put_u32(&mut b, self.subs.len() as u32);
        for s in &self.subs {
            b.push(s.connected as u8);
            b.push(s.resync_due as u8);
            b.push(s.hello_sent as u8);
            let (frames, bytes) = s.link.tx_stats();
            put_u64(&mut b, frames);
            put_u64(&mut b, bytes);
        }
        put_str(&mut b, &format!("{:?}", self.head.stats()));
        put_u64(&mut b, self.head.audit_hash());
        for c in self.head.cluster_ids() {
            put_u64(&mut b, self.head.outstanding(c) as u64);
            put_u64(&mut b, fnv1a_debug(&[self.head.status(self.now, c)]));
        }
        sections.push(("fed".to_string(), b));
        for (i, s) in self.subs.iter().enumerate() {
            for (name, data) in clusterworx::snapshot::capture_sections(&s.sim) {
                sections.push((format!("sub{i}/{name}"), data));
            }
        }
        sections
    }

    /// Advance the whole federation by `span`, in uplink-interval
    /// epochs (a final partial epoch covers any remainder).
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        while self.now < deadline {
            let target = (self.now + self.uplink).min(deadline);
            self.epoch(target);
        }
    }

    fn epoch(&mut self, target: SimTime) {
        // 1. step every sub-world to the epoch boundary, in id order
        let t0 = Instant::now();
        for s in &mut self.subs {
            s.sim.run_until(target);
        }
        self.load.sub_busy += t0.elapsed();

        // 2. connected subs export; the head ingests in id order
        for s in &mut self.subs {
            if !s.connected {
                continue;
            }
            let snap = s.sim.world_mut().fed_snapshot();
            let frames = if s.resync_due {
                s.resync_due = false;
                s.hello_sent = true;
                s.link.reconnect(target, &snap)
            } else if !s.hello_sent {
                s.hello_sent = true;
                let mut f = vec![s.link.hello(snap.n_nodes)];
                f.extend(s.link.export(target, &snap));
                f
            } else {
                s.link.export(target, &snap)
            };
            let t1 = Instant::now();
            for f in &frames {
                let _ = self.head.ingest(target, f);
            }
            self.load.head_busy += t1.elapsed();
        }

        // 3. the head marks staleness edges and fans out due commands
        let t2 = Instant::now();
        self.head.tick(target);
        let due = self.head.poll(target);
        self.load.head_busy += t2.elapsed();
        for (cluster, frame) in due {
            let s = &mut self.subs[cluster as usize];
            if !s.connected {
                continue; // lost on the dead link; the head will retry
            }
            if let Ok(Some(delivery)) = s.link.handle_frame(&frame) {
                if let Some(action) = delivery.apply {
                    s.sim
                        .world_mut()
                        .server
                        .request_action(target, delivery.node, action);
                }
                let t3 = Instant::now();
                let _ = self.head.ingest(target, &delivery.ack);
                self.load.head_busy += t3.elapsed();
            }
        }

        self.now = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n_clusters: u16, nodes: u32, seed: u64) -> FederationConfig {
        let mut cfg = FederationConfig::uniform(n_clusters, nodes, seed);
        cfg.uplink_interval = SimDuration::from_secs(10);
        cfg
    }

    #[test]
    fn aggregate_matches_sub_sum() {
        let mut fed = FederationSim::build(small(3, 8, 7));
        fed.run_for(SimDuration::from_secs(300));
        let fleet = fed.aggregate();
        assert_eq!(fleet.clusters, 3);
        assert_eq!(fleet.stale, 0);
        assert_eq!(fleet.total_nodes, 24);
        assert_eq!(fleet.counts, fed.sub_counts_sum());
        assert!(fleet.counts.up > 0, "clusters must have booted");
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run = |seed| {
            let mut fed = FederationSim::build(small(2, 6, seed));
            fed.run_for(SimDuration::from_secs(240));
            (fed.head().audit_hash(), fed.aggregate())
        };
        let (h1, a1) = run(11);
        let (h2, a2) = run(11);
        assert_eq!(h1, h2, "audit hash must reproduce");
        assert_eq!(a1, a2);
    }

    #[test]
    fn command_round_trips_through_the_fan_out() {
        let mut fed = FederationSim::build(small(2, 4, 5));
        fed.run_for(SimDuration::from_secs(200));
        assert_eq!(fed.sub_sim(1).world().up_count(), 4);
        fed.request_action(1, 2, Action::PowerDown);
        fed.run_for(SimDuration::from_secs(120));
        assert_eq!(
            fed.sub_sim(1).world().up_count(),
            3,
            "the head's command must land on cluster 1"
        );
        assert_eq!(fed.sub_sim(0).world().up_count(), 4, "cluster 0 untouched");
        assert_eq!(fed.head().stats().commands_delivered, 1);
    }
}
