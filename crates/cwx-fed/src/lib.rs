//! `cwx-fed` — the federated multi-cluster management plane.
//!
//! The ClusterWorX paper (IPPS 2003) manages one cluster with one
//! server; the scalability literature the roadmap anchors on shows a
//! flat server topping out well below production density. This crate
//! adds the hierarchical tier: per-cluster **sub-servers** run the
//! whole existing stack and export a consolidated rollup upward, and a
//! **federation head** aggregates the fleet, fans control-plane
//! commands back down, and degrades gracefully through partitions.
//!
//! * [`protocol`] — the `CWF1` frame format. The metrics uplink nests
//!   the agents' `CWB1` delta codec one tier up (cluster id in the
//!   node field, per-tier key dictionaries).
//! * [`sub`] — the sub-server uplink: [`cwx_monitor::consolidate`]
//!   delta suppression + stateful wire encoding, reset-on-reconnect,
//!   and idempotent command application.
//! * [`head`] — the fleet view: lifecycle census aggregation, alarm
//!   fan-in with cluster-qualified event ids, `Stale(age)` degradation
//!   instead of forgetting, queued commands with bounded retry, and
//!   per-cluster append-only audit trails whose head hash composes
//!   FNV-1a over the ordered per-cluster hashes.
//! * [`sim`] — N independent cluster worlds stepped in lock-step
//!   epochs under one seed, byte-deterministic.
//! * [`net`] — the realtime twin: `CWF1` over length-prefixed TCP for
//!   `cwx fed serve` / `cwx fed join`.

#![warn(missing_docs)]

pub mod head;
pub mod net;
pub mod protocol;
pub mod sim;
pub mod sub;

pub use head::{
    ClusterStatus, ClusterView, FederationHead, FleetView, HeadAuditEntry, HeadAuditRow, HeadStats,
};
pub use net::{join_loop, HeadServer, JoinStats};
pub use protocol::{FedWireError, Frame, WireAlarm};
pub use sim::{FedLoad, FederationConfig, FederationSim};
pub use sub::{CommandDelivery, SubLink};
