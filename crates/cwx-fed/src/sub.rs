//! The sub-server side of the federation: exports a cluster's rollup
//! upward and applies head commands idempotently.
//!
//! The uplink reuses the exact agent→server machinery one tier up: a
//! [`Consolidator`] suppresses unchanged rollup values and a stateful
//! [`WireEncoder`] delta-encodes what remains into `CWB1` bytes, with
//! the cluster id standing in for the node id. After a disconnect the
//! link resets both (`FLAG_RESET` semantics), so the first frame after
//! reconnect is self-contained — exactly how an agent resynchronises a
//! restarted server.

use std::collections::BTreeSet;

use clusterworx::{ClusterSnapshot, LifecycleCounts};
use cwx_events::Action;
use cwx_monitor::consolidate::Consolidator;
use cwx_monitor::monitor::{MonitorClass, MonitorKey, Value};
use cwx_monitor::transmit::{Report, WireEncoder};
use cwx_util::time::SimTime;

use crate::protocol::{FedWireError, Frame, WireAlarm};

/// Applied-command ids remembered for duplicate detection. Head ids are
/// monotonic, so a bounded window of recent ids is sufficient.
const APPLIED_WINDOW: usize = 1024;

/// The rollup keys a sub-server exports, in wire order.
pub const ROLLUP_KEYS: [&str; 15] = [
    "fleet.nodes",
    "fleet.reachable",
    "lifecycle.off",
    "lifecycle.powering_on",
    "lifecycle.bios",
    "lifecycle.cloning",
    "lifecycle.up",
    "lifecycle.draining",
    "lifecycle.halted",
    "lifecycle.quarantined",
    "lifecycle.failed",
    "server.reports_rx",
    "server.bytes_rx",
    "server.values_rx",
    "server.decode_errors",
];

/// Flatten a snapshot to `(key, value)` rows in [`ROLLUP_KEYS`] order.
pub fn rollup_values(snap: &ClusterSnapshot) -> Vec<(MonitorKey, Value)> {
    let c = snap.counts.as_array();
    let nums: [f64; 15] = [
        snap.n_nodes as f64,
        snap.reachable as f64,
        c[0] as f64,
        c[1] as f64,
        c[2] as f64,
        c[3] as f64,
        c[4] as f64,
        c[5] as f64,
        c[6] as f64,
        c[7] as f64,
        c[8] as f64,
        snap.stats.reports_rx as f64,
        snap.stats.bytes_rx as f64,
        snap.stats.values_rx as f64,
        snap.stats.decode_errors as f64,
    ];
    ROLLUP_KEYS
        .iter()
        .zip(nums)
        .map(|(k, v)| (MonitorKey::new(*k), Value::Num(v)))
        .collect()
}

/// Rebuild a lifecycle census from decoded rollup rows (head side).
pub fn counts_from_rollup(get: impl Fn(&str) -> Option<f64>) -> LifecycleCounts {
    let mut a = [0u32; LifecycleCounts::N];
    for (slot, key) in a.iter_mut().zip(&ROLLUP_KEYS[2..2 + LifecycleCounts::N]) {
        *slot = get(key).unwrap_or(0.0) as u32;
    }
    LifecycleCounts::from_array(a)
}

/// What [`SubLink::handle_frame`] wants the deployment to do.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandDelivery {
    /// Target node.
    pub node: u32,
    /// The action — `None` when the command was a duplicate the link
    /// already applied (the ack is still returned).
    pub apply: Option<Action>,
    /// The ack frame to send back to the head.
    pub ack: Vec<u8>,
}

/// Per-cluster uplink state: consolidation + delta encoding + command
/// idempotency.
#[derive(Debug)]
pub struct SubLink {
    cluster: u16,
    consolidator: Consolidator,
    encoder: WireEncoder,
    seq: u64,
    applied: BTreeSet<u64>,
    frames_tx: u64,
    bytes_tx: u64,
}

impl SubLink {
    /// A fresh link for `cluster`.
    pub fn new(cluster: u16) -> Self {
        SubLink {
            cluster,
            consolidator: Consolidator::new(true),
            encoder: WireEncoder::new(),
            seq: 0,
            applied: BTreeSet::new(),
            frames_tx: 0,
            bytes_tx: 0,
        }
    }

    /// The cluster this link speaks for.
    pub fn cluster(&self) -> u16 {
        self.cluster
    }

    /// Uplink frames sent and their total bytes.
    pub fn tx_stats(&self) -> (u64, u64) {
        (self.frames_tx, self.bytes_tx)
    }

    /// The introduction frame (first thing on a fresh connection).
    pub fn hello(&mut self, n_nodes: u32) -> Vec<u8> {
        self.track(
            Frame::Hello {
                cluster: self.cluster,
                n_nodes,
            }
            .encode(),
        )
    }

    /// Export one snapshot: a consolidated metrics frame (omitted when
    /// every value was suppressed) plus an alarm frame when any fired.
    pub fn export(&mut self, now: SimTime, snap: &ClusterSnapshot) -> Vec<Vec<u8>> {
        let mut frames = Vec::with_capacity(2);
        let mut values = Vec::new();
        for (key, value) in rollup_values(snap) {
            if self.consolidator.offer(&key, MonitorClass::Dynamic, &value) {
                values.push((key, value));
            }
        }
        if !values.is_empty() {
            let report = Report {
                node: self.cluster as u32,
                seq: self.seq,
                time_secs: now.as_secs_f64(),
                values,
            };
            self.seq += 1;
            let payload = self.encoder.encode(&report);
            frames.push(
                Frame::Metrics {
                    cluster: self.cluster,
                    payload,
                }
                .encode(),
            );
        }
        if !snap.alarms.is_empty() || snap.alarms_dropped > 0 {
            frames.push(
                Frame::Alarm {
                    cluster: self.cluster,
                    alarms: snap.alarms.iter().map(WireAlarm::from_firing).collect(),
                    dropped: snap.alarms_dropped,
                }
                .encode(),
            );
        }
        for f in &frames {
            self.frames_tx += 1;
            self.bytes_tx += f.len() as u64;
        }
        frames
    }

    /// Reconnect after a partition: reset the consolidator and the wire
    /// dictionary (the next metrics frame is self-contained), and emit
    /// `Hello` + `Resync` + a full metrics frame so the head can
    /// reconcile without waiting for drift.
    pub fn reconnect(&mut self, now: SimTime, snap: &ClusterSnapshot) -> Vec<Vec<u8>> {
        self.consolidator.reset();
        self.encoder.reset();
        let mut frames = vec![
            self.hello(snap.n_nodes),
            self.track(
                Frame::Resync {
                    cluster: self.cluster,
                    n_nodes: snap.n_nodes,
                    counts: snap.counts,
                    reachable: snap.reachable,
                    applied: self.applied.iter().copied().collect(),
                }
                .encode(),
            ),
        ];
        frames.extend(self.export(now, snap));
        frames
    }

    /// Handle one head→sub frame. Only `Command` is meaningful in this
    /// direction; anything else decodes but is ignored.
    pub fn handle_frame(&mut self, bytes: &[u8]) -> Result<Option<CommandDelivery>, FedWireError> {
        let Frame::Command { id, node, action } = Frame::decode(bytes)? else {
            return Ok(None);
        };
        let fresh = self.applied.insert(id);
        while self.applied.len() > APPLIED_WINDOW {
            let oldest = *self.applied.iter().next().unwrap();
            self.applied.remove(&oldest);
        }
        let ack = self.track(
            Frame::CommandAck {
                cluster: self.cluster,
                id,
                fresh,
            }
            .encode(),
        );
        Ok(Some(CommandDelivery {
            node,
            apply: fresh.then_some(action),
            ack,
        }))
    }

    fn track(&mut self, f: Vec<u8>) -> Vec<u8> {
        self.frames_tx += 1;
        self.bytes_tx += f.len() as u64;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(up: u32, reports: u64) -> ClusterSnapshot {
        ClusterSnapshot {
            n_nodes: up,
            counts: LifecycleCounts {
                up,
                ..Default::default()
            },
            reachable: up,
            stats: clusterworx::ServerStats {
                reports_rx: reports,
                ..Default::default()
            },
            alarms: Vec::new(),
            alarms_dropped: 0,
        }
    }

    #[test]
    fn unchanged_snapshots_are_suppressed() {
        let mut link = SubLink::new(3);
        let first = link.export(SimTime::ZERO, &snap(8, 10));
        assert_eq!(first.len(), 1, "first export carries everything");
        let second = link.export(SimTime::ZERO, &snap(8, 10));
        assert!(second.is_empty(), "identical rollup sends nothing");
        let third = link.export(SimTime::ZERO, &snap(8, 11));
        assert_eq!(third.len(), 1, "changed counter resends");
    }

    #[test]
    fn duplicate_commands_ack_but_do_not_reapply() {
        let mut link = SubLink::new(1);
        let cmd = Frame::Command {
            id: 9,
            node: 4,
            action: Action::Reboot,
        }
        .encode();
        let d1 = link.handle_frame(&cmd).unwrap().unwrap();
        assert_eq!(d1.apply, Some(Action::Reboot));
        let d2 = link.handle_frame(&cmd).unwrap().unwrap();
        assert_eq!(d2.apply, None, "second delivery is a no-op");
        match Frame::decode(&d2.ack).unwrap() {
            Frame::CommandAck { fresh, id, .. } => {
                assert!(!fresh);
                assert_eq!(id, 9);
            }
            other => panic!("unexpected ack {other:?}"),
        }
    }

    #[test]
    fn reconnect_is_self_contained() {
        let mut link = SubLink::new(2);
        let _ = link.export(SimTime::ZERO, &snap(4, 1));
        let frames = link.reconnect(SimTime::ZERO, &snap(4, 2));
        assert!(frames.len() >= 3, "hello + resync + full metrics");
        // the metrics frame decodes with a brand-new decoder (receiver
        // that missed the whole earlier stream)
        let Frame::Metrics { payload, .. } = Frame::decode(&frames[2]).unwrap() else {
            panic!("expected metrics");
        };
        let mut dec = cwx_monitor::transmit::WireDecoder::new();
        let report = dec.decode_auto(&payload).unwrap();
        assert_eq!(report.values.len(), ROLLUP_KEYS.len());
    }
}
