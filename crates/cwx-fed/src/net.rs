//! Realtime transport for the federation: `CWF1` frames over TCP with
//! a little-endian `u32` length prefix.
//!
//! The simulated deployment exchanges frames as byte vectors in
//! process; this module is the deployment twin that `cwx fed serve`
//! (head) and `cwx fed join` (sub-server) run as actual processes.
//! Realtime federation time is wall time since process start projected
//! onto [`SimTime`], so the head's staleness and retry machinery is
//! byte-for-byte the code the simulation exercises.
//!
//! The head runs on the same readiness-driven reactor as agent ingest
//! ([`cwx_net::reactor`]): one thread owns every sub-server uplink,
//! with per-connection [`FrameConn`] state machines and bounded write
//! queues — a sub-server that stops reading its command stream is
//! evicted (it reconnects and resyncs; the join side already handles
//! that), never allowed to wedge the head or balloon its memory.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use clusterworx::{RealTimeDeployment, RetryPolicy};
use cwx_net::frame::{ConnLimits, FrameConn, ReadState};
use cwx_net::reactor::{Interest, Poller, Token, Waker};
use cwx_util::time::{SimDuration, SimTime};

use crate::head::FederationHead;
use crate::protocol::Frame;
use crate::sub::SubLink;

/// Refuse frames above this size (a corrupt length prefix must not
/// allocate gigabytes).
const MAX_FRAME: u32 = 16 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized federation frame",
        ));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// The cluster id a sub→head frame speaks for, if any (used by the
/// head to route command frames back down the right connection).
fn frame_cluster(bytes: &[u8]) -> Option<u16> {
    match Frame::decode(bytes).ok()? {
        Frame::Hello { cluster, .. }
        | Frame::Metrics { cluster, .. }
        | Frame::Alarm { cluster, .. }
        | Frame::Resync { cluster, .. }
        | Frame::CommandAck { cluster, .. } => Some(cluster),
        Frame::Command { .. } => None,
    }
}

/// How often the head's retry/staleness machinery is pumped even with
/// no inbound traffic.
const PUMP_INTERVAL: Duration = Duration::from_millis(100);

const TOK_LISTENER: Token = Token(0);
const TOK_WAKER: Token = Token(1);
const TOK_BASE: usize = 2;

/// A running federation head serving TCP sub-servers.
pub struct HeadServer {
    head: Arc<Mutex<FederationHead>>,
    stop: Arc<AtomicBool>,
    waker: Waker,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
    epoch: Instant,
}

/// One sub-server uplink on the head's reactor.
struct SubConn {
    fc: FrameConn,
    /// The cluster this connection last spoke for (command route).
    cluster: Option<u16>,
}

struct HeadReactor {
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    head: Arc<Mutex<FederationHead>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    conns: Vec<Option<SubConn>>,
    free: Vec<usize>,
    /// cluster id → slab index of the owning connection.
    routes: BTreeMap<u16, usize>,
}

impl HeadReactor {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn run(&mut self) {
        let mut events = Vec::new();
        let mut last_pump = Instant::now();
        while !self.stop.load(Ordering::Relaxed) {
            events.clear();
            if self.poller.poll(&mut events, Some(PUMP_INTERVAL)).is_err() {
                break;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.waker.drain(),
                    Token(t) => {
                        self.conn_ready(t - TOK_BASE, ev.readable || ev.closed, ev.writable)
                    }
                }
            }
            if last_pump.elapsed() >= PUMP_INTERVAL {
                last_pump = Instant::now();
                self.pump_commands();
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let limits = ConnLimits {
                        max_frame: MAX_FRAME as usize,
                        max_read_buffer: MAX_FRAME as usize + 64,
                        // a sub that stops reading may absorb this much
                        // queued command traffic before eviction
                        max_write_buffer: 4 << 20,
                    };
                    let Ok(fc) = FrameConn::new(stream, limits) else {
                        continue;
                    };
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .register(
                            fc.stream().as_raw_fd(),
                            Token(idx + TOK_BASE),
                            Interest::READABLE,
                        )
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(SubConn { fc, cluster: None });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, idx: usize, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if readable {
            let now = self.now();
            let head = &self.head;
            let routes = &mut self.routes;
            let cluster = &mut conn.cluster;
            let outcome = conn.fc.read_frames(|frame| {
                if let Some(c) = frame_cluster(frame) {
                    *cluster = Some(c);
                    routes.insert(c, idx);
                }
                let _ = head.lock().unwrap().ingest(now, frame);
            });
            match outcome {
                Ok(ReadState::Drained) | Ok(ReadState::HasMore) => {}
                Ok(ReadState::Eof) | Err(_) => {
                    self.close(idx, conn);
                    return;
                }
            }
        }
        if writable && self.flush(idx, &mut conn).is_err() {
            self.close(idx, conn);
            return;
        }
        self.conns[idx] = Some(conn);
    }

    /// Flush the connection's write queue; adjusts poll interest to
    /// `READABLE|WRITABLE` only while bytes remain queued.
    fn flush(&mut self, idx: usize, conn: &mut SubConn) -> io::Result<()> {
        let done = conn
            .fc
            .flush()
            .map_err(|e| io::Error::other(e.to_string()))?;
        let interest = if done {
            Interest::READABLE
        } else {
            Interest::BOTH
        };
        self.poller.reregister(
            conn.fc.stream().as_raw_fd(),
            Token(idx + TOK_BASE),
            interest,
        )
    }

    /// Push due command frames down their owning connections. A route
    /// whose connection is gone is dropped (the head's retry machinery
    /// re-queues the command; the sub resyncs on reconnect). A sub
    /// whose write queue overflows is a slow consumer: evicted.
    fn pump_commands(&mut self) {
        let now = self.now();
        let due = self.head.lock().unwrap().poll(now);
        for (cluster, frame) in due {
            let Some(&idx) = self.routes.get(&cluster) else {
                continue;
            };
            let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
                self.routes.remove(&cluster);
                continue;
            };
            let ok = conn.fc.queue_frame(&frame).is_ok() && self.flush(idx, &mut conn).is_ok();
            if ok {
                self.conns[idx] = Some(conn);
            } else {
                self.close(idx, conn);
            }
        }
    }

    fn close(&mut self, idx: usize, conn: SubConn) {
        let _ = self.poller.deregister(conn.fc.stream().as_raw_fd());
        if let Some(c) = conn.cluster {
            if self.routes.get(&c) == Some(&idx) {
                self.routes.remove(&c);
            }
        }
        self.free.push(idx);
        drop(conn);
    }
}

impl HeadServer {
    /// Bind `listen` (e.g. `127.0.0.1:7411`; port 0 picks a free one)
    /// and start the reactor thread (accept + reads + command pump).
    pub fn start(listen: &str, stale_after: SimDuration, retry: RetryPolicy) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // sub-clusters reconnect in lockstep after a head failover
        let _ = cwx_net::reactor::widen_listen_backlog(&listener, 1024);
        let head = Arc::new(Mutex::new(FederationHead::new(stale_after, retry)));
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let waker = Waker::new()?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOK_LISTENER, Interest::READABLE)?;
        poller.register(waker.as_raw_fd(), TOK_WAKER, Interest::READABLE)?;
        let mut reactor = HeadReactor {
            listener,
            poller,
            waker: waker.clone(),
            head: Arc::clone(&head),
            stop: Arc::clone(&stop),
            epoch,
            conns: Vec::new(),
            free: Vec::new(),
            routes: BTreeMap::new(),
        };
        let threads = vec![thread::spawn(move || reactor.run())];
        Ok(HeadServer {
            head,
            stop,
            waker,
            threads,
            addr,
            epoch,
        })
    }

    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared head, for fleet-view queries and command injection.
    pub fn head(&self) -> Arc<Mutex<FederationHead>> {
        Arc::clone(&self.head)
    }

    /// Wall time since the head started, projected onto federation
    /// time (what `aggregate`/`status` expect as `now`).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Stop the reactor; open uplinks are dropped (sub-servers
    /// reconnect and resync if a new head comes up).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Counters a join loop reports on exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Uplink export rounds performed.
    pub exports: u64,
    /// Commands received and applied.
    pub commands: u64,
    /// Times the TCP session was re-established (each performed the
    /// full dictionary-reset resync handshake).
    pub reconnects: u64,
}

/// Run a sub-server uplink against `head_addr` until `stop` is set:
/// export a consolidated rollup every `interval`, apply incoming head
/// commands to the deployment, and resync after every reconnect.
pub fn join_loop(
    dep: &RealTimeDeployment,
    cluster: u16,
    head_addr: &str,
    interval: Duration,
    stop: &AtomicBool,
) -> io::Result<JoinStats> {
    let mut link = SubLink::new(cluster);
    let mut stats = JoinStats::default();
    let epoch = Instant::now();
    let now = |epoch: &Instant| SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
    let mut first = true;

    'session: while !stop.load(Ordering::Relaxed) {
        let mut stream = match TcpStream::connect(head_addr) {
            Ok(s) => s,
            Err(e) if first => return Err(e),
            Err(_) => {
                thread::sleep(interval);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let snap = dep.fed_snapshot();
        let frames = if first {
            first = false;
            let mut f = vec![link.hello(snap.n_nodes)];
            f.extend(link.export(now(&epoch), &snap));
            f
        } else {
            stats.reconnects += 1;
            link.reconnect(now(&epoch), &snap)
        };
        for f in &frames {
            if write_frame(&mut stream, f).is_err() {
                continue 'session;
            }
        }
        let mut last_export = Instant::now();
        while !stop.load(Ordering::Relaxed) {
            // drain incoming commands until the read window closes
            match read_frame(&mut stream) {
                Ok(frame) => {
                    if let Ok(Some(delivery)) = link.handle_frame(&frame) {
                        if let Some(action) = delivery.apply {
                            stats.commands += 1;
                            dep.server()
                                .write()
                                .request_action(now(&epoch), delivery.node, action);
                        }
                        if write_frame(&mut stream, &delivery.ack).is_err() {
                            continue 'session;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => continue 'session,
            }
            if last_export.elapsed() >= interval {
                last_export = Instant::now();
                stats.exports += 1;
                let snap = dep.fed_snapshot();
                for f in link.export(now(&epoch), &snap) {
                    if write_frame(&mut stream, &f).is_err() {
                        continue 'session;
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_frame(&mut s).unwrap()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let frame = Frame::Hello {
            cluster: 3,
            n_nodes: 99,
        }
        .encode();
        write_frame(&mut c, &frame).unwrap();
        assert_eq!(t.join().unwrap(), frame);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert!(read_frame(&mut bytes).is_err());
    }
}
