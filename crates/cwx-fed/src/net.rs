//! Realtime transport for the federation: `CWF1` frames over TCP with
//! a little-endian `u32` length prefix.
//!
//! The simulated deployment exchanges frames as byte vectors in
//! process; this module is the deployment twin that `cwx fed serve`
//! (head) and `cwx fed join` (sub-server) run as actual processes.
//! Realtime federation time is wall time since process start projected
//! onto [`SimTime`], so the head's staleness and retry machinery is
//! byte-for-byte the code the simulation exercises.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use clusterworx::{RealTimeDeployment, RetryPolicy};
use cwx_util::time::{SimDuration, SimTime};

use crate::head::FederationHead;
use crate::protocol::Frame;
use crate::sub::SubLink;

/// Refuse frames above this size (a corrupt length prefix must not
/// allocate gigabytes).
const MAX_FRAME: u32 = 16 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized federation frame",
        ));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// The cluster id a sub→head frame speaks for, if any (used by the
/// head to route command frames back down the right connection).
fn frame_cluster(bytes: &[u8]) -> Option<u16> {
    match Frame::decode(bytes).ok()? {
        Frame::Hello { cluster, .. }
        | Frame::Metrics { cluster, .. }
        | Frame::Alarm { cluster, .. }
        | Frame::Resync { cluster, .. }
        | Frame::CommandAck { cluster, .. } => Some(cluster),
        Frame::Command { .. } => None,
    }
}

/// A running federation head serving TCP sub-servers.
pub struct HeadServer {
    head: Arc<Mutex<FederationHead>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
    epoch: Instant,
}

impl HeadServer {
    /// Bind `listen` (e.g. `127.0.0.1:7411`; port 0 picks a free one)
    /// and start the accept loop plus the command pump.
    pub fn start(listen: &str, stale_after: SimDuration, retry: RetryPolicy) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let head = Arc::new(Mutex::new(FederationHead::new(stale_after, retry)));
        let stop = Arc::new(AtomicBool::new(false));
        let routes: Arc<Mutex<std::collections::BTreeMap<u16, TcpStream>>> =
            Arc::new(Mutex::new(std::collections::BTreeMap::new()));
        let epoch = Instant::now();
        let mut threads = Vec::new();

        // accept loop: one reader thread per sub-server connection
        {
            let head = Arc::clone(&head);
            let stop = Arc::clone(&stop);
            let routes = Arc::clone(&routes);
            threads.push(thread::spawn(move || {
                let mut readers: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let head = Arc::clone(&head);
                            let stop = Arc::clone(&stop);
                            let routes = Arc::clone(&routes);
                            readers.push(thread::spawn(move || {
                                let _ = stream.set_nodelay(true);
                                let mut rd = match stream.try_clone() {
                                    Ok(s) => s,
                                    Err(_) => return,
                                };
                                while !stop.load(Ordering::Relaxed) {
                                    let frame = match read_frame(&mut rd) {
                                        Ok(f) => f,
                                        Err(_) => break,
                                    };
                                    if let Some(cluster) = frame_cluster(&frame) {
                                        if let (Ok(mut r), Ok(s)) =
                                            (routes.lock(), stream.try_clone())
                                        {
                                            r.insert(cluster, s);
                                        }
                                    }
                                    let now =
                                        SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                                    let _ = head.lock().unwrap().ingest(now, &frame);
                                }
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
                for r in readers {
                    let _ = r.join();
                }
            }));
        }

        // command pump: poll the head and push due frames down the
        // owning connection
        {
            let head = Arc::clone(&head);
            let stop = Arc::clone(&stop);
            let routes = Arc::clone(&routes);
            threads.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                    let due = head.lock().unwrap().poll(now);
                    for (cluster, frame) in due {
                        let mut routes = routes.lock().unwrap();
                        let dead = match routes.get_mut(&cluster) {
                            Some(stream) => write_frame(stream, &frame).is_err(),
                            None => false,
                        };
                        if dead {
                            routes.remove(&cluster);
                        }
                    }
                    thread::sleep(Duration::from_millis(100));
                }
            }));
        }

        Ok(HeadServer {
            head,
            stop,
            threads,
            addr,
            epoch,
        })
    }

    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared head, for fleet-view queries and command injection.
    pub fn head(&self) -> Arc<Mutex<FederationHead>> {
        Arc::clone(&self.head)
    }

    /// Wall time since the head started, projected onto federation
    /// time (what `aggregate`/`status` expect as `now`).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Stop the accept loop and the pump; running reader threads
    /// unwind when their peers hang up.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Counters a join loop reports on exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Uplink export rounds performed.
    pub exports: u64,
    /// Commands received and applied.
    pub commands: u64,
    /// Times the TCP session was re-established (each performed the
    /// full dictionary-reset resync handshake).
    pub reconnects: u64,
}

/// Run a sub-server uplink against `head_addr` until `stop` is set:
/// export a consolidated rollup every `interval`, apply incoming head
/// commands to the deployment, and resync after every reconnect.
pub fn join_loop(
    dep: &RealTimeDeployment,
    cluster: u16,
    head_addr: &str,
    interval: Duration,
    stop: &AtomicBool,
) -> io::Result<JoinStats> {
    let mut link = SubLink::new(cluster);
    let mut stats = JoinStats::default();
    let epoch = Instant::now();
    let now = |epoch: &Instant| SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
    let mut first = true;

    'session: while !stop.load(Ordering::Relaxed) {
        let mut stream = match TcpStream::connect(head_addr) {
            Ok(s) => s,
            Err(e) if first => return Err(e),
            Err(_) => {
                thread::sleep(interval);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let snap = dep.fed_snapshot();
        let frames = if first {
            first = false;
            let mut f = vec![link.hello(snap.n_nodes)];
            f.extend(link.export(now(&epoch), &snap));
            f
        } else {
            stats.reconnects += 1;
            link.reconnect(now(&epoch), &snap)
        };
        for f in &frames {
            if write_frame(&mut stream, f).is_err() {
                continue 'session;
            }
        }
        let mut last_export = Instant::now();
        while !stop.load(Ordering::Relaxed) {
            // drain incoming commands until the read window closes
            match read_frame(&mut stream) {
                Ok(frame) => {
                    if let Ok(Some(delivery)) = link.handle_frame(&frame) {
                        if let Some(action) = delivery.apply {
                            stats.commands += 1;
                            dep.server()
                                .write()
                                .request_action(now(&epoch), delivery.node, action);
                        }
                        if write_frame(&mut stream, &delivery.ack).is_err() {
                            continue 'session;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => continue 'session,
            }
            if last_export.elapsed() >= interval {
                last_export = Instant::now();
                stats.exports += 1;
                let snap = dep.fed_snapshot();
                for f in link.export(now(&epoch), &snap) {
                    if write_frame(&mut stream, &f).is_err() {
                        continue 'session;
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_frame(&mut s).unwrap()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let frame = Frame::Hello {
            cluster: 3,
            n_nodes: 99,
        }
        .encode();
        write_frame(&mut c, &frame).unwrap();
        assert_eq!(t.join().unwrap(), frame);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert!(read_frame(&mut bytes).is_err());
    }
}
