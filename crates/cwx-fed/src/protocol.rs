//! The `CWF1` federation wire protocol.
//!
//! Frames flow between a sub-server (one per cluster) and the
//! federation head. The metrics uplink deliberately carries an opaque
//! `CWB1` payload — the same stateful delta codec the agents use to
//! talk to their server, reused one tier up with the cluster id in the
//! report's `node` field, so each tier keeps its own key dictionary.
//!
//! Framing: `b"CWF1"`, a type byte, varint-encoded body, and a CRC-32
//! of everything before it. The realtime transport additionally wraps
//! each frame in a little-endian `u32` length prefix (see
//! [`crate::net`]); the simulation passes frames as byte vectors
//! directly.

use cwx_events::engine::{EventId, Firing};
use cwx_events::Action;
use cwx_store::codec::{self, crc32};
use cwx_util::time::SimTime;

use clusterworx::LifecycleCounts;

/// Frame magic.
pub const MAGIC: &[u8; 4] = b"CWF1";

const T_HELLO: u8 = 1;
const T_METRICS: u8 = 2;
const T_ALARM: u8 = 3;
const T_RESYNC: u8 = 4;
const T_COMMAND: u8 = 5;
const T_COMMAND_ACK: u8 = 6;

/// An alarm forwarded upward: the firing minus its action (the head
/// records alarms; the owning sub-server already executed the action).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAlarm {
    /// Event id within the originating cluster.
    pub event: EventId,
    /// Node the event fired on.
    pub node: u32,
    /// When it fired (sub-server clock).
    pub time: SimTime,
    /// The observed value that tripped the rule.
    pub value: f64,
}

impl WireAlarm {
    /// Project a server firing onto the wire form.
    pub fn from_firing(f: &Firing) -> WireAlarm {
        WireAlarm {
            event: f.event,
            node: f.node,
            time: f.time,
            value: f.value,
        }
    }
}

/// A federation frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Sub-server introduces (or re-introduces) itself.
    Hello {
        /// Originating cluster.
        cluster: u16,
        /// Nodes it manages.
        n_nodes: u32,
    },
    /// Consolidated metrics uplink: an opaque `CWB1` frame whose
    /// report `node` field is the cluster id.
    Metrics {
        /// Originating cluster.
        cluster: u16,
        /// The `CWB1` bytes.
        payload: Vec<u8>,
    },
    /// Alarm fan-in: firings raised since the previous uplink.
    Alarm {
        /// Originating cluster.
        cluster: u16,
        /// The firings.
        alarms: Vec<WireAlarm>,
        /// Firings lost to the sub-server's bounded feed buffer.
        dropped: u64,
    },
    /// Full-state resync after a reconnect: the head replaces its view
    /// of the cluster wholesale and releases queued commands.
    Resync {
        /// Originating cluster.
        cluster: u16,
        /// Nodes it manages.
        n_nodes: u32,
        /// Lifecycle census.
        counts: LifecycleCounts,
        /// Nodes currently reachable.
        reachable: u32,
        /// Command ids this sub-server has already applied — the head
        /// marks matching in-flight commands delivered instead of
        /// re-sending them (idempotent redelivery).
        applied: Vec<u64>,
    },
    /// Head → sub-server: execute an action on a node.
    Command {
        /// Head-assigned command id (idempotency token).
        id: u64,
        /// Target node within the cluster.
        node: u32,
        /// What to do.
        action: Action,
    },
    /// Sub-server → head: command received (whether freshly applied or
    /// recognised as a duplicate).
    CommandAck {
        /// Originating cluster.
        cluster: u16,
        /// The command id being acknowledged.
        id: u64,
        /// False when the sub had already applied this id.
        fresh: bool,
    },
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FedWireError {
    /// Missing or wrong magic.
    BadMagic,
    /// Unknown frame type byte.
    BadType,
    /// Frame shorter than its own encoding claims.
    Truncated,
    /// CRC mismatch.
    BadChecksum,
    /// A varint or string field failed to decode.
    BadField,
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    codec::put_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, FedWireError> {
    let n = codec::get_uvarint(buf, pos).map_err(|_| FedWireError::BadField)? as usize;
    let end = pos.checked_add(n).ok_or(FedWireError::Truncated)?;
    if end > buf.len() {
        return Err(FedWireError::Truncated);
    }
    let b = buf[*pos..end].to_vec();
    *pos = end;
    Ok(b)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, FedWireError> {
    codec::get_uvarint(buf, pos).map_err(|_| FedWireError::BadField)
}

fn put_action(out: &mut Vec<u8>, action: &Action) {
    match action {
        Action::None => codec::put_uvarint(out, 0),
        Action::PowerDown => codec::put_uvarint(out, 1),
        Action::Reboot => codec::put_uvarint(out, 2),
        Action::Halt => codec::put_uvarint(out, 3),
        Action::Plugin(name) => {
            codec::put_uvarint(out, 4);
            put_bytes(out, name.as_bytes());
        }
    }
}

fn get_action(buf: &[u8], pos: &mut usize) -> Result<Action, FedWireError> {
    match get_u64(buf, pos)? {
        0 => Ok(Action::None),
        1 => Ok(Action::PowerDown),
        2 => Ok(Action::Reboot),
        3 => Ok(Action::Halt),
        4 => {
            let name = get_bytes(buf, pos)?;
            Ok(Action::Plugin(
                String::from_utf8(name).map_err(|_| FedWireError::BadField)?,
            ))
        }
        _ => Err(FedWireError::BadField),
    }
}

impl Frame {
    /// Encode to `CWF1` bytes (magic, type, body, CRC-32).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        match self {
            Frame::Hello { cluster, n_nodes } => {
                out.push(T_HELLO);
                codec::put_uvarint(&mut out, *cluster as u64);
                codec::put_uvarint(&mut out, *n_nodes as u64);
            }
            Frame::Metrics { cluster, payload } => {
                out.push(T_METRICS);
                codec::put_uvarint(&mut out, *cluster as u64);
                put_bytes(&mut out, payload);
            }
            Frame::Alarm {
                cluster,
                alarms,
                dropped,
            } => {
                out.push(T_ALARM);
                codec::put_uvarint(&mut out, *cluster as u64);
                codec::put_uvarint(&mut out, *dropped);
                codec::put_uvarint(&mut out, alarms.len() as u64);
                for a in alarms {
                    codec::put_uvarint(&mut out, a.event.0 as u64);
                    codec::put_uvarint(&mut out, a.node as u64);
                    codec::put_uvarint(&mut out, a.time.as_nanos());
                    codec::put_uvarint(&mut out, a.value.to_bits());
                }
            }
            Frame::Resync {
                cluster,
                n_nodes,
                counts,
                reachable,
                applied,
            } => {
                out.push(T_RESYNC);
                codec::put_uvarint(&mut out, *cluster as u64);
                codec::put_uvarint(&mut out, *n_nodes as u64);
                for c in counts.as_array() {
                    codec::put_uvarint(&mut out, c as u64);
                }
                codec::put_uvarint(&mut out, *reachable as u64);
                codec::put_uvarint(&mut out, applied.len() as u64);
                for id in applied {
                    codec::put_uvarint(&mut out, *id);
                }
            }
            Frame::Command { id, node, action } => {
                out.push(T_COMMAND);
                codec::put_uvarint(&mut out, *id);
                codec::put_uvarint(&mut out, *node as u64);
                put_action(&mut out, action);
            }
            Frame::CommandAck { cluster, id, fresh } => {
                out.push(T_COMMAND_ACK);
                codec::put_uvarint(&mut out, *cluster as u64);
                codec::put_uvarint(&mut out, *id);
                codec::put_uvarint(&mut out, *fresh as u64);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode from `CWF1` bytes.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FedWireError> {
        if bytes.len() < MAGIC.len() + 1 + 4 {
            return Err(FedWireError::Truncated);
        }
        if &bytes[..4] != MAGIC {
            return Err(FedWireError::BadMagic);
        }
        let body_end = bytes.len() - 4;
        let want = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
        if crc32(&bytes[..body_end]) != want {
            return Err(FedWireError::BadChecksum);
        }
        let buf = &bytes[..body_end];
        let mut pos = 5;
        let frame = match buf[4] {
            T_HELLO => Frame::Hello {
                cluster: get_u64(buf, &mut pos)? as u16,
                n_nodes: get_u64(buf, &mut pos)? as u32,
            },
            T_METRICS => Frame::Metrics {
                cluster: get_u64(buf, &mut pos)? as u16,
                payload: get_bytes(buf, &mut pos)?,
            },
            T_ALARM => {
                let cluster = get_u64(buf, &mut pos)? as u16;
                let dropped = get_u64(buf, &mut pos)?;
                let n = get_u64(buf, &mut pos)? as usize;
                if n > body_end {
                    return Err(FedWireError::Truncated);
                }
                let mut alarms = Vec::with_capacity(n);
                for _ in 0..n {
                    alarms.push(WireAlarm {
                        event: EventId(get_u64(buf, &mut pos)? as u32),
                        node: get_u64(buf, &mut pos)? as u32,
                        time: SimTime::from_nanos(get_u64(buf, &mut pos)?),
                        value: f64::from_bits(get_u64(buf, &mut pos)?),
                    });
                }
                Frame::Alarm {
                    cluster,
                    alarms,
                    dropped,
                }
            }
            T_RESYNC => {
                let cluster = get_u64(buf, &mut pos)? as u16;
                let n_nodes = get_u64(buf, &mut pos)? as u32;
                let mut a = [0u32; LifecycleCounts::N];
                for slot in &mut a {
                    *slot = get_u64(buf, &mut pos)? as u32;
                }
                let reachable = get_u64(buf, &mut pos)? as u32;
                let n = get_u64(buf, &mut pos)? as usize;
                if n > body_end {
                    return Err(FedWireError::Truncated);
                }
                let mut applied = Vec::with_capacity(n);
                for _ in 0..n {
                    applied.push(get_u64(buf, &mut pos)?);
                }
                Frame::Resync {
                    cluster,
                    n_nodes,
                    counts: LifecycleCounts::from_array(a),
                    reachable,
                    applied,
                }
            }
            T_COMMAND => Frame::Command {
                id: get_u64(buf, &mut pos)?,
                node: get_u64(buf, &mut pos)? as u32,
                action: get_action(buf, &mut pos)?,
            },
            T_COMMAND_ACK => Frame::CommandAck {
                cluster: get_u64(buf, &mut pos)? as u16,
                id: get_u64(buf, &mut pos)?,
                fresh: get_u64(buf, &mut pos)? != 0,
            },
            _ => return Err(FedWireError::BadType),
        };
        if pos != body_end {
            return Err(FedWireError::BadField);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn all_frames_round_trip() {
        roundtrip(Frame::Hello {
            cluster: 7,
            n_nodes: 2500,
        });
        roundtrip(Frame::Metrics {
            cluster: 1,
            payload: b"CWB1 opaque".to_vec(),
        });
        roundtrip(Frame::Alarm {
            cluster: 3,
            alarms: vec![WireAlarm {
                event: EventId(2),
                node: 99,
                time: SimTime::ZERO + SimDuration::from_secs(12),
                value: 87.5,
            }],
            dropped: 4,
        });
        roundtrip(Frame::Resync {
            cluster: 2,
            n_nodes: 100,
            counts: LifecycleCounts {
                up: 90,
                off: 10,
                ..Default::default()
            },
            reachable: 90,
            applied: vec![1, 5, 9],
        });
        roundtrip(Frame::Command {
            id: 42,
            node: 17,
            action: Action::Plugin("drain.sh".into()),
        });
        roundtrip(Frame::CommandAck {
            cluster: 2,
            id: 42,
            fresh: true,
        });
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = Frame::Hello {
            cluster: 1,
            n_nodes: 10,
        }
        .encode();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x40;
            assert!(Frame::decode(&bytes).is_err(), "flip at {i} undetected");
            bytes[i] ^= 0x40;
        }
        for n in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..n]).is_err(), "truncation at {n}");
        }
    }
}
