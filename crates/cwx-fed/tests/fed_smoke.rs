//! Federation smoke: head + 3 sub-servers for 600 simulated seconds.
//! Asserts the aggregated node count, exact lifecycle-census agreement
//! with ground truth, and audit-hash reproducibility across two
//! identical runs — the same properties the CI federation job checks
//! through the `cwx fed sim` command line.

use cwx_fed::{FederationConfig, FederationSim};
use cwx_util::time::SimDuration;

fn run(seed: u64) -> (u32, u64, cwx_fed::FleetView) {
    let mut cfg = FederationConfig::uniform(3, 16, seed);
    cfg.uplink_interval = SimDuration::from_secs(10);
    let mut f = FederationSim::build(cfg);
    f.run_for(SimDuration::from_secs(600));
    let fleet = f.aggregate();
    assert_eq!(
        fleet.counts,
        f.sub_counts_sum(),
        "head census must equal the sum of sub-server censuses"
    );
    (fleet.total_nodes, f.head().audit_hash(), fleet)
}

#[test]
fn head_plus_three_subs_600s() {
    let (nodes, hash1, fleet) = run(99);
    assert_eq!(nodes, 48, "3 clusters x 16 nodes aggregate");
    assert_eq!(fleet.clusters, 3);
    assert_eq!(fleet.stale, 0);
    assert_eq!(fleet.counts.up, 48, "everything boots within 600s");
    let (_, hash2, _) = run(99);
    assert_eq!(hash1, hash2, "byte-identical audit hash across two runs");
}

#[test]
fn realtime_head_and_subs_over_tcp() {
    use clusterworx::{RealTimeConfig, RealTimeDeployment, RetryPolicy};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let head = cwx_fed::HeadServer::start(
        "127.0.0.1:0",
        SimDuration::from_secs(5),
        RetryPolicy::default(),
    )
    .expect("bind head");
    let addr = head.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));

    let joins: Vec<_> = (0..2u16)
        .map(|cluster| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let dep = RealTimeDeployment::start(RealTimeConfig {
                    n_nodes: 4,
                    interval: Duration::from_millis(20),
                    control_interval: Duration::from_millis(20),
                    boot_delay: Duration::from_millis(30),
                    ..RealTimeConfig::default()
                });
                let stats =
                    cwx_fed::join_loop(&dep, cluster, &addr, Duration::from_millis(100), &stop)
                        .expect("join head");
                dep.shutdown();
                stats
            })
        })
        .collect();

    // let several export rounds land
    std::thread::sleep(Duration::from_millis(1200));
    let fleet = {
        let h = head.head();
        let now = head.now();
        let guard = h.lock().unwrap();
        guard.aggregate(now)
    };
    stop.store(true, Ordering::Relaxed);
    let mut exports = 0;
    for j in joins {
        exports += j.join().unwrap().exports;
    }
    head.shutdown();
    assert_eq!(fleet.clusters, 2, "both sub-servers joined over TCP");
    assert_eq!(fleet.total_nodes, 8);
    assert!(exports > 0, "uplink rounds ran");
}
