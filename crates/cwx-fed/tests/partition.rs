//! Partition-tolerance acceptance: kill a sub-server's uplink
//! mid-campaign, assert the head serves a `Stale` view (not an empty
//! one), queues commands without burning retry attempts, and
//! reconciles on heal with zero silent drops.

use cwx_events::Action;
use cwx_fed::{ClusterStatus, FederationConfig, FederationSim, HeadAuditEntry};
use cwx_util::time::SimDuration;

fn fed() -> FederationSim {
    let mut cfg = FederationConfig::uniform(3, 8, 1729);
    cfg.uplink_interval = SimDuration::from_secs(10);
    cfg.stale_after = SimDuration::from_secs(35);
    FederationSim::build(cfg)
}

#[test]
fn kill_heal_cycle_reconciles_without_silent_drops() {
    let mut f = fed();
    // boot everything and let the first uplinks land
    f.run_for(SimDuration::from_secs(300));
    assert_eq!(f.aggregate().counts.up, 24, "all three clusters booted");
    let up_before = f.head().cluster(1).unwrap().counts.up;

    // --- kill cluster 1's uplink mid-campaign
    f.disconnect(1);
    f.run_for(SimDuration::from_secs(120));

    // the head serves the stale view rather than forgetting the cluster
    match f.head().status(f.now(), 1) {
        Some(ClusterStatus::Stale(age)) => {
            assert!(age >= SimDuration::from_secs(60), "age tracks the outage")
        }
        other => panic!("expected a stale view, got {other:?}"),
    }
    let view = f.head().cluster(1).expect("view survives the partition");
    assert_eq!(view.counts.up, up_before, "last known census is served");
    assert_eq!(f.aggregate().clusters, 3);
    assert_eq!(f.aggregate().stale, 1);

    // --- commands for the dark cluster queue instead of failing
    let id = f.request_action(1, 3, Action::PowerDown);
    f.run_for(SimDuration::from_secs(60));
    assert_eq!(f.head().outstanding(1), 1, "command held in the queue");
    assert_eq!(
        f.head().stats().commands_failed,
        0,
        "partition must not burn the retry budget"
    );
    assert!(
        f.head()
            .cluster_audit(1)
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::CommandQueued { id: i, .. } if i == id)),
        "queueing is audited, not silent"
    );
    assert_eq!(
        f.sub_sim(1).world().up_count(),
        8,
        "the dark cluster has not seen the command yet"
    );

    // --- heal: resync handshake, queued command delivered exactly once
    f.heal(1);
    f.run_for(SimDuration::from_secs(120));
    assert_eq!(f.head().status(f.now(), 1), Some(ClusterStatus::Fresh));
    assert_eq!(f.head().outstanding(1), 0, "queue drained on heal");
    assert_eq!(f.head().stats().commands_delivered, 1);
    assert_eq!(f.head().stats().commands_failed, 0, "zero drops");
    assert_eq!(
        f.sub_sim(1).world().up_count(),
        7,
        "the queued power-down landed after the heal"
    );
    let audit = f.head().cluster_audit(1);
    assert!(audit
        .iter()
        .any(|r| matches!(r.entry, HeadAuditEntry::ClusterResynced { .. })));
    assert!(audit
        .iter()
        .any(|r| matches!(r.entry, HeadAuditEntry::CommandDelivered { id: i, .. } if i == id)));

    // the healed census flows again and the aggregate matches ground truth
    assert_eq!(f.aggregate().stale, 0);
    assert_eq!(f.aggregate().counts, f.sub_counts_sum());
}

#[test]
fn forget_cluster_removes_view_but_keeps_audit() {
    let mut f = fed();
    f.run_for(SimDuration::from_secs(200));
    assert_eq!(f.aggregate().clusters, 3);
    let now = f.now();
    let head = f.head_mut();
    head.request_action(now, 2, 0, Action::Halt);
    head.forget_cluster(now, 2);
    assert!(head.cluster(2).is_none());
    assert_eq!(head.outstanding(2), 0);
    let audit = head.cluster_audit(2);
    assert!(
        audit
            .iter()
            .any(|r| matches!(r.entry, HeadAuditEntry::ClusterForgotten { aborted: 1 })),
        "forgetting is a loud, audited act"
    );
    assert!(
        !audit.is_empty(),
        "the per-cluster trail is append-only and survives"
    );
    assert_eq!(f.aggregate().clusters, 2);
}
