//! Criterion benches for the `cwx-store` engine: ingest throughput,
//! range-query latency and crash-recovery (reopen) time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::Store;
use cwx_util::time::SimTime;
use std::hint::black_box;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cwx-store-bench-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fill(store: &DiskStore, nodes: u32, per_series: u64, offset: u64) {
    for node in 0..nodes {
        for i in offset..offset + per_series {
            let t = SimTime::from_nanos(1 + i * 5_000_000_000);
            store.append(node, "cpu.util_pct", t, (i % 101) as f64);
            store.append(node, "load.one", t, (i % 7) as f64 * 0.5);
        }
    }
}

fn ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_ingest");
    const BATCH: u64 = 10_000;
    g.throughput(Throughput::Elements(BATCH));
    for threads in [1u32, 4] {
        g.bench_with_input(
            BenchmarkId::new("samples", threads),
            &threads,
            |b, &threads| {
                let dir = bench_dir();
                let store = Arc::new(
                    DiskStore::open(
                        &dir,
                        StoreConfig {
                            n_shards: 4,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                );
                let tick = AtomicU64::new(0);
                b.iter(|| {
                    let base = tick.fetch_add(1, Ordering::Relaxed) * BATCH;
                    std::thread::scope(|s| {
                        for th in 0..threads {
                            let store = Arc::clone(&store);
                            s.spawn(move || {
                                // spread writers across shards (10 nodes per group)
                                let node = th * 10;
                                for i in 0..BATCH / threads as u64 {
                                    let t = SimTime::from_nanos(1 + (base + i) * 1_000_000);
                                    store.append(node, "cpu.util_pct", t, i as f64);
                                }
                            });
                        }
                    });
                });
                drop(store);
                let _ = std::fs::remove_dir_all(dir);
            },
        );
    }
    g.finish();
}

fn query(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_query");
    let dir = bench_dir();
    let store = DiskStore::open(&dir, StoreConfig::default()).unwrap();
    fill(&store, 8, 5_000, 0); // 80k samples, segments + tiers on disk
    store.flush();
    let mid = SimTime::from_nanos(1 + 2_000 * 5_000_000_000);
    let end = SimTime::from_nanos(1 + 3_000 * 5_000_000_000);
    g.bench_function("range_1k_raw", |b| {
        b.iter(|| black_box(store.range(3, "cpu.util_pct", mid, end).len()))
    });
    g.bench_function("range_full_raw", |b| {
        b.iter(|| {
            black_box(
                store
                    .range(3, "cpu.util_pct", SimTime::ZERO, SimTime::MAX)
                    .len(),
            )
        })
    });
    g.bench_function("range_agg_10s", |b| {
        b.iter(|| {
            black_box(
                store
                    .range_agg(
                        3,
                        "cpu.util_pct",
                        SimTime::ZERO,
                        SimTime::MAX,
                        cwx_store::Resolution::TenSeconds,
                    )
                    .len(),
            )
        })
    });
    g.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

fn block_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_block_cache");
    let dir = bench_dir();
    let store = DiskStore::open(&dir, StoreConfig::default()).unwrap();
    fill(&store, 8, 5_000, 0);
    store.flush(); // everything lives in segment files, memtables empty
    let from = SimTime::from_nanos(1 + 1_000 * 5_000_000_000);
    let to = SimTime::from_nanos(1 + 4_000 * 5_000_000_000);

    // cold: every iteration drops the decoded blocks, forcing segment
    // reads + payload CRC + decode
    g.bench_function("range_3k_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            black_box(store.range(3, "cpu.util_pct", from, to).len())
        })
    });

    // warm: the same query served from the decoded-block LRU — the
    // ≥5x gap over cold is the acceptance target for the cache
    g.bench_function("range_3k_warm", |b| {
        store.clear_cache();
        store.range(3, "cpu.util_pct", from, to); // prime
        b.iter(|| black_box(store.range(3, "cpu.util_pct", from, to).len()))
    });

    let stats = store.cache_stats();
    eprintln!(
        "block cache after bench: {} hits / {} misses / {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
    g.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

fn recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_recovery");
    g.sample_size(10);
    // a store with durable segments plus an unflushed WAL tail: reopen
    // replays the tail, the realistic post-crash shape
    let dir = bench_dir();
    {
        let store = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        fill(&store, 8, 2_000, 0);
        store.flush();
        fill(&store, 8, 500, 2_000); // tail stays in the WAL
    }
    g.bench_function("reopen_40k_wal_tail", |b| {
        b.iter(|| {
            let store = DiskStore::open(&dir, StoreConfig::default()).unwrap();
            black_box(store.total_samples())
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(dir);
}

criterion_group! {
    name = store;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = ingest, query, block_cache, recovery
}
criterion_main!(store);
