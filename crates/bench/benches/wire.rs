//! Criterion benches for the agent→server wire formats: the textual
//! `CWX1` baseline vs the binary `CWB1` delta format, full
//! encode+decode round trip on a realistic 100-key report. The binary
//! path must hold a ≥3x advantage — it skips float formatting/parsing
//! entirely and reuses one buffer, so a regression here means an
//! allocation or a format step crept back into the hot loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{self, Report, WireDecoder, WireEncoder};
use std::hint::black_box;

const KEYS: usize = 100;

fn report(seq: u64) -> Report {
    Report {
        node: 42,
        seq,
        time_secs: 3600.0 + seq as f64 * 5.0,
        values: (0..KEYS)
            .map(|i| {
                (
                    MonitorKey::new(format!("group{}.monitor_{i}", i % 6)),
                    // drift the values so deltas are realistic, not zero
                    Value::Num((i as u64 * 31 + seq * 7) as f64 * 0.25),
                )
            })
            .collect(),
    }
}

fn mutate(r: &mut Report, seq: u64) {
    r.seq = seq;
    r.time_secs = 3600.0 + seq as f64 * 5.0;
    for (i, (_, v)) in r.values.iter_mut().enumerate() {
        *v = Value::Num((i as u64 * 31 + seq * 7) as f64 * 0.25);
    }
}

fn round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_round_trip");
    g.throughput(Throughput::Elements(KEYS as u64));

    g.bench_function("text_100key", |b| {
        let mut r = report(0);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            mutate(&mut r, seq);
            let bytes = transmit::encode(&r);
            black_box(transmit::decode(&bytes).unwrap().values.len())
        })
    });

    g.bench_function("binary_100key", |b| {
        let mut enc = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let mut buf = Vec::new();
        let mut r = report(0);
        // negotiate the dictionary once, like a live connection
        enc.encode_into(&r, &mut buf);
        dec.decode_auto(&buf).unwrap();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            mutate(&mut r, seq);
            enc.encode_into(&r, &mut buf);
            black_box(dec.decode_auto(&buf).unwrap().values.len())
        })
    });

    // the compressed text path, for the E8 storyline: cheaper bytes,
    // far more CPU than either of the above
    g.bench_function("lzss_100key", |b| {
        let mut r = report(0);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            mutate(&mut r, seq);
            let bytes = transmit::encode_compressed(&r);
            black_box(transmit::decode_compressed(&bytes).unwrap().values.len())
        })
    });

    g.finish();
}

fn encode_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_encode");
    g.throughput(Throughput::Elements(KEYS as u64));

    g.bench_function("text_100key", |b| {
        let r = report(7);
        b.iter(|| black_box(transmit::encode(&r).len()))
    });

    g.bench_function("binary_100key", |b| {
        let mut enc = WireEncoder::new();
        let mut buf = Vec::new();
        let mut r = report(0);
        enc.encode_into(&r, &mut buf);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            mutate(&mut r, seq);
            enc.encode_into(&r, &mut buf);
            black_box(buf.len())
        })
    });

    g.finish();
}

criterion_group! {
    name = wire;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = round_trip, encode_only
}
criterion_main!(wire);
