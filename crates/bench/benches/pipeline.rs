//! Criterion benches for E7: the agent's gather→consolidate→transmit
//! tick, with and without consolidation/compression (paper §5.3).

use criterion::{criterion_group, criterion_main, Criterion};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::snapshot::Sensors;
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::time::{SimDuration, SimTime};
use std::hint::black_box;

fn agent_tick_bench(c: &mut Criterion, label: &str, delta: bool, compress: bool) {
    let proc_ = SyntheticProc::default();
    let mut agent = Agent::new(
        proc_.clone(),
        AgentConfig {
            delta_enabled: delta,
            compress,
            ..AgentConfig::default()
        },
    )
    .unwrap();
    let mut now = SimTime::ZERO;
    let mut g = c.benchmark_group("e7_agent_tick");
    g.sample_size(40);
    g.bench_function(label, |b| {
        b.iter(|| {
            now += SimDuration::from_secs(5);
            proc_.with_state(|s| s.tick(5.0, 0.4));
            let out = agent
                .tick(
                    now,
                    Sensors {
                        cpu_temp_c: 45.0,
                        udp_echo_ok: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            black_box(out.wire_len)
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    agent_tick_bench(c, "full_raw", false, false);
    agent_tick_bench(c, "full_compressed", false, true);
    agent_tick_bench(c, "delta_raw", true, false);
    agent_tick_bench(c, "delta_compressed_product", true, true);
}

criterion_group! {
    name = pipeline;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(pipeline);
