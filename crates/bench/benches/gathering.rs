//! Criterion benches for E1/E2/E4: the /proc gathering ladder and the
//! per-file costs (paper §5.3.1). Runs against the real `/proc` when
//! available, and always against the synthetic backend.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cwx_proc::gather::{
    GatherLevel, KeepOpenFile, LoadAvgGatherer, MemInfoGatherer, NetDevGatherer, StatGatherer,
    UptimeGatherer,
};
use cwx_proc::source::{ProcSource, RealProc};
use cwx_proc::synthetic::SyntheticProc;

fn ladder_on<S: ProcSource + Clone + 'static>(c: &mut Criterion, name: &str, src: &S) {
    let mut g = c.benchmark_group(format!("e1_ladder/{name}"));
    for level in GatherLevel::ALL {
        let mut gatherer = MemInfoGatherer::new(src.clone(), level).expect("gatherer");
        // the naive level is orders of magnitude slower; fewer samples
        if level == GatherLevel::Naive {
            g.sample_size(10);
        } else {
            g.sample_size(40);
        }
        g.bench_function(level.label(), |b| {
            b.iter(|| black_box(gatherer.sample().unwrap().free_kb))
        });
    }
    g.finish();
}

fn per_file_on<S: ProcSource + Clone + 'static>(c: &mut Criterion, name: &str, src: &S) {
    let mut g = c.benchmark_group(format!("e2_per_file/{name}"));
    g.sample_size(40);
    let mut mem = MemInfoGatherer::new(src.clone(), GatherLevel::KeepOpen).unwrap();
    g.bench_function("meminfo", |b| {
        b.iter(|| black_box(mem.sample().unwrap().total_kb))
    });
    let mut stat = StatGatherer::new(src).unwrap();
    g.bench_function("stat", |b| {
        b.iter(|| black_box(stat.sample().unwrap().ctxt))
    });
    let mut load = LoadAvgGatherer::new(src).unwrap();
    g.bench_function("loadavg", |b| {
        b.iter(|| black_box(load.sample().unwrap().one))
    });
    let mut up = UptimeGatherer::new(src).unwrap();
    g.bench_function("uptime", |b| {
        b.iter(|| black_box(up.sample().unwrap().uptime_secs))
    });
    let mut net = NetDevGatherer::new(src).unwrap();
    g.bench_function("netdev", |b| {
        b.iter(|| black_box(net.sample().unwrap().len()))
    });
    g.finish();
}

fn impl_comparison_on<S: ProcSource + Clone + 'static>(c: &mut Criterion, name: &str, src: &S) {
    let mut g = c.benchmark_group(format!("e4_impl/{name}"));
    g.sample_size(40);
    let mut opt = MemInfoGatherer::new(src.clone(), GatherLevel::KeepOpen).unwrap();
    g.bench_function("zero_alloc", |b| {
        b.iter(|| black_box(opt.sample().unwrap().total_kb))
    });
    let mut file = KeepOpenFile::open(src, "meminfo").unwrap();
    g.bench_function("idiomatic_allocating", |b| {
        b.iter(|| {
            let bytes = file.read().unwrap();
            let text = String::from_utf8(bytes.to_vec()).unwrap();
            black_box(cwx_proc::meminfo::parse_generic(&text).unwrap().total_kb)
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    let synthetic = SyntheticProc::default();
    ladder_on(c, "synthetic", &synthetic);
    per_file_on(c, "synthetic", &synthetic);
    impl_comparison_on(c, "synthetic", &synthetic);

    let real = RealProc::new();
    if real.available() {
        ladder_on(c, "real_proc", &real);
        per_file_on(c, "real_proc", &real);
        impl_comparison_on(c, "real_proc", &real);
    }
}

criterion_group! {
    name = gathering;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(gathering);
