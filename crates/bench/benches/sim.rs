//! Criterion benches for the timing-wheel event engine vs the old
//! binary-heap baseline (`cwx_util::sim::baseline::HeapSim`): raw
//! schedule throughput, schedule+dispatch throughput at 1e5–1e7 pending
//! events, and the recurring-timer churn pattern every cluster tick
//! rides on. The wheel must hold a ≥5x dispatch advantage at scale —
//! it replaces O(log n) cache-hostile heap percolation with O(1) slot
//! pushes and amortized-O(1) cascades, and recurring timers stop
//! re-boxing their closure every period. The advantage widens with the
//! pending-set size (the heap's percolation path stops fitting in
//! cache): on the clustered shape this measured ~4-5x at 1e6 pending
//! and ~9-12x at 1e7.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cwx_util::sim::{baseline::HeapSim, Sim};
use cwx_util::time::{SimDuration, SimTime};
use std::hint::black_box;

/// Deterministic pseudo-random event time in a window that keeps slots
/// realistically mixed (multiple events per tick, many ticks).
fn event_time(i: u64, span: u64) -> u64 {
    (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11) % span
}

/// The cluster-simulation shape: events cluster on shared tick
/// boundaries (thousands of nodes firing on the same hw/agent/probe
/// tick), `n / ticks` events per timestamp.
fn tick_time(i: u64, ticks: u64, tick_ns: u64) -> u64 {
    (event_time(i, ticks)) * tick_ns
}

fn schedule_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_schedule");
    g.sample_size(20);
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("wheel_schedule_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..N {
                sim.schedule_at(SimTime::from_nanos(event_time(i, N * 100)), |sim| {
                    *sim.world_mut() += 1;
                });
            }
            black_box(sim.events_pending())
        })
    });
    g.bench_function("heap_schedule_100k", |b| {
        b.iter(|| {
            let mut sim = HeapSim::new(0u64);
            for i in 0..N {
                sim.schedule_at(SimTime::from_nanos(event_time(i, N * 100)), |sim| {
                    *sim.world_mut() += 1;
                });
            }
            black_box(sim.events_pending())
        })
    });
    g.finish();
}

fn dispatch_at_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_dispatch");
    g.sample_size(10);
    // headline comparison: the tick-clustered shape every cluster
    // experiment produces (n/1000 nodes' worth of events per tick)
    for &n in &[100_000u64, 1_000_000, 10_000_000] {
        let ticks = (n / 1000).max(1);
        let tick_ns = 5_000_000_000 / ticks;
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("wheel_dispatch_{n}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new(0u64);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_nanos(tick_time(i, ticks, tick_ns)), |sim| {
                        *sim.world_mut() += 1;
                    });
                }
                sim.run();
                black_box(*sim.world())
            })
        });
        // the heap's per-event cost grows with the pending-set size
        // (log n percolation, cache-hostile) while the wheel stays flat
        // (~200 ns/ev at every size): roughly at parity at 1e5, ~4-5x
        // behind at 1e6, ~9-12x behind at 1e7 — the scale E11 targets
        g.bench_function(format!("heap_dispatch_{n}"), |b| {
            b.iter(|| {
                let mut sim = HeapSim::new(0u64);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_nanos(tick_time(i, ticks, tick_ns)), |sim| {
                        *sim.world_mut() += 1;
                    });
                }
                sim.run();
                black_box(*sim.world())
            })
        });
    }
    // secondary: uniformly random times, the wheel's worst case (every
    // timestamp distinct, maximum cascade traffic)
    const N: u64 = 1_000_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("wheel_dispatch_uniform_1m", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..N {
                sim.schedule_at(SimTime::from_nanos(event_time(i, N * 20)), |sim| {
                    *sim.world_mut() += 1;
                });
            }
            sim.run();
            black_box(*sim.world())
        })
    });
    g.bench_function("heap_dispatch_uniform_1m", |b| {
        b.iter(|| {
            let mut sim = HeapSim::new(0u64);
            for i in 0..N {
                sim.schedule_at(SimTime::from_nanos(event_time(i, N * 20)), |sim| {
                    *sim.world_mut() += 1;
                });
            }
            sim.run();
            black_box(*sim.world())
        })
    });
    g.finish();
}

fn recurring_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_recurring");
    g.sample_size(10);
    // the cluster tick shape: many periodic timers, long horizon — the
    // wheel reuses one slab entry + closure box per timer; the heap
    // re-boxes a fresh closure every single period
    const TIMERS: u64 = 1_000;
    const TICKS: u64 = 1_000;
    g.throughput(Throughput::Elements(TIMERS * TICKS));
    g.bench_function("wheel_1k_timers_1k_ticks", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for t in 0..TIMERS {
                sim.schedule_every(SimDuration::from_nanos(1000 + t), |sim| {
                    *sim.world_mut() += 1;
                    true
                });
            }
            sim.run_for(SimDuration::from_nanos(1000 * TICKS));
            black_box(*sim.world())
        })
    });
    g.bench_function("heap_1k_timers_1k_ticks", |b| {
        b.iter(|| {
            let mut sim = HeapSim::new(0u64);
            for t in 0..TIMERS {
                sim.schedule_every(SimDuration::from_nanos(1000 + t), |sim| {
                    *sim.world_mut() += 1;
                    true
                });
            }
            sim.run_for(SimDuration::from_nanos(1000 * TICKS));
            black_box(*sim.world())
        })
    });
    g.finish();
}

criterion_group!(benches, schedule_only, dispatch_at_scale, recurring_churn);
criterion_main!(benches);
