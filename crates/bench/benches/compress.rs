//! Criterion benches for E8: LZSS compression throughput and ratio on
//! monitored text (paper §5.3.3).

use bench::e8_compress::{report_corpus, synthetic_proc_corpus};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cwx_util::compress::{compress, decompress};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let stream = synthetic_proc_corpus(20);
    let report = report_corpus();
    let stream_packed = compress(&stream);

    let mut g = c.benchmark_group("e8_compress");
    g.sample_size(40);
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("compress_proc_stream", |b| {
        b.iter(|| black_box(compress(&stream)).len())
    });
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("decompress_proc_stream", |b| {
        b.iter(|| black_box(decompress(&stream_packed).unwrap()).len())
    });
    g.throughput(Throughput::Bytes(report.len() as u64));
    g.bench_function("compress_single_report", |b| {
        b.iter(|| black_box(compress(&report)).len())
    });
    g.finish();
}

criterion_group! {
    name = compress_benches;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(compress_benches);
