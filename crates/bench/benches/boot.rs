//! Criterion benches for E5: boot-storm computation for both firmwares
//! (paper §2).

use bench::e5_boot::boot_storm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwx_bios::Firmware;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_boot_storm");
    g.sample_size(20);
    for n in [10u32, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("linuxbios", n), &n, |b, &n| {
            b.iter(|| black_box(boot_storm(1, n, Firmware::LinuxBios).last_up_secs))
        });
        g.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
            b.iter(|| black_box(boot_storm(1, n, Firmware::LegacyBios).last_up_secs))
        });
    }
    g.finish();
}

criterion_group! {
    name = boot;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(boot);
