//! Criterion benches for the substrate itself: discrete-event scheduler
//! throughput, serial ring-buffer writes, and history-store operations.
//! These bound how large an experiment the harness can sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cwx_monitor::history::HistoryStore;
use cwx_monitor::monitor::MonitorKey;
use cwx_util::ring::ByteRing;
use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(30);

    // DES: schedule + execute 10k chained events
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sim_10k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_nanos(i * 7 % 10_000), |sim| {
                    *sim.world_mut() += 1;
                });
            }
            sim.run();
            black_box(*sim.world())
        })
    });

    // DES: recurring-event pattern (the cluster tick shape)
    g.bench_function("sim_recurring_1k_ticks", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            sim.schedule_every(SimDuration::from_secs(1), |sim| {
                *sim.world_mut() += 1;
                true
            });
            sim.run_for(SimDuration::from_secs(1000));
            black_box(*sim.world())
        })
    });

    // 16 KiB console ring under sustained writes
    let line = b"eth0: NETDEV WATCHDOG: transmit timed out (4711)\n";
    g.throughput(Throughput::Bytes((line.len() * 1000) as u64));
    g.bench_function("byte_ring_1k_lines", |b| {
        let mut ring = ByteRing::new(16 * 1024);
        b.iter(|| {
            for _ in 0..1000 {
                ring.write(line);
            }
            black_box(ring.len())
        })
    });

    // history store: record + downsample (a chart refresh)
    g.bench_function("history_record_and_chart", |b| {
        let key = MonitorKey::new("cpu.util_pct");
        b.iter(|| {
            let mut h = HistoryStore::new(720);
            for i in 0..720u64 {
                h.record(
                    1,
                    &key,
                    SimTime::ZERO + SimDuration::from_secs(i * 5),
                    (i % 100) as f64,
                );
            }
            let buckets = h.downsample(
                1,
                &key,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs(3600),
                60,
            );
            black_box(buckets.len())
        })
    });

    g.finish();
}

criterion_group! {
    name = simulator;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(simulator);
