//! Criterion benches for E9: event-engine evaluation throughput (how
//! many monitor observations per second the server-side engine absorbs)
//! and the notifier's episode machinery (paper §5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use cwx_events::engine::{default_rules, EventEngine};
use cwx_events::notify::Notifier;
use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::{SimDuration, SimTime};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_events");
    g.sample_size(40);

    // evaluation throughput with the default rule set over a quiet value
    g.bench_function("observe_no_fire", |b| {
        let mut engine = EventEngine::new();
        for r in default_rules() {
            engine.add(r);
        }
        let key = MonitorKey::new("temp.cpu");
        let mut node = 0u32;
        b.iter(|| {
            node = (node + 1) % 1024;
            black_box(engine.observe(SimTime::ZERO, node, &key, 45.0).0.len())
        })
    });

    // fire/clear churn: alternating hot and cold observations
    g.bench_function("observe_fire_clear_cycle", |b| {
        let mut engine = EventEngine::new();
        for r in default_rules() {
            engine.add(r);
        }
        let key = MonitorKey::new("temp.cpu");
        let mut hot = false;
        b.iter(|| {
            hot = !hot;
            let v = if hot { 80.0 } else { 60.0 };
            black_box(engine.observe(SimTime::ZERO, 7, &key, v).0.len())
        })
    });

    // notifier: a 100-node failure wave into one episode
    g.bench_function("notifier_100_node_wave", |b| {
        let defs = default_rules();
        b.iter(|| {
            let mut n = Notifier::new("bench", SimDuration::from_secs(30));
            let mut engine = EventEngine::new();
            for r in defs.clone() {
                engine.add(r);
            }
            let key = MonitorKey::new("fan.cpu_rpm");
            for node in 0..100 {
                let (fired, _) = engine.observe(SimTime::ZERO, node, &key, 0.0);
                for f in &fired {
                    let def = defs.iter().find(|d| d.id == f.event).unwrap();
                    n.on_fire(SimTime::ZERO, def, f);
                }
            }
            let mails = n.flush(SimTime::ZERO + SimDuration::from_secs(60), &defs);
            black_box(mails.len())
        })
    });

    g.finish();
}

criterion_group! {
    name = events;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(events);
