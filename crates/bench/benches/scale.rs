//! Criterion benches for E11: how much host CPU one simulated minute of
//! cluster monitoring costs at different cluster sizes (the simulator's
//! own scalability, which bounds the experiment sizes we can sweep).

use clusterworx::{Cluster, ClusterConfig, WorkloadMix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwx_util::time::SimDuration;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_sim_minute");
    g.sample_size(10);
    for n in [16u32, 64] {
        g.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Cluster::build(ClusterConfig {
                    n_nodes: n,
                    workload: WorkloadMix::Mixed,
                    ..Default::default()
                });
                sim.run_for(SimDuration::from_secs(60));
                black_box(sim.world().server.stats().reports_rx)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = scale;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(scale);
