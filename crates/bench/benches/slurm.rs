//! Criterion benches for E12: scheduler pass cost and full-trace runs
//! for FIFO vs backfill (paper §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwx_util::rng::rng;
use slurm_lite::trace::{generate, run_trace, TraceConfig};
use slurm_lite::{Controller, SchedulerKind};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let cfg = TraceConfig {
        cluster_nodes: 64,
        mean_interarrival_secs: 45.0,
        ..Default::default()
    };
    let trace = generate(&mut rng(1), &cfg, 300);

    let mut g = c.benchmark_group("e12_slurm_trace");
    g.sample_size(20);
    for kind in [SchedulerKind::Fifo, SchedulerKind::Backfill] {
        g.bench_with_input(
            BenchmarkId::new("policy", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut ctl = Controller::new(64, kind);
                    black_box(run_trace(&mut ctl, &trace).as_secs_f64())
                })
            },
        );
    }
    g.finish();

    // the cost of one scheduling pass with a deep queue
    let mut g = c.benchmark_group("e12_schedule_pass");
    g.sample_size(30);
    g.bench_function("deep_queue_backfill", |b| {
        b.iter(|| {
            let mut ctl = Controller::new(64, SchedulerKind::Backfill);
            let now = cwx_util::time::SimTime::ZERO;
            // fill the machine, then queue 200 more
            let _ = ctl.submit(now, slurm_lite::JobRequest::batch("w", 64, 10_000, 10_000));
            ctl.advance(now);
            for k in 0..200u64 {
                let _ = ctl.submit(
                    now,
                    slurm_lite::JobRequest::batch("u", 1 + (k % 8) as u32, 600, 300),
                );
            }
            ctl.advance(now);
            black_box(ctl.queue_len())
        })
    });
    g.finish();
}

criterion_group! {
    name = slurm;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(slurm);
