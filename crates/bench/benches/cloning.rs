//! Criterion benches for E6: cloning campaigns (paper §4), multicast vs
//! unicast vs the re-multicast repair ablation, at reduced scale so the
//! statistics stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwx_bios::Firmware;
use cwx_clone::protocol::{run_clone, CloneConfig, RepairStrategy};
use cwx_net::FAST_ETHERNET_BPS;
use std::hint::black_box;

fn cfg(strategy: RepairStrategy) -> CloneConfig {
    CloneConfig {
        image_bytes: 32 << 20,
        chunk_bytes: 1 << 20,
        pace_bps: 6 << 20,
        strategy,
        firmware: Firmware::LinuxBios,
        ..CloneConfig::default()
    }
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_cloning");
    g.sample_size(10);
    for n in [10u32, 40] {
        g.bench_with_input(BenchmarkId::new("multicast", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_clone(
                        1,
                        n,
                        FAST_ETHERNET_BPS,
                        0.01,
                        cfg(RepairStrategy::MulticastRoundRobin),
                    )
                    .makespan_secs,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("unicast_baseline", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_clone(1, n, FAST_ETHERNET_BPS, 0.01, cfg(RepairStrategy::Unicast))
                        .makespan_secs,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("remulticast_repair", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_clone(
                        1,
                        n,
                        FAST_ETHERNET_BPS,
                        0.01,
                        cfg(RepairStrategy::MulticastRemulticast { rounds: 2 }),
                    )
                    .makespan_secs,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = cloning;
    // short windows keep the full suite's wall time bounded; the
    // measured effects are orders of magnitude, not percent-level
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(cloning);
