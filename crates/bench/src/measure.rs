//! Wall-clock measurement helpers (only the E1–E4 microbenchmarks touch
//! real time; everything else runs on simulated time).

use std::time::{Duration, Instant};

/// Run `f` repeatedly for at least `window`, returning calls per second.
/// A short warmup runs first.
pub fn rate_per_sec(mut f: impl FnMut(), window: Duration) -> f64 {
    // warmup: a tenth of the window
    let warm_until = Instant::now() + window / 10;
    while Instant::now() < warm_until {
        f();
    }
    let start = Instant::now();
    let mut calls: u64 = 0;
    loop {
        f();
        calls += 1;
        // check the clock in batches to keep the overhead negligible
        if calls.is_multiple_of(32) && start.elapsed() >= window {
            break;
        }
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// Mean microseconds per call of `f` over a measurement window.
pub fn micros_per_call(f: impl FnMut(), window: Duration) -> f64 {
    1e6 / rate_per_sec(f, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_measures_a_known_cheap_function() {
        let mut x = 0u64;
        let r = rate_per_sec(
            || {
                x = x.wrapping_add(1);
                std::hint::black_box(x);
            },
            Duration::from_millis(50),
        );
        assert!(
            r > 1_000_000.0,
            "a no-op should run millions of times/s: {r}"
        );
    }

    #[test]
    fn micros_inverts_rate() {
        let us = micros_per_call(
            || std::thread::sleep(Duration::from_micros(200)),
            Duration::from_millis(50),
        );
        assert!(
            (150.0..2_000.0).contains(&us),
            "sleep(200us) should cost ~200us+: {us}"
        );
    }
}
