//! E15: federation scale — E11's question one tier up. A flat server
//! tops out well below production density (BNL "Software Scalability
//! Issues in Large Clusters"); the federation head must aggregate many
//! full clusters while doing far less work per node than any
//! sub-server does. We sweep federation shapes up to 10×10k (100k
//! nodes) and report per-tier load: wall-clock CPU and event/frame
//! rates for the head vs the sub-server tier.

use clusterworx::ClusterConfig;
use cwx_fed::{FederationConfig, FederationSim};
use cwx_util::time::SimDuration;

/// One federation sweep row.
#[derive(Debug, Clone)]
pub struct FedScaleRow {
    /// Sub-clusters in the federation.
    pub clusters: u16,
    /// Nodes per sub-cluster.
    pub nodes_per: u32,
    /// Total nodes under the head.
    pub total_nodes: u32,
    /// Head CPU over the measured window, wall seconds.
    pub head_busy_secs: f64,
    /// Sub-server tier CPU over the measured window, wall seconds.
    pub sub_busy_secs: f64,
    /// Federation frames the head ingested per simulated second.
    pub head_frames_per_sec: f64,
    /// Uplink bytes per simulated second (the whole federation tier).
    pub uplink_bytes_per_sec: f64,
    /// Sub-tier simulation events per wall second (engine throughput).
    pub sub_events_per_wall_sec: f64,
    /// Head share of total management CPU (head / (head + subs)).
    pub head_cpu_share: f64,
    /// Wall seconds the measured window took.
    pub wall_secs: f64,
    /// Whether the head census exactly matched the summed ground truth
    /// at the end of the window (must always be true).
    pub aggregate_ok: bool,
}

/// Simulate `secs` of a `clusters`×`nodes_per` federation and measure
/// the per-tier load over the post-boot window.
pub fn federation_load(seed: u64, clusters: u16, nodes_per: u32, secs: u64) -> FedScaleRow {
    let mut cfg = FederationConfig::uniform(clusters, nodes_per, seed);
    // same coarsening E11 applies at large n: the hardware step is not
    // the tier under test
    for c in &mut cfg.clusters {
        *c = ClusterConfig {
            hw_step: SimDuration::from_secs(5),
            ..c.clone()
        };
    }
    cfg.uplink_interval = SimDuration::from_secs(10);
    let mut fed = FederationSim::build(cfg);

    // boot + settle, then measure over a clean window
    fed.run_for(SimDuration::from_secs(60));
    let load0 = fed.load();
    let frames0 = fed.head().stats().frames_rx;
    let (_, bytes0) = fed.uplink_stats();
    let t0 = std::time::Instant::now();
    fed.run_for(SimDuration::from_secs(secs));
    let wall_secs = t0.elapsed().as_secs_f64();
    let load1 = fed.load();
    let frames1 = fed.head().stats().frames_rx;
    let (_, bytes1) = fed.uplink_stats();

    let dt = secs as f64;
    let head_busy = (load1.head_busy - load0.head_busy).as_secs_f64();
    let sub_busy = (load1.sub_busy - load0.sub_busy).as_secs_f64();
    FedScaleRow {
        clusters,
        nodes_per,
        total_nodes: clusters as u32 * nodes_per,
        head_busy_secs: head_busy,
        sub_busy_secs: sub_busy,
        head_frames_per_sec: (frames1 - frames0) as f64 / dt,
        uplink_bytes_per_sec: (bytes1 - bytes0) as f64 / dt,
        sub_events_per_wall_sec: (load1.sub_events - load0.sub_events) as f64 / wall_secs.max(1e-9),
        head_cpu_share: head_busy / (head_busy + sub_busy).max(1e-12),
        wall_secs,
        aggregate_ok: fed.aggregate().counts == fed.sub_counts_sum(),
    }
}

/// The federation shapes the experiment sweeps: `(clusters, nodes_per)`.
pub const SHAPES: [(u16, u32); 3] = [(4, 2_500), (10, 5_000), (10, 10_000)];

/// The full sweep.
pub fn sweep(seed: u64, shapes: &[(u16, u32)], secs: u64) -> Vec<FedScaleRow> {
    shapes
        .iter()
        .map(|&(c, n)| federation_load(seed, c, n, secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_does_far_less_work_than_the_sub_tier() {
        let r = federation_load(5, 3, 64, 300);
        assert!(r.aggregate_ok, "census must match ground truth");
        assert!(
            r.head_cpu_share < 0.5,
            "the head must be the cheap tier: {r:?}"
        );
        assert!(r.head_frames_per_sec > 0.0, "uplinks must flow: {r:?}");
    }

    #[test]
    fn uplink_traffic_is_tiny_compared_to_node_monitoring() {
        // 3 clusters x 64 nodes: the federation tier moves a few frames
        // per uplink interval, orders of magnitude below the agent tier
        let r = federation_load(6, 3, 64, 300);
        assert!(
            r.uplink_bytes_per_sec < 10_000.0,
            "rollups must stay consolidated: {r:?}"
        );
    }
}
