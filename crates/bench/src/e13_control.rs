//! E13: control-plane command bus under chassis-command loss.
//!
//! The paper's ICE Box speaks a serial/Ethernet management network; the
//! control plane must survive commands vanishing in transit. We run the
//! E9 fan-failure campaign with the command-loss fault knob at 0%, 1%
//! and 10% and measure the event→action *completion* latency (injection
//! to the chassis confirming the power-down), the retry traffic, and the
//! bus invariant: every command that went on the wire reaches a terminal
//! audit state — completed or failed after bounded retries, never
//! silently dropped.

use clusterworx::world::schedule_fault;
use clusterworx::{AuditEntry, Cluster, ClusterConfig, PowerCmd, WorkloadMix};
use cwx_hw::node::Fault;
use cwx_util::rng::rng;
use cwx_util::stats::Summary;
use cwx_util::time::SimDuration;
use rand::Rng;

/// Result of one lossy-bus campaign.
#[derive(Debug, Clone)]
pub struct LossRun {
    /// Fraction of chassis commands lost in transit.
    pub loss: f64,
    /// Fan failures injected.
    pub failures: u32,
    /// Commands that went on the wire (first attempts).
    pub commands_fired: u64,
    /// Commands the chassis confirmed.
    pub completed: u64,
    /// Commands that exhausted their retries.
    pub failed: u64,
    /// Retry attempts after transport loss.
    pub retries: u64,
    /// Seconds from fault injection to the chassis confirming the
    /// power-down, per victim that completed.
    pub completion_latency: Option<Summary>,
    /// Victims whose power-down never reached a terminal audit state
    /// (the invariant the bus exists to keep at zero).
    pub silent_drops: u32,
}

/// Run the fan-failure campaign once at the given command-loss rate.
pub fn lossy_campaign(seed: u64, n_nodes: u32, failures: u32, loss: f64) -> LossRun {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes,
        seed,
        workload: WorkloadMix::Constant(0.95),
        icebox_command_loss: loss,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(400));

    let mut r = rng(seed ^ 0x10_55);
    let mut victims: Vec<u32> = (0..n_nodes).collect();
    for i in 0..failures.min(n_nodes) as usize {
        let j = r.random_range(i..victims.len());
        victims.swap(i, j);
    }
    let victims: Vec<u32> = victims
        .into_iter()
        .take(failures.min(n_nodes) as usize)
        .collect();
    let mut inject_times = Vec::new();
    for &v in &victims {
        let at = sim.now() + SimDuration::from_secs(r.random_range(0..120));
        inject_times.push((v, at));
        schedule_fault(&mut sim, at, v, Fault::FanFailure);
    }
    // room for the full retry envelope (6 attempts, 8 s max backoff)
    sim.run_for(SimDuration::from_secs(1500));

    let w = sim.world();
    let stats = w.control.stats();
    let audit = w.control.audit();
    let (mut fired, mut completed, mut failed) = (0u64, 0u64, 0u64);
    for rec in audit {
        match &rec.entry {
            AuditEntry::CommandIssued { attempt: 1, .. } => fired += 1,
            AuditEntry::CommandCompleted { .. } => completed += 1,
            AuditEntry::CommandFailed { .. } => failed += 1,
            _ => {}
        }
    }
    let mut latencies = Vec::new();
    let mut silent_drops = 0u32;
    for &(v, at) in &inject_times {
        let done = audit.iter().find(|rec| {
            rec.node == Some(v)
                && rec.time >= at
                && matches!(
                    rec.entry,
                    AuditEntry::CommandCompleted {
                        cmd: PowerCmd::Off,
                        ..
                    }
                )
        });
        let terminal_failure = audit.iter().any(|rec| {
            rec.node == Some(v)
                && rec.time >= at
                && matches!(
                    rec.entry,
                    AuditEntry::CommandFailed {
                        cmd: PowerCmd::Off,
                        ..
                    }
                )
        });
        match done {
            Some(rec) => latencies.push(rec.time.since(at).as_secs_f64()),
            None if terminal_failure => {} // failed, but loudly: it's audited
            None => silent_drops += 1,
        }
    }

    LossRun {
        loss,
        failures: victims.len() as u32,
        commands_fired: fired,
        completed,
        failed,
        retries: stats.retries,
        completion_latency: Summary::of(&latencies),
        silent_drops,
    }
}

/// The E13 sweep: the same campaign at each loss rate.
pub fn loss_sweep(seed: u64, n_nodes: u32, failures: u32, losses: &[f64]) -> Vec<LossRun> {
    losses
        .iter()
        .map(|&loss| lossy_campaign(seed, n_nodes, failures, loss))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_bus_never_retries() {
        let r = lossy_campaign(5, 16, 4, 0.0);
        assert_eq!(r.retries, 0, "{r:?}");
        assert_eq!(r.silent_drops, 0, "{r:?}");
        assert_eq!(r.commands_fired, r.completed + r.failed, "{r:?}");
        assert!(r.completion_latency.is_some(), "{r:?}");
    }

    #[test]
    fn ten_percent_loss_retries_but_drops_nothing() {
        let r = lossy_campaign(5, 16, 6, 0.10);
        assert!(r.retries > 0, "loss must cause retries: {r:?}");
        assert_eq!(r.silent_drops, 0, "no silent drops: {r:?}");
        assert_eq!(r.commands_fired, r.completed + r.failed, "{r:?}");
    }
}
