//! E8: compression effectiveness on monitored text (paper §5.3.3).
//!
//! Corpora: real `/proc` snapshots when available, synthetic node proc
//! text, and full agent reports — all "standard ASCII output" of the
//! kind the paper claims compresses very effectively.

use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{encode, Report, WireEncoder};
use cwx_proc::synthetic::SyntheticState;
use cwx_util::compress::{compress, decompress};

/// One corpus result.
#[derive(Debug, Clone)]
pub struct CompressRow {
    /// Corpus name.
    pub corpus: &'static str,
    /// Input bytes.
    pub input_bytes: usize,
    /// Compressed bytes.
    pub output_bytes: usize,
    /// Ratio (output / input).
    pub ratio: f64,
}

fn row(corpus: &'static str, data: &[u8]) -> CompressRow {
    let out = compress(data);
    debug_assert_eq!(decompress(&out).unwrap(), data);
    CompressRow {
        corpus,
        input_bytes: data.len(),
        output_bytes: out.len(),
        ratio: out.len() as f64 / data.len().max(1) as f64,
    }
}

/// Synthetic proc text: a node's five files concatenated over several
/// samples (what an uncompressed stream would carry).
pub fn synthetic_proc_corpus(samples: usize) -> Vec<u8> {
    let mut st = SyntheticState::default();
    let mut out = String::new();
    let mut buf = String::new();
    for _ in 0..samples {
        st.tick(5.0, 0.4);
        st.render_meminfo(&mut buf);
        out.push_str(&buf);
        st.render_stat(&mut buf);
        out.push_str(&buf);
        st.render_loadavg(&mut buf);
        out.push_str(&buf);
        st.render_uptime(&mut buf);
        out.push_str(&buf);
        st.render_netdev(&mut buf);
        out.push_str(&buf);
    }
    out.into_bytes()
}

fn sample_report() -> Report {
    let mut values = Vec::new();
    for i in 0..48 {
        values.push((
            MonitorKey::new(format!("group{}.monitor_{i}", i % 6)),
            Value::Num(i as f64 * 13.7),
        ));
    }
    Report {
        node: 123,
        seq: 42,
        time_secs: 3600.5,
        values,
    }
}

/// A realistic full agent report (first tick: every monitor present).
pub fn report_corpus() -> Vec<u8> {
    encode(&sample_report()).into_bytes()
}

/// Run E8 over all corpora.
pub fn corpora() -> Vec<CompressRow> {
    let mut rows = Vec::new();
    if let Ok(mem) = std::fs::read("/proc/meminfo") {
        let mut real = Vec::new();
        for _ in 0..20 {
            real.extend_from_slice(&mem);
        }
        if let Ok(stat) = std::fs::read("/proc/stat") {
            real.extend_from_slice(&stat);
        }
        rows.push(row("real /proc stream (20 samples)", &real));
    }
    rows.push(row(
        "synthetic /proc stream (20 samples)",
        &synthetic_proc_corpus(20),
    ));
    rows.push(row("single full agent report", &report_corpus()));
    // the binary wire format measured against the same report's text
    // rendering: not LZSS output, but the size the hot path actually
    // puts on the wire (steady-state frame: dictionary already bound)
    let text_len = report_corpus().len();
    let mut enc = WireEncoder::new();
    let mut r = sample_report();
    let _first = enc.encode(&r); // binds the dictionary
    for (i, (_, v)) in r.values.iter_mut().enumerate() {
        *v = Value::Num(i as f64 * 13.7 + 0.25); // every value moved
    }
    let steady = enc.encode(&r);
    rows.push(CompressRow {
        corpus: "binary wire frame (same report, steady state)",
        input_bytes: text_len,
        output_bytes: steady.len(),
        ratio: steady.len() as f64 / text_len.max(1) as f64,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_text_compresses_very_effectively() {
        let rows = corpora();
        let stream = rows
            .iter()
            .find(|r| r.corpus.starts_with("synthetic /proc stream"))
            .unwrap();
        assert!(
            stream.ratio < 0.25,
            "repeated proc text must compress at least 4x: {:.3}",
            stream.ratio
        );
    }

    #[test]
    fn single_report_still_shrinks() {
        let rows = corpora();
        let report = rows
            .iter()
            .find(|r| r.corpus.contains("agent report"))
            .unwrap();
        assert!(
            report.ratio < 0.8,
            "even one report has key-prefix redundancy: {:.3}",
            report.ratio
        );
    }
}
