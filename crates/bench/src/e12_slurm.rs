//! E12: SLURM-lite resource management (paper §6).
//!
//! The paper positions SLURM as simple, scalable queue arbitration with
//! an external-scheduler API and controller fault tolerance. We measure:
//! scheduler policy comparison (FIFO vs EASY backfill vs the Maui-like
//! priority hook) on a synthetic trace, and controller failover.

use cwx_util::rng::rng;
use slurm_lite::sched::maui_like_priority;
use slurm_lite::trace::{generate, run_trace, TraceConfig};
use slurm_lite::{Controller, SchedulerKind};

/// One policy's results on the trace.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: &'static str,
    /// Trace makespan, seconds.
    pub makespan_secs: f64,
    /// Mean queue wait, seconds.
    pub mean_wait_secs: f64,
    /// Cluster utilisation over the makespan.
    pub utilization: f64,
    /// Jobs started by the backfill pass.
    pub backfilled: u64,
    /// Jobs completed.
    pub completed: u64,
}

/// Compare the three policies on one generated trace.
pub fn policy_comparison(seed: u64, cluster_nodes: u32, jobs: usize) -> Vec<PolicyRow> {
    let cfg = TraceConfig {
        cluster_nodes,
        mean_interarrival_secs: 45.0,
        ..TraceConfig::default()
    };
    let trace = generate(&mut rng(seed), &cfg, jobs);
    let run = |label: &'static str, kind, maui: bool| {
        let mut c = Controller::new(cluster_nodes, kind);
        if maui {
            c.set_priority_fn(maui_like_priority);
        }
        let makespan = run_trace(&mut c, &trace);
        let s = c.stats();
        PolicyRow {
            policy: label,
            makespan_secs: makespan.as_secs_f64(),
            mean_wait_secs: s.total_wait_secs / s.submitted.max(1) as f64,
            utilization: c.utilization(makespan),
            backfilled: s.backfilled,
            completed: s.completed + s.timed_out,
        }
    };
    vec![
        run("FIFO", SchedulerKind::Fifo, false),
        run("EASY backfill", SchedulerKind::Backfill, false),
        run(
            "backfill + Maui-like priority",
            SchedulerKind::Backfill,
            true,
        ),
    ]
}

/// Failover experiment: replicate the controller mid-trace, kill the
/// primary, and check the replica finishes identically to an
/// uninterrupted run.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Jobs in the trace.
    pub jobs: u64,
    /// Completed under the uninterrupted controller.
    pub completed_primary: u64,
    /// Completed under the mid-run replica.
    pub completed_replica: u64,
    /// Whether the two runs finished with identical stats.
    pub identical: bool,
}

/// Run the failover experiment.
pub fn failover(seed: u64, cluster_nodes: u32, jobs: usize) -> FailoverResult {
    let cfg = TraceConfig {
        cluster_nodes,
        ..TraceConfig::default()
    };
    let trace = generate(&mut rng(seed), &cfg, jobs);

    // uninterrupted reference
    let mut reference = Controller::new(cluster_nodes, SchedulerKind::Backfill);
    run_trace(&mut reference, &trace);

    // interrupted run: replicate halfway through the submissions
    let half = jobs / 2;
    let mut primary = Controller::new(cluster_nodes, SchedulerKind::Backfill);
    // process completions between submissions exactly like run_trace so
    // the replica's event order matches the uninterrupted reference
    let drain_until = |c: &mut Controller, t| {
        while let Some(next) = c.next_completion() {
            if next > t {
                break;
            }
            c.advance(next);
        }
    };
    for j in trace.iter().take(half) {
        let now = j.submit;
        drain_until(&mut primary, now);
        let _ = primary.submit(now, j.request.clone());
        primary.advance(now);
    }
    // continuous replication; primary host dies here
    let mut replica = primary.clone();
    drop(primary);
    for j in trace.iter().skip(half) {
        let now = j.submit;
        drain_until(&mut replica, now);
        let _ = replica.submit(now, j.request.clone());
        replica.advance(now);
    }
    while let Some(next) = replica.next_completion() {
        replica.advance(next);
    }

    let a = reference.stats();
    let b = replica.stats();
    FailoverResult {
        jobs: jobs as u64,
        completed_primary: a.completed + a.timed_out,
        completed_replica: b.completed + b.timed_out,
        identical: a.completed == b.completed
            && a.timed_out == b.timed_out
            && a.backfilled == b.backfilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backfill_improves_wait_without_hurting_utilization() {
        let rows = policy_comparison(11, 64, 400);
        let fifo = &rows[0];
        let bf = &rows[1];
        assert_eq!(fifo.completed, 400);
        assert_eq!(bf.completed, 400);
        assert!(bf.backfilled > 0);
        assert!(
            bf.mean_wait_secs < fifo.mean_wait_secs,
            "{bf:?} vs {fifo:?}"
        );
        assert!(bf.utilization >= fifo.utilization * 0.95);
    }

    #[test]
    fn failover_loses_nothing() {
        let r = failover(13, 32, 200);
        assert_eq!(r.completed_replica, r.jobs);
        assert!(r.identical, "{r:?}");
    }
}
