//! E14: resilience under deterministic chaos campaigns.
//!
//! The paper's pitch is qualitative — failed nodes are noticed, power-
//! cycled and reported without flooding the administrator. E14 makes it
//! quantitative: the three canned `cwx-chaos` campaigns (rack
//! partitions, chassis-controller carnage, flapping nodes) run under
//! fixed seeds while the invariant checker watches, and we report the
//! detection latency, mean time to repair, fleet availability and
//! notification volume each campaign produced — plus the two numbers
//! that must always be zero and always be equal: invariant violations,
//! and the audit-hash difference between two runs of the same seed.

use cwx_chaos::{run_campaign, scenario, CampaignReport, SCENARIO_NAMES};

/// One campaign's row in the E14 table.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The campaign's report.
    pub report: CampaignReport,
    /// Whether a second run under the same seed produced the same
    /// audit-trail hash.
    pub reproducible: bool,
}

/// Run one canned scenario (twice — the second run checks
/// reproducibility).
pub fn canned(name: &str) -> ChaosRun {
    let c = scenario(name).expect("canned scenario");
    let report = run_campaign(&c);
    let again = run_campaign(&c);
    let reproducible = report.audit_hash == again.audit_hash && report.audit_len == again.audit_len;
    ChaosRun {
        report,
        reproducible,
    }
}

/// All three canned campaigns, in presentation order.
pub fn all_canned() -> Vec<ChaosRun> {
    SCENARIO_NAMES.iter().map(|n| canned(n)).collect()
}
