//! E10: ICE Box chassis behaviours (paper §3).
//!
//! Two claims: power sequencing "reducing the risk of power spikes",
//! and the 16 KiB serial buffers enable "post-mortem analysis on what
//! has happened to a specific node".

use cwx_icebox::chassis::{IceBox, PortEffect, PortId, INLET_CAPACITY_WATTS};
use cwx_util::time::SimTime;

/// Node inrush model: early-2000s 1U server.
pub const INRUSH_WATTS: f64 = 300.0;
/// Inrush duration, seconds.
pub const INRUSH_SECS: f64 = 0.35;

/// Sequencing experiment result.
#[derive(Debug, Clone)]
pub struct SequencingResult {
    /// Peak inlet wattage with sequencing on.
    pub sequenced_peak_watts: f64,
    /// Peak inlet wattage with sequencing off.
    pub unsequenced_peak_watts: f64,
    /// The 15 A @ 110 V inlet limit.
    pub inlet_capacity_watts: f64,
}

/// Power all five ports of inlet 0 simultaneously, with and without
/// sequencing, and compare peak inrush.
pub fn sequencing() -> SequencingResult {
    let energize = |sequencing: bool| {
        let mut ib = IceBox::new();
        ib.set_sequencing(sequencing);
        (0..5u8)
            .filter_map(|i| ib.power_on(SimTime::ZERO, PortId(i)))
            .map(|e| match e {
                PortEffect::EnergizeAt { port, at } => (port, at),
                _ => unreachable!(),
            })
            .collect::<Vec<_>>()
    };
    let seq = energize(true);
    let unseq = energize(false);
    SequencingResult {
        sequenced_peak_watts: IceBox::peak_inlet_watts(&seq, 0, INRUSH_WATTS, INRUSH_SECS),
        unsequenced_peak_watts: IceBox::peak_inlet_watts(&unseq, 0, INRUSH_WATTS, INRUSH_SECS),
        inlet_capacity_watts: INLET_CAPACITY_WATTS,
    }
}

/// Post-mortem experiment result.
#[derive(Debug, Clone)]
pub struct PostMortemResult {
    /// Total console bytes the crashing node emitted.
    pub emitted_bytes: u64,
    /// Bytes retained in the capture buffer.
    pub retained_bytes: usize,
    /// Whether the final panic message survived for analysis.
    pub panic_visible: bool,
    /// Whether early boot chatter was (correctly) evicted.
    pub boot_chatter_evicted: bool,
}

/// A node boots noisily, runs for a while, then panics with a long
/// stack dump; the administrator reads the capture afterwards.
pub fn post_mortem() -> PostMortemResult {
    let mut ib = IceBox::new();
    let p = PortId(3);
    // boot chatter
    for i in 0..500 {
        ib.feed_console(
            p,
            format!("[    {i:4}.000] subsystem {i} initialized ok\n").as_bytes(),
        );
    }
    // steady-state noise
    for i in 0..1000 {
        ib.feed_console(p, format!("nfs: server responding (req {i})\n").as_bytes());
    }
    // the crash
    ib.feed_console(p, b"Oops: kernel NULL pointer dereference\n");
    for f in 0..40 {
        ib.feed_console(
            p,
            format!("  [<c01{f:03x}00>] do_something+0x{f:x}/0x120\n").as_bytes(),
        );
    }
    ib.feed_console(p, b"Kernel panic: Attempted to kill init!\n");

    let log = ib.console_log(p);
    PostMortemResult {
        emitted_bytes: ib.console_overflow(p) + log.len() as u64,
        retained_bytes: log.len(),
        panic_visible: log.contains("Kernel panic") && log.contains("Oops"),
        boot_chatter_evicted: !log.contains("subsystem 0 initialized"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_icebox::chassis::SERIAL_LOG_CAPACITY;

    #[test]
    fn sequencing_keeps_inrush_under_the_inlet_limit() {
        let r = sequencing();
        assert!(
            r.unsequenced_peak_watts > r.inlet_capacity_watts * 0.9,
            "five simultaneous inrushes should threaten the 15A limit: {r:?}"
        );
        assert!(
            r.sequenced_peak_watts <= INRUSH_WATTS,
            "sequenced outlets never overlap inrush: {r:?}"
        );
    }

    #[test]
    fn post_mortem_keeps_the_crash_drops_the_noise() {
        let r = post_mortem();
        assert!(r.retained_bytes <= SERIAL_LOG_CAPACITY);
        assert!(
            r.emitted_bytes > SERIAL_LOG_CAPACITY as u64,
            "test must overflow the buffer"
        );
        assert!(r.panic_visible, "{r:?}");
        assert!(r.boot_chatter_evicted, "{r:?}");
    }
}
