//! E16: realtime ingest density — connections vs CPU, memory, and
//! tail latency; reactor vs thread-per-connection (paper §5.3: data
//! gathering "must not impact application performance"; one management
//! server absorbs the whole cluster's agent traffic).
//!
//! Each scenario runs in its own subprocess (re-exec of the
//! `experiments` binary) so CPU and RSS are measured per run from
//! `/proc/self`, uncontaminated by earlier scenarios or the allocator's
//! retained arenas. The client side runs in a further subprocess so the
//! server's and driver's descriptor budgets never share one process —
//! the container's `RLIMIT_NOFILE` ceiling (20k here, unraisable)
//! otherwise caps in-process loopback benches at half the advertised
//! connection count. Scales beyond the per-process fd headroom are
//! clamped and flagged in the row.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clusterworx::actions::ControlPlane;
use clusterworx::ingest::{drive, IngestConfig, IngestMode, IngestServer, LoadConfig};
use clusterworx::server::Server;
use cwx_util::time::SimDuration;
use parking_lot::{Mutex, RwLock};

/// One (mode, scale) measurement.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// `"reactor"` or `"thread-per-conn"`.
    pub mode: &'static str,
    /// Concurrent connections requested.
    pub requested: usize,
    /// Concurrent connections actually driven (fd-clamped).
    pub conns: usize,
    /// Frames each connection sent.
    pub frames_per_conn: u64,
    /// History ring slots per series. 1 = live-view (current values
    /// only) so the per-connection cost is the ingest architecture;
    /// larger values add retained-sample memory that is identical in
    /// both modes.
    pub retention: usize,
    /// Frames the server ingested.
    pub ingested: u64,
    /// Wall seconds from first connect to drained shutdown.
    pub wall_secs: f64,
    /// Server-process CPU seconds (utime+stime) over that window.
    pub cpu_secs: f64,
    /// Peak server-process resident set, MiB.
    pub rss_mib: f64,
    /// Connections per GiB of peak RSS (density).
    pub conns_per_gib: f64,
    /// Ingest latency (readiness read → store visible), microseconds.
    pub p50_us: f64,
    /// 99th percentile of the same.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
    /// Connections evicted (should be 0 under healthy load).
    pub evicted: u64,
    /// Lane backpressure trips.
    pub backpressure: u64,
    /// False when the scenario subprocess died before reporting — the
    /// architecture could not reach this scale at all.
    pub completed: bool,
}

/// Read (utime+stime) of this process in seconds from `/proc/self/stat`.
fn cpu_secs() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // fields 14/15 (1-based) count user/sys ticks; the comm field may
    // contain spaces, so parse after the closing paren
    let Some(rest) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let f: Vec<&str> = rest.split_whitespace().collect();
    let utime: f64 = f.get(11).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let stime: f64 = f.get(12).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    (utime + stime) / 100.0 // USER_HZ
}

/// Current VmRSS in MiB from `/proc/self/status`.
fn rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(v) = line.strip_prefix("VmRSS:") {
            let kb: f64 = v
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Largest connection count one process can hold here, with headroom
/// for the listener, poller, waker, stdio and store fds.
pub fn fd_clamp(conns: usize) -> usize {
    let limit = cwx_net::reactor::raise_nofile_limit()
        .map(|(cur, _)| cur as usize)
        .unwrap_or(1024);
    conns.min(limit.saturating_sub(512))
}

const SCENARIO_FLAG: &str = "--e16-scenario";
const DRIVE_FLAG: &str = "--e16-drive";

/// Dispatch for the `experiments` binary: when re-exec'd as an E16
/// subprocess, run that role and exit. Call first thing in `main`.
pub fn subprocess_main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some(SCENARIO_FLAG) => {
            scenario_main(&args[2..]);
            std::process::exit(0);
        }
        Some(DRIVE_FLAG) => {
            drive_main(&args[2..]);
            std::process::exit(0);
        }
        _ => {}
    }
}

/// Client-driver subprocess: `--e16-drive <addr> <conns> <frames>
/// <interval_ms> <keys>`.
fn drive_main(args: &[String]) {
    let addr = args[0].clone();
    let conns: usize = args[1].parse().unwrap();
    let frames_per_conn: u64 = args[2].parse().unwrap();
    let interval = Duration::from_millis(args[3].parse().unwrap());
    let keys: usize = args[4].parse().unwrap();
    let _ = cwx_net::reactor::raise_nofile_limit();
    let stats = drive(LoadConfig {
        addr,
        conns,
        frames_per_conn,
        interval,
        writer_threads: 8,
        keys,
        ..LoadConfig::default()
    })
    .unwrap();
    println!(
        "E16DRIVE connected={} frames_sent={} write_errors={}",
        stats.connected, stats.frames_sent, stats.write_errors
    );
}

/// Server-side scenario subprocess: `--e16-scenario <mode> <conns>
/// <frames> <interval_ms> <keys> <retention>`. Prints one
/// `E16ROW key=value ...` line.
fn scenario_main(args: &[String]) {
    let mode = match args[0].as_str() {
        "reactor" => IngestMode::Reactor,
        _ => IngestMode::ThreadPerConn,
    };
    let conns: usize = args[1].parse().unwrap();
    let frames_per_conn: u64 = args[2].parse().unwrap();
    let interval_ms: u64 = args[3].parse().unwrap();
    let keys: usize = args[4].parse().unwrap();
    let retention: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(16);
    let _ = cwx_net::reactor::raise_nofile_limit();

    let server = Arc::new(RwLock::new(Server::new(
        "e16",
        SimDuration::from_secs(5),
        retention,
        SimDuration::from_secs(3600),
    )));
    let control = Arc::new(Mutex::new(ControlPlane::new(1024)));
    let ingest = IngestServer::start(
        IngestConfig {
            mode,
            n_lanes: 4,
            nodes_per_group: (conns as u32).div_ceil(4).max(1),
            ..IngestConfig::default()
        },
        Arc::clone(&server),
        None,
        control,
        Instant::now(),
    )
    .unwrap();
    let addr = ingest.addr().to_string();

    // RSS peaks while every connection is live; sample in the background
    let peak = Arc::new(Mutex::new(rss_mib()));
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let sampler = {
        let peak = Arc::clone(&peak);
        let stop = Arc::clone(&stop_sampler);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let now = rss_mib();
                let mut p = peak.lock();
                if now > *p {
                    *p = now;
                }
                drop(p);
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    let cpu0 = cpu_secs();
    let t0 = Instant::now();
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args([
            DRIVE_FLAG,
            &addr,
            &conns.to_string(),
            &frames_per_conn.to_string(),
            &interval_ms.to_string(),
            &keys.to_string(),
        ])
        .stdout(Stdio::inherit())
        .status()
        .expect("driver subprocess");
    assert!(status.success(), "driver failed");
    let ingested = ingest.stats();
    let lat = ingest.latency();
    let total = ingest.shutdown();
    let wall = t0.elapsed().as_secs_f64();
    let cpu = cpu_secs() - cpu0;
    stop_sampler.store(true, Ordering::Relaxed);
    let _ = sampler.join();
    let rss = *peak.lock();

    println!(
        "E16ROW conns={conns} frames={frames_per_conn} retention={retention} ingested={total} \
         wall={wall:.3} cpu={cpu:.3} rss_mib={rss:.1} p50_us={:.1} p99_us={:.1} max_us={:.1} \
         evicted={} backpressure={} accepted={} handoff_drops={} decode_errors={}",
        lat.p50_us,
        lat.p99_us,
        lat.max_us,
        ingested.evicted,
        ingested.backpressure_trips,
        ingested.accepted,
        ingested.handoff_drops,
        ingested.decode_errors,
    );
}

fn parse_row(line: &str) -> Option<std::collections::BTreeMap<String, f64>> {
    let rest = line.strip_prefix("E16ROW ")?;
    let mut m = std::collections::BTreeMap::new();
    for kv in rest.split_whitespace() {
        let (k, v) = kv.split_once('=')?;
        m.insert(k.to_string(), v.parse().ok()?);
    }
    Some(m)
}

/// Run one (mode, scale) scenario in a fresh subprocess.
pub fn scenario(
    mode: IngestMode,
    requested: usize,
    frames_per_conn: u64,
    interval: Duration,
    keys: usize,
    retention: usize,
) -> IngestRow {
    let conns = fd_clamp(requested);
    let mode_str = match mode {
        IngestMode::Reactor => "reactor",
        IngestMode::ThreadPerConn => "thread-per-conn",
    };
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args([
            SCENARIO_FLAG,
            mode_str,
            &conns.to_string(),
            &frames_per_conn.to_string(),
            &interval.as_millis().to_string(),
            &keys.to_string(),
            &retention.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("scenario subprocess");
    let out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut row = None;
    for line in out.lines().map_while(Result::ok) {
        if let Some(m) = parse_row(&line) {
            row = Some(m);
        }
    }
    let _ = child.wait();
    let Some(m) = row else {
        // the subprocess died before reporting (e.g. thread-per-conn
        // aborted by a kernel resource limit): that inability to reach
        // the scale IS the measurement — record an incomplete row
        return IngestRow {
            mode: mode_str,
            requested,
            conns,
            frames_per_conn,
            retention,
            ingested: 0,
            wall_secs: 0.0,
            cpu_secs: 0.0,
            rss_mib: 0.0,
            conns_per_gib: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
            evicted: 0,
            backpressure: 0,
            completed: false,
        };
    };
    let g = |k: &str| m.get(k).copied().unwrap_or(0.0);
    let rss = g("rss_mib");
    IngestRow {
        mode: mode_str,
        requested,
        conns,
        frames_per_conn,
        retention,
        ingested: g("ingested") as u64,
        wall_secs: g("wall"),
        cpu_secs: g("cpu"),
        rss_mib: rss,
        conns_per_gib: if rss > 0.0 {
            conns as f64 / (rss / 1024.0)
        } else {
            0.0
        },
        p50_us: g("p50_us"),
        p99_us: g("p99_us"),
        max_us: g("max_us"),
        evicted: g("evicted") as u64,
        backpressure: g("backpressure") as u64,
        completed: true,
    }
}

/// The sweep: both modes at each scale with a live-view store
/// (retention 1), so the per-connection memory is the ingest
/// architecture itself; then one pair at the largest scale with
/// history retention, showing the retained-sample cost is
/// mode-independent.
pub fn sweep(scales: &[usize], frames_per_conn: u64, interval: Duration) -> Vec<IngestRow> {
    let mut rows = Vec::new();
    for &n in scales {
        for mode in [IngestMode::Reactor, IngestMode::ThreadPerConn] {
            rows.push(scenario(mode, n, frames_per_conn, interval, 8, 1));
        }
    }
    if let Some(&n) = scales.last() {
        for mode in [IngestMode::Reactor, IngestMode::ThreadPerConn] {
            rows.push(scenario(mode, n, frames_per_conn, interval, 8, 16));
        }
    }
    rows
}

/// Render the rows as a machine-readable JSON document.
pub fn to_json(rows: &[IngestRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e16_ingest\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requested\": {}, \"conns\": {}, \
             \"frames_per_conn\": {}, \"retention\": {}, \"ingested\": {}, \
             \"wall_secs\": {:.3}, \
             \"cpu_secs\": {:.3}, \"rss_mib\": {:.1}, \"conns_per_gib\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \
             \"evicted\": {}, \"backpressure\": {}, \"completed\": {}}}{}\n",
            r.mode,
            r.requested,
            r.conns,
            r.frames_per_conn,
            r.retention,
            r.ingested,
            r.wall_secs,
            r.cpu_secs,
            r.rss_mib,
            r.conns_per_gib,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.evicted,
            r.backpressure,
            r.completed,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
