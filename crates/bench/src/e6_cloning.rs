//! E6: the cloning experiment (paper §4). Headline row: "It took about
//! 12 min. to clone and reboot over 400 nodes of the Lawrence Livermore
//! cluster" over a single fast Ethernet, using reliable multicast.
//!
//! We regenerate: the 400-node headline configuration, a node-count
//! sweep (multicast vs unicast — where the crossover is immediate and
//! the gap grows linearly), a loss-rate sweep, and the repair-strategy
//! ablation.

use cwx_bios::Firmware;
use cwx_clone::protocol::{run_clone, CloneConfig, CloneReport, RepairStrategy};
use cwx_net::FAST_ETHERNET_BPS;

/// The LLNL-like headline configuration: 2 GiB image, paced reliable
/// multicast on one fast Ethernet, legacy-era reboot.
pub fn llnl_config() -> CloneConfig {
    CloneConfig {
        image_bytes: 2 << 30,
        chunk_bytes: 1 << 20,
        pace_bps: 4 << 20,
        strategy: RepairStrategy::MulticastRoundRobin,
        disk_write_bps: 25 << 20,
        firmware: Firmware::LegacyBios,
        ..CloneConfig::default()
    }
}

/// The paper's headline number, minutes.
pub const PAPER_MINUTES: f64 = 12.0;
/// The paper's node count ("over 400 nodes").
pub const PAPER_NODES: u32 = 400;

/// Run the headline experiment.
pub fn headline(seed: u64, loss: f64) -> CloneReport {
    run_clone(seed, PAPER_NODES, FAST_ETHERNET_BPS, loss, llnl_config())
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Target nodes.
    pub n_nodes: u32,
    /// Multicast result.
    pub multicast: CloneReport,
    /// Unicast baseline. Runs at every node count — the ~N× event
    /// volume that used to force a skip above 100 nodes is cheap under
    /// the timing-wheel engine, so the sweep shows the multicast gap
    /// all the way out to the paper's 400-node scale.
    pub unicast: CloneReport,
}

/// Node-count sweep with a shared image size.
pub fn node_sweep(seed: u64, image_bytes: u64, loss: f64, counts: &[u32]) -> Vec<SweepPoint> {
    counts
        .iter()
        .map(|&n| {
            let cfg = CloneConfig {
                image_bytes,
                ..llnl_config()
            };
            let multicast = run_clone(seed, n, FAST_ETHERNET_BPS, loss, cfg.clone());
            let unicast = run_clone(
                seed,
                n,
                FAST_ETHERNET_BPS,
                loss,
                CloneConfig {
                    strategy: RepairStrategy::Unicast,
                    ..cfg
                },
            );
            SweepPoint {
                n_nodes: n,
                multicast,
                unicast,
            }
        })
        .collect()
}

/// Loss-rate sweep at fixed node count.
pub fn loss_sweep(seed: u64, n: u32, image_bytes: u64, losses: &[f64]) -> Vec<(f64, CloneReport)> {
    losses
        .iter()
        .map(|&loss| {
            let cfg = CloneConfig {
                image_bytes,
                ..llnl_config()
            };
            (loss, run_clone(seed, n, FAST_ETHERNET_BPS, loss, cfg))
        })
        .collect()
}

/// Chunk-size ablation (DESIGN.md: protocol design knobs). Bigger
/// chunks cut per-chunk overhead but lose more data per dropped packet.
pub fn chunk_sweep(seed: u64, n: u32, image_bytes: u64, loss: f64) -> Vec<(u64, CloneReport)> {
    [256 << 10, 512 << 10, 1 << 20, 4 << 20]
        .into_iter()
        .map(|chunk| {
            let cfg = CloneConfig {
                image_bytes,
                chunk_bytes: chunk,
                ..llnl_config()
            };
            (chunk, run_clone(seed, n, FAST_ETHERNET_BPS, loss, cfg))
        })
        .collect()
}

/// Repair-strategy ablation at fixed loss.
pub fn repair_ablation(
    seed: u64,
    n: u32,
    image_bytes: u64,
    loss: f64,
) -> Vec<(&'static str, CloneReport)> {
    let base = CloneConfig {
        image_bytes,
        ..llnl_config()
    };
    vec![
        (
            "round-robin unicast repair (paper)",
            run_clone(seed, n, FAST_ETHERNET_BPS, loss, base.clone()),
        ),
        (
            "re-multicast x2 then round-robin",
            run_clone(
                seed,
                n,
                FAST_ETHERNET_BPS,
                loss,
                CloneConfig {
                    strategy: RepairStrategy::MulticastRemulticast { rounds: 2 },
                    ..base
                },
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_lands_near_the_papers_12_minutes() {
        // switched fast Ethernet of the era: ~0.1% effective chunk loss
        let r = headline(1, 0.001);
        let minutes = r.makespan_secs / 60.0;
        assert_eq!(r.failed_nodes, 0);
        // shape criterion: same order of magnitude, within 2x
        assert!(
            (PAPER_MINUTES / 2.0..=PAPER_MINUTES * 2.0).contains(&minutes),
            "expected ~12 min for 400 nodes, got {minutes:.1}"
        );
    }

    #[test]
    fn sweep_multicast_flat_unicast_linear() {
        let pts = node_sweep(2, 64 << 20, 0.0, &[5, 20, 50]);
        let mc5 = pts[0].multicast.data_complete_secs;
        let mc50 = pts[2].multicast.data_complete_secs;
        assert!(
            mc50 < mc5 * 1.5,
            "multicast distribution ~independent of N: {mc5} vs {mc50}"
        );
        let uni5 = pts[0].unicast.data_complete_secs;
        let uni50 = pts[2].unicast.data_complete_secs;
        assert!(
            uni50 > uni5 * 5.0,
            "unicast scales with N: {uni5} vs {uni50}"
        );
    }

    #[test]
    fn loss_increases_repairs_not_failure() {
        let rows = loss_sweep(3, 30, 64 << 20, &[0.0, 0.02, 0.08]);
        assert_eq!(rows[0].1.repair_chunks, 0);
        assert!(rows[2].1.repair_chunks > rows[1].1.repair_chunks);
        assert!(rows.iter().all(|(_, r)| r.failed_nodes == 0));
    }

    #[test]
    fn chunk_sweep_trades_overhead_for_repair_cost() {
        let rows = chunk_sweep(7, 20, 64 << 20, 0.02);
        assert_eq!(rows.len(), 4);
        // at the same loss probability per packet, bigger chunks mean
        // more repair BYTES even if fewer repair packets
        let small = &rows[0].1;
        let big = &rows[3].1;
        assert!(
            small.repair_chunks > big.repair_chunks,
            "more small chunks lost"
        );
        let small_bytes = small.repair_chunks * (256 << 10);
        let big_bytes = big.repair_chunks * (4 << 20);
        assert!(
            big_bytes > small_bytes,
            "but more repair bytes for big chunks"
        );
        assert!(rows.iter().all(|(_, r)| r.failed_nodes == 0));
    }
}
