//! E9: event-engine fault campaigns (paper §5.2).
//!
//! "e.g. powering down a node on CPU fan failure to prevent the CPU from
//! burning" — we inject fan failures across a loaded cluster and measure
//! whether the engine's power-down beats the burn threshold, how long
//! detection takes, and how many emails the administrator receives
//! (smart notification: one per event episode, not one per node).

use clusterworx::world::schedule_fault;
use clusterworx::{Cluster, ClusterConfig, WorkloadMix};
use cwx_events::Action;
use cwx_hw::node::Fault;
use cwx_hw::HealthState;
use cwx_util::rng::rng;
use cwx_util::stats::Summary;
use cwx_util::time::{SimDuration, SimTime};
use rand::Rng;

/// Result of one campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Cluster size.
    pub n_nodes: u32,
    /// Fan failures injected.
    pub failures: u32,
    /// Power-down actions executed.
    pub power_downs: u32,
    /// Seconds from injection to executed action, per failed node.
    pub action_latency: Option<Summary>,
    /// Emails sent about the fan event.
    pub emails: usize,
    /// Firings folded into existing episodes (mail suppressed).
    pub suppressed: u64,
    /// CPUs that burned (the failure the engine exists to prevent).
    pub burned: u32,
    /// CPUs that burned in the no-event-engine baseline.
    pub burned_without_engine: u32,
}

/// Inject `failures` fan failures at random loaded nodes and measure the
/// response. `disable_engine` removes all rules — the ablation showing
/// what the engine is worth.
pub fn fan_campaign(seed: u64, n_nodes: u32, failures: u32, disable_engine: bool) -> Campaign {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes,
        seed,
        workload: WorkloadMix::Constant(0.95),
        ..Default::default()
    });
    if disable_engine {
        let ids: Vec<_> = sim
            .world_mut()
            .server
            .engine_mut()
            .defs()
            .iter()
            .map(|d| d.id)
            .collect();
        for id in ids {
            sim.world_mut().server.engine_mut().remove(id);
        }
    }
    // warm up: boot + reach thermal steady state
    sim.run_for(SimDuration::from_secs(400));

    let mut r = rng(seed ^ 0xfa11);
    let mut victims: Vec<u32> = (0..n_nodes).collect();
    // Fisher–Yates prefix shuffle for distinct victims
    for i in 0..failures.min(n_nodes) as usize {
        let j = r.random_range(i..victims.len());
        victims.swap(i, j);
    }
    let victims: Vec<u32> = victims
        .into_iter()
        .take(failures.min(n_nodes) as usize)
        .collect();
    let mut inject_times = Vec::new();
    for &v in &victims {
        let at = sim.now() + SimDuration::from_secs(r.random_range(0..120));
        inject_times.push((v, at));
        schedule_fault(&mut sim, at, v, Fault::FanFailure);
    }
    // enough time for the thermal runaway to play out either way
    sim.run_for(SimDuration::from_secs(1500));

    let w = sim.world();
    let action_log = w.action_log();
    let mut latencies = Vec::new();
    let mut power_downs = 0;
    for &(v, at) in &inject_times {
        if let Some(a) = action_log
            .iter()
            .find(|a| a.node == v && a.action == Action::PowerDown && a.time >= at)
        {
            power_downs += 1;
            latencies.push(a.time.since(at).as_secs_f64());
        }
    }
    let burned = w
        .nodes
        .iter()
        .filter(|n| n.hw.health() == HealthState::Burned)
        .count() as u32;
    let emails = w
        .server
        .outbox()
        .iter()
        .filter(|m| m.event == "cpu-fan-failure")
        .count();

    // baseline: same campaign without the engine
    let burned_without_engine = if disable_engine {
        burned
    } else {
        fan_campaign(seed, n_nodes, failures, true).burned
    };

    Campaign {
        n_nodes,
        failures: victims.len() as u32,
        power_downs,
        action_latency: Summary::of(&latencies),
        emails,
        suppressed: w.server.mails_suppressed(),
        burned,
        burned_without_engine,
    }
}

/// One row of the mixed-fault reliability drill.
#[derive(Debug, Clone)]
pub struct DrillRow {
    /// Fault injected.
    pub fault: &'static str,
    /// Node targeted.
    pub node: u32,
    /// Action the framework executed (if any).
    pub action: Option<String>,
    /// Whether the node is up again at the end.
    pub recovered: bool,
    /// Whether the hardware survived (not burned).
    pub hardware_safe: bool,
}

/// Inject one of each fault type into a loaded cluster and report how
/// the framework handled each — the "omniscient and omnipotent" claim
/// exercised across every failure mode at once.
pub fn mixed_drill(seed: u64, n_nodes: u32) -> Vec<DrillRow> {
    assert!(n_nodes >= 8);
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes,
        seed,
        workload: WorkloadMix::Constant(0.85),
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(400));
    let faults: [(&'static str, Fault, u32); 4] = [
        ("fan failure", Fault::FanFailure, 1),
        ("kernel panic", Fault::KernelPanic, 3),
        ("PSU failure", Fault::PsuFailure, 5),
        ("memory leak", Fault::MemoryLeak, 7),
    ];
    let t0 = sim.now();
    for &(_, fault, node) in &faults {
        schedule_fault(&mut sim, t0 + SimDuration::from_secs(30), node, fault);
    }
    // the slowest chain (leak -> OOM -> reboot) needs tens of minutes
    sim.run_for(SimDuration::from_secs(2400));
    let w = sim.world();
    let action_log = w.action_log();
    faults
        .iter()
        .map(|&(name, _, node)| {
            let action = action_log
                .iter()
                .find(|a| a.node == node)
                .map(|a| format!("{:?}", a.action));
            DrillRow {
                fault: name,
                node,
                action,
                recovered: w.nodes[node as usize].hw.is_up(),
                hardware_safe: w.nodes[node as usize].hw.health() != HealthState::Burned,
            }
        })
        .collect()
}

/// Detection latency across cluster sizes (does the engine keep up?).
pub fn latency_scaling(seed: u64, sizes: &[u32]) -> Vec<(u32, Campaign)> {
    sizes
        .iter()
        .map(|&n| (n, fan_campaign(seed, n, (n / 8).max(1), false)))
        .collect()
}

/// Helper for tests: absolute simulated time.
pub fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_saves_cpus_baseline_burns_them() {
        let c = fan_campaign(5, 20, 4, false);
        assert_eq!(c.failures, 4);
        assert_eq!(c.power_downs, 4, "every failure must be acted on: {c:?}");
        assert_eq!(c.burned, 0, "the engine prevents burns: {c:?}");
        assert!(
            c.burned_without_engine >= 3,
            "the baseline burns CPUs: {c:?}"
        );
    }

    #[test]
    fn detection_is_fast_and_mail_is_deduplicated() {
        let c = fan_campaign(7, 30, 6, false);
        let lat = c.action_latency.expect("latencies recorded");
        // probe interval 5s + housekeeping: detection within ~seconds
        assert!(lat.max < 30.0, "action latency too high: {lat:?}");
        // failures spread over 120 s; episodes overlap so mail count
        // stays far below the node count
        assert!(c.emails >= 1 && c.emails <= c.failures as usize, "{c:?}");
    }

    #[test]
    fn mixed_drill_handles_every_fault_class() {
        let rows = mixed_drill(9, 10);
        let by = |name: &str| rows.iter().find(|r| r.fault == name).unwrap();
        // fan: contained by power-down, hardware saved, stays down
        let fan = by("fan failure");
        assert_eq!(fan.action.as_deref(), Some("PowerDown"), "{fan:?}");
        assert!(fan.hardware_safe && !fan.recovered);
        // panic: healed by reboot
        let panic = by("kernel panic");
        assert!(panic.recovered, "{panic:?}");
        // PSU: dead hardware, powered down, not recoverable in software
        let psu = by("PSU failure");
        assert!(!psu.recovered && psu.hardware_safe);
        // leak: OOM panic healed by reboot
        let leak = by("memory leak");
        assert!(leak.recovered, "{leak:?}");
        assert!(rows.iter().all(|r| r.hardware_safe));
    }
}
