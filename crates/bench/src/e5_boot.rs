//! E5: LinuxBIOS vs legacy BIOS boot times (paper §2: "about 3 seconds,
//! whereas most commercial BIOS alternatives require about 30 to 60
//! seconds"), including whole-cluster boot storms with ICE Box power
//! sequencing.

use cwx_bios::{BiosChip, Firmware, MemoryCheck};
use cwx_icebox::chassis::{IceBox, PortEffect, PortId, NODE_PORTS};
use cwx_util::rng::rng;
use cwx_util::stats::Summary;
use cwx_util::time::SimTime;

/// Result of booting a whole cluster at once.
#[derive(Debug, Clone)]
pub struct BootStorm {
    /// Firmware under test.
    pub firmware: Firmware,
    /// Nodes booted.
    pub n_nodes: u32,
    /// Per-node firmware time (power-good → kernel), seconds.
    pub firmware_secs: Summary,
    /// Time until the *last* node reached the kernel, including power
    /// sequencing, seconds.
    pub last_kernel_secs: f64,
    /// Time until the last node was fully up (kernel + init), seconds.
    pub last_up_secs: f64,
}

/// Boot `n` nodes simultaneously through sequenced ICE Boxes.
pub fn boot_storm(seed: u64, n: u32, firmware: Firmware) -> BootStorm {
    let mut r = rng(seed);
    let n_boxes = (n as usize).div_ceil(NODE_PORTS);
    let mut boxes: Vec<IceBox> = (0..n_boxes).map(|_| IceBox::new()).collect();
    let mut firmware_secs = Vec::with_capacity(n as usize);
    let mut last_kernel = 0.0f64;
    let mut last_up = 0.0f64;
    for i in 0..n {
        let bx = (i as usize) / NODE_PORTS;
        let port = PortId((i % NODE_PORTS as u32) as u8);
        let Some(PortEffect::EnergizeAt { at, .. }) = boxes[bx].power_on(SimTime::ZERO, port)
        else {
            unreachable!("fresh chassis port powers on")
        };
        let mut chip = BiosChip::new(firmware);
        let plan = chip.begin_boot(&mut r, MemoryCheck::Ok);
        let fw = plan.firmware_time().as_secs_f64();
        firmware_secs.push(fw);
        last_kernel = last_kernel.max(at.as_secs_f64() + fw);
        last_up = last_up.max(at.as_secs_f64() + plan.total_time().as_secs_f64());
    }
    BootStorm {
        firmware,
        n_nodes: n,
        firmware_secs: Summary::of(&firmware_secs).expect("nonempty"),
        last_kernel_secs: last_kernel,
        last_up_secs: last_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_matches_paper_bands() {
        let lb = boot_storm(1, 1, Firmware::LinuxBios);
        assert!(
            (2.0..=4.0).contains(&lb.firmware_secs.mean),
            "{:?}",
            lb.firmware_secs
        );
        let legacy = boot_storm(1, 1, Firmware::LegacyBios);
        assert!(
            (28.0..=65.0).contains(&legacy.firmware_secs.mean),
            "{:?}",
            legacy.firmware_secs
        );
    }

    #[test]
    fn storm_of_1000_nodes_still_an_order_of_magnitude_apart() {
        let lb = boot_storm(2, 1000, Firmware::LinuxBios);
        let legacy = boot_storm(2, 1000, Firmware::LegacyBios);
        assert!(lb.last_kernel_secs * 5.0 < legacy.last_kernel_secs);
        // sequencing adds the same overhead to both: 5 ports per inlet
        // stagger 0.4s -> last energize ~1.6s after the first
        assert!(lb.last_kernel_secs < 10.0, "{}", lb.last_kernel_secs);
    }

    #[test]
    fn legacy_variance_is_visible() {
        let legacy = boot_storm(3, 200, Firmware::LegacyBios);
        assert!(
            legacy.firmware_secs.std_dev > 1.0,
            "vendor BIOS POST times vary"
        );
        let lb = boot_storm(3, 200, Firmware::LinuxBios);
        assert!(lb.firmware_secs.std_dev < 0.5, "LinuxBIOS is deterministic");
    }
}
