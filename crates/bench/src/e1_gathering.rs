//! E1–E4: the /proc gathering experiments (paper §5.3.1).
//!
//! * E1 — the four-level optimization ladder on `/proc/meminfo`
//!   (paper: 85 → 4 173 → 14 031 → 33 855 samples/s).
//! * E2 — per-call cost of the optimized gatherer on each proc file
//!   (paper: stat 35 µs, loadavg 7.5 µs, uptime 6.2 µs, net/dev
//!   21.6 µs/device; meminfo 29.5 µs).
//! * E3 — agent CPU per hour at 50 samples/s (paper: ~5 s).
//! * E4 — "C vs Java": hand-optimized zero-alloc vs idiomatic
//!   allocating implementation (paper: C "only slightly ahead").

use std::time::Duration;

use cwx_proc::gather::{
    GatherLevel, KeepOpenFile, LoadAvgGatherer, MemInfoGatherer, NetDevGatherer, StatGatherer,
    UptimeGatherer,
};
use cwx_proc::source::{ProcSource, RealProc};
use cwx_proc::synthetic::SyntheticProc;
use cwx_proc::{meminfo, netdev};

use crate::measure::{micros_per_call, rate_per_sec};

/// Result row of the E1 ladder.
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// Which level.
    pub level: GatherLevel,
    /// Measured samples/second.
    pub samples_per_sec: f64,
    /// The paper's number for this level.
    pub paper_samples_per_sec: f64,
}

/// The paper's E1 column.
pub fn paper_ladder() -> [(GatherLevel, f64); 4] {
    [
        (GatherLevel::Naive, 85.0),
        (GatherLevel::Buffered, 4_173.0),
        (GatherLevel::Apriori, 14_031.0),
        (GatherLevel::KeepOpen, 33_855.0),
    ]
}

/// Run the E1 ladder on any proc source.
pub fn ladder<S: ProcSource + Clone>(source: &S, window: Duration) -> Vec<LadderRow> {
    paper_ladder()
        .into_iter()
        .map(|(level, paper)| {
            let mut g = MemInfoGatherer::new(source.clone(), level).expect("gatherer");
            let rate = rate_per_sec(
                || {
                    std::hint::black_box(g.sample().expect("sample"));
                },
                window,
            );
            LadderRow {
                level,
                samples_per_sec: rate,
                paper_samples_per_sec: paper,
            }
        })
        .collect()
}

/// The real `/proc`, when we are on a Linux host that exposes it.
pub fn real_proc() -> Option<RealProc> {
    let p = RealProc::new();
    p.available().then_some(p)
}

/// A synthetic node's /proc (deterministic fallback and sim-fidelity
/// datapoint).
pub fn synthetic_proc() -> SyntheticProc {
    SyntheticProc::default()
}

/// E2 row: per-file cost of the optimized (keep-open, a-priori)
/// gatherer.
#[derive(Debug, Clone)]
pub struct PerFileRow {
    /// File name.
    pub file: &'static str,
    /// Measured µs per call.
    pub micros: f64,
    /// Paper's µs per call.
    pub paper_micros: f64,
}

/// Run E2 on a source.
pub fn per_file_costs<S: ProcSource + Clone>(source: &S, window: Duration) -> Vec<PerFileRow> {
    let mut out = Vec::new();
    {
        let mut g = MemInfoGatherer::new(source.clone(), GatherLevel::KeepOpen).unwrap();
        out.push(PerFileRow {
            file: "meminfo",
            micros: micros_per_call(
                || {
                    std::hint::black_box(g.sample().unwrap().total_kb);
                },
                window,
            ),
            paper_micros: 29.5,
        });
    }
    {
        let mut g = StatGatherer::new(source).unwrap();
        out.push(PerFileRow {
            file: "stat",
            micros: micros_per_call(
                || {
                    std::hint::black_box(g.sample().unwrap().ctxt);
                },
                window,
            ),
            paper_micros: 35.0,
        });
    }
    {
        let mut g = LoadAvgGatherer::new(source).unwrap();
        out.push(PerFileRow {
            file: "loadavg",
            micros: micros_per_call(
                || {
                    std::hint::black_box(g.sample().unwrap().one);
                },
                window,
            ),
            paper_micros: 7.5,
        });
    }
    {
        let mut g = UptimeGatherer::new(source).unwrap();
        out.push(PerFileRow {
            file: "uptime",
            micros: micros_per_call(
                || {
                    std::hint::black_box(g.sample().unwrap().uptime_secs);
                },
                window,
            ),
            paper_micros: 6.2,
        });
    }
    {
        let mut g = NetDevGatherer::new(source).unwrap();
        // normalize to per-device cost like the paper
        let mut devices = 1usize;
        let us = micros_per_call(
            || {
                let ifs = g.sample().unwrap();
                devices = ifs.len().max(1);
                std::hint::black_box(ifs.len());
            },
            window,
        );
        out.push(PerFileRow {
            file: "net/dev (per device)",
            micros: us / devices as f64,
            paper_micros: 21.6,
        });
    }
    out
}

/// E3: CPU seconds per hour at a sampling rate, from the measured
/// meminfo cost (the paper quotes "approximately 5 seconds of CPU time
/// per hour at a monitoring rate of 50 samples per second").
pub fn cpu_secs_per_hour(meminfo_micros: f64, samples_per_sec: f64) -> f64 {
    meminfo_micros * 1e-6 * samples_per_sec * 3600.0
}

/// E4 result: optimized vs idiomatic implementations of the same
/// gather+parse.
#[derive(Debug, Clone)]
pub struct ImplComparison {
    /// Zero-allocation keep-open samples/s (the "C" side).
    pub optimized_per_sec: f64,
    /// Idiomatic allocating samples/s (the "Java" side).
    pub idiomatic_per_sec: f64,
}

impl ImplComparison {
    /// optimized / idiomatic rate ratio.
    pub fn ratio(&self) -> f64 {
        self.optimized_per_sec / self.idiomatic_per_sec
    }
}

/// Run E4: both implementations use the keep-open read (same syscall
/// pattern), differing only in parsing discipline — exactly the paper's
/// C-vs-Java framing (same algorithm, different language overhead; here,
/// different allocation discipline).
pub fn impl_comparison<S: ProcSource + Clone>(source: &S, window: Duration) -> ImplComparison {
    let optimized = {
        let mut g = MemInfoGatherer::new(source.clone(), GatherLevel::KeepOpen).unwrap();
        rate_per_sec(
            || {
                std::hint::black_box(g.sample().unwrap().total_kb);
            },
            window,
        )
    };
    let idiomatic = {
        let mut file = KeepOpenFile::open(source, "meminfo").unwrap();
        rate_per_sec(
            || {
                let bytes = file.read().unwrap();
                let text = String::from_utf8(bytes.to_vec()).unwrap();
                let parsed = meminfo::parse_generic(&text).unwrap();
                std::hint::black_box(parsed.total_kb as usize);
            },
            window,
        )
    };
    ImplComparison {
        optimized_per_sec: optimized,
        idiomatic_per_sec: idiomatic,
    }
}

/// The rstatd RPC baseline the paper dismisses: samples/second over a
/// real loopback UDP round trip (and only ~21 statistics per sample).
pub fn rstatd_baseline(window: Duration) -> f64 {
    use cwx_proc::rstatd::{reply_from_state, RstatClient, RstatServer};
    use cwx_proc::synthetic::SyntheticState;
    let state = SyntheticState::default();
    let server = RstatServer::spawn(move || reply_from_state(&state)).expect("rstatd server");
    let mut client = RstatClient::connect(server.addr()).expect("rstatd client");
    rate_per_sec(
        || {
            std::hint::black_box(client.sample().expect("rpc").boottime);
        },
        window,
    )
}

/// Sanity anchor used by tests: parsing agreement between the ladder
/// levels on whatever source we measure.
pub fn levels_agree<S: ProcSource + Clone>(source: &S) -> bool {
    let mut results = Vec::new();
    for level in GatherLevel::ALL {
        let mut g = MemInfoGatherer::new(source.clone(), level).unwrap();
        results.push(g.sample().unwrap());
    }
    results.windows(2).all(|w| w[0].total_kb == w[1].total_kb)
}

/// Re-export for the benches.
pub use netdev::IfStats;

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Duration = Duration::from_millis(60);

    #[test]
    fn ladder_is_monotone_on_synthetic() {
        let src = synthetic_proc();
        let rows = ladder(&src, FAST);
        assert_eq!(rows.len(), 4);
        // each optimization step must help, with generous slack for CI
        // noise on the adjacent pairs
        assert!(
            rows[3].samples_per_sec > rows[0].samples_per_sec * 10.0,
            "keep-open must crush naive: {:?}",
            rows.iter()
                .map(|r| r.samples_per_sec as u64)
                .collect::<Vec<_>>()
        );
        assert!(rows[1].samples_per_sec > rows[0].samples_per_sec * 4.0);
    }

    #[test]
    fn per_file_costs_are_positive_and_ordered() {
        let src = synthetic_proc();
        let rows = per_file_costs(&src, FAST);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.micros > 0.0 && r.micros < 10_000.0,
                "{}: {}",
                r.file,
                r.micros
            );
        }
        // loadavg/uptime are tiny files: cheaper than stat, like the paper
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.file.starts_with(name))
                .unwrap()
                .micros
        };
        assert!(get("loadavg") < get("stat"));
        assert!(get("uptime") < get("stat"));
    }

    #[test]
    fn cpu_budget_formula_matches_paper_shape() {
        // the paper's own numbers: 29.5us * 50/s * 3600 = 5.31s/hour
        let s = cpu_secs_per_hour(29.5, 50.0);
        assert!((s - 5.31).abs() < 0.01);
    }

    #[test]
    fn impl_comparison_optimized_wins_but_same_order() {
        let src = synthetic_proc();
        let cmp = impl_comparison(&src, FAST);
        assert!(cmp.ratio() > 1.0, "zero-alloc should win: {:?}", cmp);
        assert!(cmp.ratio() < 50.0, "but not absurdly: {:?}", cmp);
    }

    #[test]
    fn rstatd_is_slower_than_keep_open() {
        let rpc = rstatd_baseline(FAST);
        let src = synthetic_proc();
        let rows = ladder(&src, FAST);
        let keep_open = rows[3].samples_per_sec;
        assert!(rpc > 100.0, "rpc works at all: {rpc}");
        assert!(
            keep_open > rpc * 1.5,
            "the paper's point: /proc keep-open beats RPC gathering ({keep_open:.0} vs {rpc:.0})"
        );
    }

    #[test]
    fn levels_agree_on_synthetic() {
        assert!(levels_agree(&synthetic_proc()));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn levels_agree_on_real_proc() {
        if let Some(src) = real_proc() {
            // MemTotal is stable across the four samples
            assert!(levels_agree(&src));
        }
    }
}
