//! E17: query engine + downsampled serving tier — latency/throughput
//! vs fleet size and time range, cold vs warm block cache, and N
//! dashboard-shaped clients querying the ingest plane while agents
//! stream live traffic (the read-side sibling of E16).
//!
//! Part A runs in-process: a populated, compacted `DiskStore` is
//! queried through the same `Store::query` path the CLI and the
//! ingest endpoint use; per-tier block-cache counters attribute every
//! decode to the tier that served it, proving 1h-window queries never
//! touch raw blocks. Part B mirrors E16's subprocess shape: the
//! server (reactor + disk store + `CWQ1` endpoint) runs in a fresh
//! subprocess, the agent driver in a further subprocess, and the
//! dashboard clients live in the server process as plain TCP clients,
//! so ingest p99 with and without query load comes from identical
//! topologies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clusterworx::actions::ControlPlane;
use clusterworx::ingest::{
    drive, encode_query, parse_reply, IngestConfig, IngestMode, IngestServer, LoadConfig,
};
use clusterworx::server::Server;
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::{AggFunc, QueryGroup, QuerySpec, Resolution, Store};
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};

const SEC: u64 = 1_000_000_000;

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn tier_label(r: Resolution) -> &'static str {
    match r {
        Resolution::Raw => "raw",
        Resolution::TenSeconds => "10s",
        Resolution::FiveMinutes => "5m",
        Resolution::OneHour => "1h",
    }
}

// ---------------------------------------------------------------------
// Part A: tier selection, cold vs warm cache, fleet/range scaling

/// One (fleet, range, window, agg) measurement against a compacted
/// store.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Nodes in the store.
    pub fleet: u32,
    /// Seconds of history in the store.
    pub span_secs: u64,
    /// Seconds of history the query covered (suffix of the span).
    pub range_secs: u64,
    /// Output window label (`"10s"`, `"5m"`, `"1h"`).
    pub window: &'static str,
    /// Aggregation function name.
    pub agg: &'static str,
    /// Tier that answered (from `QueryStats`).
    pub tier: &'static str,
    /// First query after `clear_cache()`: every block decoded from
    /// disk, milliseconds.
    pub cold_ms: f64,
    /// Warm-cache latency, median over the repeat pass.
    pub warm_p50_ms: f64,
    /// Warm-cache latency, p99 over the repeat pass.
    pub warm_p99_ms: f64,
    /// Warm-cache queries per second (single caller).
    pub warm_qps: f64,
    /// Raw samples folded per query.
    pub scanned_raw: u64,
    /// Pre-aggregated buckets folded per query.
    pub scanned_buckets: u64,
    /// Block-cache misses on the serving tier during the cold query —
    /// the decode work the tier actually did.
    pub tier_misses_cold: u64,
    /// Block-cache misses on the *raw* tier during the same cold
    /// query. Zero for tier-served windows: the headline proof that a
    /// 1h window never decodes 10s-or-finer blocks.
    pub raw_misses_cold: u64,
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwx-e17-{tag}-{}", std::process::id()))
}

/// Build and compact a store: `fleet` nodes reporting `cpu.util`
/// every `cadence_secs` over `span_secs`.
pub fn populate(fleet: u32, span_secs: u64, cadence_secs: u64) -> DiskStore {
    let dir = tmp_dir(&format!("a{fleet}-{span_secs}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        n_shards: 8,
        nodes_per_group: fleet.div_ceil(8).max(1),
        flush_threshold: 1 << 16,
        compact_threshold: 2,
        cache_capacity_samples: 1 << 20,
    };
    let store = DiskStore::open(&dir, cfg).unwrap();
    for i in 0..span_secs / cadence_secs {
        let ts = (i + 1) * cadence_secs;
        for n in 0..fleet {
            // deterministic sawtooth, distinct per node
            let v = (ts % 97) as f64 + n as f64 * 0.01;
            store.append(n, "cpu.util", t(ts), v);
        }
    }
    store.compact_all().unwrap();
    store
}

/// Run the cold+warm passes for one (window, agg) over the trailing
/// `range_secs` of the store.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    store: &DiskStore,
    fleet: u32,
    span_secs: u64,
    range_secs: u64,
    window: &'static str,
    window_secs: u64,
    agg: AggFunc,
    warm_reps: usize,
) -> QueryRow {
    let spec = QuerySpec {
        monitor: "cpu.util".into(),
        from: t(span_secs.saturating_sub(range_secs)),
        to: t(span_secs),
        window_nanos: window_secs * SEC,
        agg,
        groups: vec![QueryGroup {
            key: "all".into(),
            nodes: (0..fleet).collect(),
        }],
        max_scan: 0,
    };
    store.clear_cache();
    let before = store.cache_stats();
    let t0 = Instant::now();
    let cold = store.query(&spec).unwrap();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = store.cache_stats();
    let tier = cold.stats.tier;
    let tier_misses_cold = after.tier(tier).misses - before.tier(tier).misses;
    let raw_misses_cold = if tier == Resolution::Raw {
        tier_misses_cold
    } else {
        after.tier(Resolution::Raw).misses - before.tier(Resolution::Raw).misses
    };

    let mut lats = Vec::with_capacity(warm_reps);
    let w0 = Instant::now();
    for _ in 0..warm_reps {
        let q0 = Instant::now();
        let _ = store.query(&spec).unwrap();
        lats.push(q0.elapsed().as_secs_f64() * 1e3);
    }
    let warm_wall = w0.elapsed().as_secs_f64();
    lats.sort_by(|a, b| a.total_cmp(b));
    QueryRow {
        fleet,
        span_secs,
        range_secs,
        window,
        agg: agg.name(),
        tier: tier_label(tier),
        cold_ms,
        warm_p50_ms: cwx_util::stats::percentile_sorted(&lats, 0.50),
        warm_p99_ms: cwx_util::stats::percentile_sorted(&lats, 0.99),
        warm_qps: warm_reps as f64 / warm_wall.max(1e-9),
        scanned_raw: cold.stats.scanned_raw,
        scanned_buckets: cold.stats.scanned_buckets,
        tier_misses_cold,
        raw_misses_cold,
    }
}

/// The part-A sweep: for each fleet size, every window/agg combo over
/// the full span, plus a trailing-hour range at the largest windows to
/// show range scaling.
pub fn query_sweep(
    fleets: &[u32],
    span_secs: u64,
    cadence_secs: u64,
    quick: bool,
) -> Vec<QueryRow> {
    let warm_reps = if quick { 10 } else { 30 };
    let combos: &[(&'static str, u64, AggFunc)] = &[
        ("10s", 10, AggFunc::Avg),
        ("5m", 300, AggFunc::Avg),
        ("1h", 3_600, AggFunc::Avg),
        ("1h", 3_600, AggFunc::P99),
    ];
    let mut rows = Vec::new();
    for &fleet in fleets {
        let store = populate(fleet, span_secs, cadence_secs);
        for &(label, wsecs, agg) in combos {
            rows.push(measure(
                &store, fleet, span_secs, span_secs, label, wsecs, agg, warm_reps,
            ));
        }
        // range scaling: the same 5m dashboard query over only the
        // trailing hour instead of the whole span
        if span_secs > 3_600 {
            rows.push(measure(
                &store,
                fleet,
                span_secs,
                3_600,
                "5m",
                300,
                AggFunc::Avg,
                warm_reps,
            ));
        }
        let dir = store.dir().to_path_buf();
        drop(store);
        let _ = std::fs::remove_dir_all(dir);
    }
    rows
}

// ---------------------------------------------------------------------
// Part B: dashboard clients vs live ingest (subprocess, E16 shape)

/// One (agents, dashboards) run: ingest tail latency with query load.
#[derive(Debug, Clone)]
pub struct LiveRow {
    /// Live agent connections streaming CWB1 frames.
    pub agents: usize,
    /// Concurrent dashboard clients speaking `CWQ1` (0 = the no-query
    /// baseline the 2x acceptance bound compares against).
    pub dashboards: usize,
    /// Reports the server ingested.
    pub ingested: u64,
    /// Ingest latency (readiness read → store visible), microseconds.
    pub ingest_p50_us: f64,
    /// 99th percentile of the same — the interference headline.
    pub ingest_p99_us: f64,
    /// Queries answered over the wire.
    pub queries_ok: u64,
    /// Queries (or clients) shed by admission control / fd budget.
    pub queries_shed: u64,
    /// Query round-trip latency over loopback, milliseconds, median.
    pub query_p50_ms: f64,
    /// p99 of the same.
    pub query_p99_ms: f64,
    /// False when the scenario subprocess died before reporting.
    pub completed: bool,
}

const SCENARIO_FLAG: &str = "--e17-scenario";
const DRIVE_FLAG: &str = "--e17-drive";

/// Dispatch for the `experiments` binary: when re-exec'd as an E17
/// subprocess, run that role and exit. Call first thing in `main`.
pub fn subprocess_main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some(SCENARIO_FLAG) => {
            scenario_main(&args[2..]);
            std::process::exit(0);
        }
        Some(DRIVE_FLAG) => {
            drive_main(&args[2..]);
            std::process::exit(0);
        }
        _ => {}
    }
}

/// Agent-driver subprocess: `--e17-drive <addr> <conns> <frames>
/// <interval_ms> <keys>`.
fn drive_main(args: &[String]) {
    let addr = args[0].clone();
    let conns: usize = args[1].parse().unwrap();
    let frames_per_conn: u64 = args[2].parse().unwrap();
    let interval = Duration::from_millis(args[3].parse().unwrap());
    let keys: usize = args[4].parse().unwrap();
    let _ = cwx_net::reactor::raise_nofile_limit();
    let stats = drive(LoadConfig {
        addr,
        conns,
        frames_per_conn,
        interval,
        writer_threads: 8,
        keys,
        ..LoadConfig::default()
    })
    .unwrap();
    println!(
        "E17DRIVE connected={} frames_sent={} write_errors={}",
        stats.connected, stats.frames_sent, stats.write_errors
    );
}

/// Blocking `CWQ1` round trip over an already-open dashboard socket.
fn query_roundtrip(stream: &mut TcpStream, spec: &QuerySpec) -> std::io::Result<bool> {
    let body = encode_query(spec);
    let mut frame = Vec::with_capacity(body.len() + 4);
    cwx_net::frame::put_frame(&mut frame, &body);
    stream.write_all(&frame)?;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    let mut reply = vec![0u8; n];
    stream.read_exact(&mut reply)?;
    Ok(parse_reply(&reply).is_ok())
}

/// Server-side scenario subprocess: `--e17-scenario <agents> <frames>
/// <interval_ms> <keys> <dashboards>`. Prints one `E17ROW` line.
fn scenario_main(args: &[String]) {
    let agents: usize = args[0].parse().unwrap();
    let frames_per_conn: u64 = args[1].parse().unwrap();
    let interval_ms: u64 = args[2].parse().unwrap();
    let keys: usize = args[3].parse().unwrap();
    let dashboards: usize = args[4].parse().unwrap();
    let _ = cwx_net::reactor::raise_nofile_limit();

    let nodes_per_group = (agents as u32).div_ceil(4).max(1);
    let dir = tmp_dir("live");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        DiskStore::open(
            &dir,
            StoreConfig {
                n_shards: 4,
                nodes_per_group,
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    );
    let server = Arc::new(RwLock::new(Server::new(
        "e17",
        SimDuration::from_secs(5),
        1,
        SimDuration::from_secs(3600),
    )));
    let control = Arc::new(Mutex::new(ControlPlane::new(1024)));
    let ingest = IngestServer::start(
        IngestConfig {
            mode: IngestMode::Reactor,
            n_lanes: 4,
            nodes_per_group,
            ..IngestConfig::default()
        },
        Arc::clone(&server),
        Some(Arc::clone(&store)),
        control,
        Instant::now(),
    )
    .unwrap();
    let addr = ingest.addr().to_string();

    // dashboard clients: steady 5 Hz refresh each, a windowed avg over
    // the whole fleet — the query every wall display runs
    let stop = Arc::new(AtomicBool::new(false));
    let query_lats: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let spec = QuerySpec {
        monitor: "bench.m0".into(),
        from: t(0),
        to: t(1 << 20),
        window_nanos: 10 * SEC,
        agg: AggFunc::Avg,
        groups: vec![QueryGroup {
            key: "all".into(),
            nodes: (0..agents as u32).collect(),
        }],
        max_scan: 0,
    };
    let mut dash_threads = Vec::new();
    for _ in 0..dashboards {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let lats = Arc::clone(&query_lats);
        let spec = spec.clone();
        dash_threads.push(std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(&addr) else {
                return;
            };
            let _ = stream.set_nodelay(true);
            while !stop.load(Ordering::Relaxed) {
                let q0 = Instant::now();
                match query_roundtrip(&mut stream, &spec) {
                    Ok(true) => lats.lock().push(q0.elapsed().as_secs_f64() * 1e3),
                    Ok(false) => {} // shed — counted server-side
                    Err(_) => return,
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        }));
    }

    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args([
            DRIVE_FLAG,
            &addr,
            &agents.to_string(),
            &frames_per_conn.to_string(),
            &interval_ms.to_string(),
            &keys.to_string(),
        ])
        .stdout(Stdio::inherit())
        .status()
        .expect("driver subprocess");
    assert!(status.success(), "driver failed");

    stop.store(true, Ordering::Relaxed);
    for h in dash_threads {
        let _ = h.join();
    }
    let lat = ingest.latency();
    let stats = ingest.stats();
    let exec = ingest
        .query_stats()
        .map(|s| s.completed.saturating_sub(s.errors))
        .unwrap_or(0);
    let ingested = ingest.shutdown();
    let mut qlats = Arc::try_unwrap(query_lats)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    qlats.sort_by(|a, b| a.total_cmp(b));
    let (qp50, qp99) = if qlats.is_empty() {
        (0.0, 0.0)
    } else {
        (
            cwx_util::stats::percentile_sorted(&qlats, 0.50),
            cwx_util::stats::percentile_sorted(&qlats, 0.99),
        )
    };
    let _ = std::fs::remove_dir_all(dir);

    println!(
        "E17ROW agents={agents} dashboards={dashboards} ingested={ingested} \
         ingest_p50_us={:.1} ingest_p99_us={:.1} queries_ok={} queries_shed={} \
         query_p50_ms={qp50:.3} query_p99_ms={qp99:.3} answered={}",
        lat.p50_us,
        lat.p99_us,
        exec,
        stats.queries_shed,
        qlats.len(),
    );
}

fn parse_row(line: &str) -> Option<std::collections::BTreeMap<String, f64>> {
    let rest = line.strip_prefix("E17ROW ")?;
    let mut m = std::collections::BTreeMap::new();
    for kv in rest.split_whitespace() {
        let (k, v) = kv.split_once('=')?;
        m.insert(k.to_string(), v.parse().ok()?);
    }
    Some(m)
}

/// Run one (agents, dashboards) scenario in a fresh subprocess.
pub fn live_scenario(
    agents: usize,
    dashboards: usize,
    frames_per_conn: u64,
    interval: Duration,
    keys: usize,
) -> LiveRow {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args([
            SCENARIO_FLAG,
            &agents.to_string(),
            &frames_per_conn.to_string(),
            &interval.as_millis().to_string(),
            &keys.to_string(),
            &dashboards.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("scenario subprocess");
    let out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut row = None;
    for line in out.lines().map_while(Result::ok) {
        if let Some(m) = parse_row(&line) {
            row = Some(m);
        }
    }
    let _ = child.wait();
    let Some(m) = row else {
        return LiveRow {
            agents,
            dashboards,
            ingested: 0,
            ingest_p50_us: 0.0,
            ingest_p99_us: 0.0,
            queries_ok: 0,
            queries_shed: 0,
            query_p50_ms: 0.0,
            query_p99_ms: 0.0,
            completed: false,
        };
    };
    let g = |k: &str| m.get(k).copied().unwrap_or(0.0);
    LiveRow {
        agents,
        dashboards,
        ingested: g("ingested") as u64,
        ingest_p50_us: g("ingest_p50_us"),
        ingest_p99_us: g("ingest_p99_us"),
        queries_ok: g("queries_ok") as u64,
        queries_shed: g("queries_shed") as u64,
        query_p50_ms: g("query_p50_ms"),
        query_p99_ms: g("query_p99_ms"),
        completed: true,
    }
}

/// The part-B sweep: a no-query baseline first, then rising dashboard
/// fan-in against the same agent load.
pub fn live_sweep(
    agents: usize,
    dashboards: &[usize],
    frames_per_conn: u64,
    interval: Duration,
) -> Vec<LiveRow> {
    let mut rows = vec![live_scenario(agents, 0, frames_per_conn, interval, 8)];
    for &d in dashboards {
        if d > 0 {
            rows.push(live_scenario(agents, d, frames_per_conn, interval, 8));
        }
    }
    rows
}

// ---------------------------------------------------------------------
// JSON

/// Render both row sets as one machine-readable document.
pub fn to_json(queries: &[QueryRow], live: &[LiveRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17_query\",\n  \"query_rows\": [\n");
    for (i, r) in queries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fleet\": {}, \"span_secs\": {}, \"range_secs\": {}, \
             \"window\": \"{}\", \"agg\": \"{}\", \"tier\": \"{}\", \
             \"cold_ms\": {:.3}, \"warm_p50_ms\": {:.3}, \"warm_p99_ms\": {:.3}, \
             \"warm_qps\": {:.1}, \"scanned_raw\": {}, \"scanned_buckets\": {}, \
             \"tier_misses_cold\": {}, \"raw_misses_cold\": {}}}{}\n",
            r.fleet,
            r.span_secs,
            r.range_secs,
            r.window,
            r.agg,
            r.tier,
            r.cold_ms,
            r.warm_p50_ms,
            r.warm_p99_ms,
            r.warm_qps,
            r.scanned_raw,
            r.scanned_buckets,
            r.tier_misses_cold,
            r.raw_misses_cold,
            if i + 1 == queries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"live_rows\": [\n");
    for (i, r) in live.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"agents\": {}, \"dashboards\": {}, \"ingested\": {}, \
             \"ingest_p50_us\": {:.1}, \"ingest_p99_us\": {:.1}, \
             \"queries_ok\": {}, \"queries_shed\": {}, \
             \"query_p50_ms\": {:.3}, \"query_p99_ms\": {:.3}, \"completed\": {}}}{}\n",
            r.agents,
            r.dashboards,
            r.ingested,
            r.ingest_p50_us,
            r.ingest_p99_us,
            r.queries_ok,
            r.queries_shed,
            r.query_p50_ms,
            r.query_p99_ms,
            r.completed,
            if i + 1 == live.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
