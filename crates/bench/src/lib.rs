//! Experiment drivers for every quantitative claim in the paper.
//!
//! Each module implements one experiment from the index in `DESIGN.md`
//! and returns structured results; the `experiments` binary renders them
//! as paper-vs-measured tables (and `--markdown` emits the body of
//! `EXPERIMENTS.md`), while the Criterion benches in `benches/` reuse the
//! same drivers at reduced scale for statistically rigorous timing.

pub mod measure;

pub mod e10_icebox;
pub mod e11_scale;
pub mod e12_slurm;
pub mod e13_control;
pub mod e14_chaos;
pub mod e15_federation;
pub mod e16_ingest;
pub mod e17_query;
pub mod e1_gathering;
pub mod e5_boot;
pub mod e6_cloning;
pub mod e7_pipeline;
pub mod e8_compress;
pub mod e9_events;
