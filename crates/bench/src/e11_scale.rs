//! E11: monitoring scalability (paper §7: ClusterWorX "scales to meet
//! the needs of any size system"; §5.3: monitoring "must be gathered
//! from the cluster without impacting application performance",
//! minimizing CPU and network bandwidth).
//!
//! We sweep cluster sizes and measure the management-network load and
//! server-side processing rate the monitoring pipeline produces, with
//! the consolidation ablation alongside.

use clusterworx::{Cluster, ClusterConfig, WorkloadMix};
use cwx_net::SegmentId;
use cwx_util::time::SimDuration;

/// One sweep row.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Nodes monitored.
    pub n_nodes: u32,
    /// Delta consolidation enabled?
    pub delta: bool,
    /// Reports the server received per simulated second.
    pub reports_per_sec: f64,
    /// Monitoring bytes on the wire per simulated second.
    pub wire_bytes_per_sec: f64,
    /// Values the server processed per simulated second.
    pub values_per_sec: f64,
    /// Mean wire bytes per node per second.
    pub bytes_per_node_per_sec: f64,
    /// Fraction of a fast-Ethernet segment the monitoring consumes.
    pub segment_fraction: f64,
    /// Wall-clock seconds the measured window took to simulate.
    pub wall_secs: f64,
    /// Simulation events dispatched per wall-clock second over the
    /// measured window — the engine-throughput column that shows the
    /// timing-wheel scheduler holding up as the cluster grows.
    pub events_per_sec: f64,
}

/// Simulate `secs` of monitoring on an `n`-node cluster.
pub fn monitor_load(seed: u64, n: u32, secs: u64, delta: bool) -> ScaleRow {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: n,
        seed,
        workload: WorkloadMix::Mixed,
        delta_enabled: delta,
        // coarser hardware step at large n keeps the event count sane
        // without changing the monitoring pipeline under test
        hw_step: SimDuration::from_secs(5),
        ..Default::default()
    });
    // boot + settle, then measure over a clean window
    sim.run_for(SimDuration::from_secs(60));
    let stats0 = sim.world().server.stats();
    let wire0 = sim.world().net.segment(SegmentId(0)).wire_bytes();
    let events0 = sim.events_executed();
    let t0 = std::time::Instant::now();
    sim.run_for(SimDuration::from_secs(secs));
    let wall_secs = t0.elapsed().as_secs_f64();
    let stats1 = sim.world().server.stats();
    let wire1 = sim.world().net.segment(SegmentId(0)).wire_bytes();
    let events1 = sim.events_executed();

    let dt = secs as f64;
    let wire_rate = (wire1 - wire0) as f64 / dt;
    let bandwidth = sim.world().cfg.bandwidth_bps as f64;
    ScaleRow {
        n_nodes: n,
        delta,
        reports_per_sec: (stats1.reports_rx - stats0.reports_rx) as f64 / dt,
        wire_bytes_per_sec: wire_rate,
        values_per_sec: (stats1.values_rx - stats0.values_rx) as f64 / dt,
        bytes_per_node_per_sec: wire_rate / n as f64,
        segment_fraction: wire_rate / bandwidth,
        wall_secs,
        events_per_sec: (events1 - events0) as f64 / wall_secs.max(1e-9),
    }
}

/// The full sweep.
pub fn sweep(seed: u64, sizes: &[u32], secs: u64) -> Vec<ScaleRow> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push(monitor_load(seed, n, secs, true));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_grows_linearly_and_stays_small() {
        let a = monitor_load(3, 20, 300, true);
        let b = monitor_load(3, 80, 300, true);
        // linear in N (within 40% tolerance for boot jitter)
        let ratio = b.wire_bytes_per_sec / a.wire_bytes_per_sec;
        assert!((2.4..=5.6).contains(&ratio), "expected ~4x: {ratio}");
        // and tiny in absolute terms: even 80 nodes use well under 1% of
        // fast Ethernet
        assert!(b.segment_fraction < 0.01, "{b:?}");
        assert!(
            a.reports_per_sec > 20.0 / 5.0 * 0.8,
            "one report per node per 5s: {a:?}"
        );
    }

    #[test]
    fn delta_cuts_per_node_bandwidth() {
        let with = monitor_load(4, 30, 300, true);
        let without = monitor_load(4, 30, 300, false);
        assert!(
            with.bytes_per_node_per_sec < without.bytes_per_node_per_sec * 0.6,
            "delta must cut the per-node stream: {} vs {}",
            with.bytes_per_node_per_sec,
            without.bytes_per_node_per_sec
        );
    }
}
