//! E7: the consolidation + transmission ablation (paper §5.3.2–§5.3.3:
//! delta transmission "reduces the amount of transferred data
//! substantially"; compression is "very effective on text input").
//!
//! Four agent configurations over the same synthetic node activity:
//! {delta on/off} × {compression on/off}. The metric is wire bytes per
//! tick in steady state.

use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::snapshot::Sensors;
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::time::{SimDuration, SimTime};

/// One configuration's result.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Configuration label.
    pub label: &'static str,
    /// Delta consolidation on?
    pub delta: bool,
    /// Compression on?
    pub compress: bool,
    /// Binary `CWB1` wire format instead of text?
    pub binary: bool,
    /// Mean wire bytes per steady-state tick.
    pub bytes_per_tick: f64,
    /// Mean values transmitted per steady-state tick.
    pub values_per_tick: f64,
}

/// Run the four-way ablation for `ticks` steady-state ticks.
pub fn ablation(ticks: u32) -> Vec<PipelineRow> {
    let configs = [
        ("raw text, every value (baseline)", false, false, false),
        ("compressed, every value", false, true, false),
        ("delta only", true, false, false),
        ("delta + compression (product)", true, true, false),
        ("binary wire, every value", false, false, true),
        ("delta + binary wire", true, false, true),
    ];
    configs
        .into_iter()
        .map(|(label, delta, compress, binary)| {
            let proc_ = SyntheticProc::default();
            let mut agent = Agent::new(
                proc_.clone(),
                AgentConfig {
                    delta_enabled: delta,
                    compress,
                    binary,
                    ..AgentConfig::default()
                },
            )
            .expect("agent over synthetic proc");
            // warm-up tick so statics are sent outside the window
            let mut now = SimTime::ZERO + SimDuration::from_secs(1);
            proc_.with_state(|s| s.tick(1.0, 0.3));
            agent
                .tick(
                    now,
                    Sensors {
                        udp_echo_ok: true,
                        ..Default::default()
                    },
                )
                .unwrap();

            let mut bytes = 0u64;
            let mut values = 0u64;
            for k in 0..ticks {
                now += SimDuration::from_secs(5);
                // moderate activity: some monitors move, most do not
                proc_.with_state(|s| s.tick(5.0, 0.25 + 0.05 * ((k % 3) as f64)));
                let sensors = Sensors {
                    cpu_temp_c: 45.0 + (k % 5) as f64 * 0.3,
                    board_temp_c: 38.0,
                    fan_rpm: 6000.0,
                    power_watts: 130.0,
                    udp_echo_ok: true,
                };
                let out = agent.tick(now, sensors).unwrap();
                bytes += out.wire_len as u64;
                values += out.report.values.len() as u64;
            }
            PipelineRow {
                label,
                delta,
                compress,
                binary,
                bytes_per_tick: bytes as f64 / ticks as f64,
                values_per_tick: values as f64 / ticks as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_stage_helps_and_product_config_wins() {
        let rows = ablation(40);
        let get = |delta: bool, compress: bool, binary: bool| {
            rows.iter()
                .find(|r| r.delta == delta && r.compress == compress && r.binary == binary)
                .unwrap()
        };
        let baseline = get(false, false, false);
        let compressed = get(false, true, false);
        let delta = get(true, false, false);
        let product = get(true, true, false);
        let binary_full = get(false, false, true);
        let binary_delta = get(true, false, true);
        assert!(compressed.bytes_per_tick < baseline.bytes_per_tick * 0.8);
        assert!(delta.bytes_per_tick < baseline.bytes_per_tick * 0.5);
        assert!(product.bytes_per_tick < baseline.bytes_per_tick * 0.4);
        assert!(product.bytes_per_tick <= delta.bytes_per_tick);
        // delta transmits far fewer values
        assert!(delta.values_per_tick < baseline.values_per_tick * 0.6);
        // binary frames undercut the equivalent text configuration
        assert!(binary_full.bytes_per_tick < baseline.bytes_per_tick);
        assert!(binary_delta.bytes_per_tick < delta.bytes_per_tick);
    }
}
