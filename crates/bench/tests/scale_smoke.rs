//! Release-mode scale smoke: drive a cluster an order of magnitude
//! larger than the unit tests touch and assert the engine holds up.
//! Ignored by default (it simulates 10 minutes of a 2,000-node
//! cluster); CI runs it with `--ignored` in the release-mode
//! scale-smoke job, and locally:
//!
//! ```text
//! cargo test -p bench --release --test scale_smoke -- --ignored
//! ```

use bench::e11_scale::monitor_load;
use clusterworx::config::{ClusterConfig, WorkloadMix};
use clusterworx::Cluster;
use cwx_util::time::SimDuration;

/// A 2,000-node cluster must simulate 10 minutes of monitoring well
/// inside CI patience, and the pipeline numbers must stay sane.
#[test]
#[ignore = "scale smoke; run with --ignored in release mode"]
fn two_thousand_nodes_ten_minutes() {
    let row = monitor_load(3, 2_000, 600, true);
    // every node reports once per 5 s cycle
    assert!(
        row.reports_per_sec > 2_000.0 / 5.0 * 0.8,
        "reports_per_sec collapsed: {row:?}"
    );
    // monitoring still a small fraction of one fast-Ethernet segment
    assert!(row.segment_fraction < 0.10, "{row:?}");
    // the engine, not the wall clock, is the limit: a 600 s window on
    // 2k nodes has to finish in minutes, not hours
    assert!(
        row.wall_secs < 300.0,
        "simulation too slow: {:.1}s wall for 600s simulated",
        row.wall_secs
    );
    assert!(row.events_per_sec > 10_000.0, "{row:?}");
}

/// The parallel hardware step at auto shard count must agree with the
/// serial step on a fleet big enough to actually shard.
#[test]
#[ignore = "scale smoke; run with --ignored in release mode"]
fn sharded_fleet_matches_serial_at_scale() {
    let run = |shards: usize| {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 1_500,
            seed: 11,
            hw_shards: shards,
            workload: WorkloadMix::Mixed,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(180));
        let w = sim.world();
        let temps: Vec<String> = w
            .nodes
            .iter()
            .map(|st| format!("{:.9}", st.hw.temperature_c()))
            .collect();
        (w.up_count(), sim.events_executed(), temps)
    };
    let serial = run(1);
    let auto = run(0);
    assert_eq!(serial, auto, "auto-sharded run diverged from serial");
}
