//! The experiment harness itself is a deliverable: make sure the
//! `experiments` binary runs, selects experiments, and renders both
//! output formats.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("run experiments binary");
    assert!(
        out.status.success(),
        "exit: {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn quick_mode_renders_selected_experiments() {
    let text = run(&["--quick", "e10", "e12"]);
    assert!(text.contains("E10:"), "{text}");
    assert!(text.contains("peak inrush W, sequencing ON"));
    assert!(text.contains("E12:"));
    assert!(text.contains("EASY backfill"));
    // unselected experiments are skipped
    assert!(!text.contains("E1:"));
    assert!(!text.contains("E6:"));
}

#[test]
fn markdown_mode_emits_tables() {
    let text = run(&["--quick", "--markdown", "e10"]);
    assert!(text.starts_with("# EXPERIMENTS"), "{text}");
    assert!(text.contains("## E10:"));
    assert!(text.contains("|---|"), "markdown table separators present");
}

#[test]
fn quick_e7_shows_the_ablation_ordering() {
    let text = run(&["--quick", "e7"]);
    let base = text
        .lines()
        .find(|l| l.contains("baseline"))
        .expect("baseline row");
    let product = text
        .lines()
        .find(|l| l.contains("(product)"))
        .expect("product row");
    let bytes = |line: &str| -> f64 {
        line.split_whitespace()
            .filter_map(|t| t.parse::<f64>().ok())
            .next()
            .expect("numeric column")
    };
    assert!(
        bytes(product) < bytes(base),
        "product config cheaper:\n{base}\n{product}"
    );
}
