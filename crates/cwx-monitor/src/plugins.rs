//! The plug-in directory (paper §5.1).
//!
//! "A plugin itself can be any program, script (shell, perl, etc.) or
//! any combination thereof — as long as it resides in the ClusterWorX
//! plug-in directory it will be recognized by the system automatically."
//!
//! The reproduction cannot execute arbitrary shell/perl, so a plug-in is
//! a small manifest file (`*.monitor`) describing where its value comes
//! from — which covers the realistic cases: reading a file a site script
//! maintains, evaluating an expression over built-in snapshot fields, or
//! a constant. The loader scans the directory and registers everything
//! it finds, exactly like the product's automatic recognition.
//!
//! Manifest format (one `key: value` pair per line, `#` comments):
//!
//! ```text
//! # gpfs.monitor
//! key = site.gpfs_health
//! class = dynamic            # or: static
//! unit = ""
//! source = file:/var/run/gpfs.status    # first line of the file
//! # or: source = const:42
//! # or: source = expr:mem.free_kb      (a snapshot field)
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use crate::monitor::{MonitorClass, Registry, Value};
use crate::snapshot::Snapshot;

/// Where a plug-in's value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum PluginSource {
    /// A constant (site label, rack number, ...).
    Const(f64),
    /// The first line of a file maintained by a site script.
    File(PathBuf),
    /// A named snapshot field (the "script wrapping a built-in" case).
    Expr(String),
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PluginManifest {
    /// Monitor key the plug-in registers as.
    pub key: String,
    /// Static/dynamic classification.
    pub class: MonitorClass,
    /// Unit label.
    pub unit: &'static str,
    /// The value source.
    pub source: PluginSource,
}

/// Manifest parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginError {
    /// Required field missing.
    Missing(&'static str),
    /// Unknown class value.
    BadClass(String),
    /// Unknown source scheme.
    BadSource(String),
    /// IO problem reading the directory/manifest.
    Io(String),
}

impl std::fmt::Display for PluginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PluginError::Missing(k) => write!(f, "manifest missing field: {k}"),
            PluginError::BadClass(c) => write!(f, "bad class: {c}"),
            PluginError::BadSource(s) => write!(f, "bad source: {s}"),
            PluginError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for PluginError {}

/// Parse one manifest.
pub fn parse_manifest(text: &str) -> Result<PluginManifest, PluginError> {
    let mut key = None;
    let mut class = None;
    let mut source = None;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            continue;
        };
        let (k, v) = (k.trim(), v.trim().trim_matches('"'));
        match k {
            "key" => key = Some(v.to_string()),
            "class" => {
                class = Some(match v {
                    "static" => MonitorClass::Static,
                    "dynamic" => MonitorClass::Dynamic,
                    other => return Err(PluginError::BadClass(other.to_string())),
                })
            }
            "unit" => {} // units are display-only; leak-free static str would
            // need interning, so plug-ins render unitless
            "source" => {
                source = Some(if let Some(c) = v.strip_prefix("const:") {
                    PluginSource::Const(
                        c.trim()
                            .parse()
                            .map_err(|_| PluginError::BadSource(v.to_string()))?,
                    )
                } else if let Some(p) = v.strip_prefix("file:") {
                    PluginSource::File(PathBuf::from(p.trim()))
                } else if let Some(e) = v.strip_prefix("expr:") {
                    PluginSource::Expr(e.trim().to_string())
                } else {
                    return Err(PluginError::BadSource(v.to_string()));
                })
            }
            _ => {}
        }
    }
    Ok(PluginManifest {
        key: key.ok_or(PluginError::Missing("key"))?,
        class: class.unwrap_or(MonitorClass::Dynamic),
        unit: "",
        source: source.ok_or(PluginError::Missing("source"))?,
    })
}

/// Evaluate a snapshot field by name (the `expr:` scheme).
fn eval_expr(name: &str, snap: &Snapshot) -> Option<f64> {
    Some(match name {
        "mem.free_kb" => snap.mem.free_kb as f64,
        "mem.total_kb" => snap.mem.total_kb as f64,
        "mem.used_fraction" => snap.mem.used_fraction(),
        "cpu.utilization" => snap.cpu_utilization(),
        "load.one" => snap.load.one,
        "uptime.secs" => snap.uptime.uptime_secs,
        "sensors.cpu_temp_c" => snap.sensors.cpu_temp_c,
        "sensors.fan_rpm" => snap.sensors.fan_rpm,
        _ => return None,
    })
}

/// Register a parsed manifest into a registry.
pub fn register(registry: &mut Registry, manifest: PluginManifest) {
    let source = manifest.source.clone();
    registry.register_plugin(
        &manifest.key,
        manifest.class,
        manifest.unit,
        move |snap| match &source {
            PluginSource::Const(v) => Some(Value::Num(*v)),
            PluginSource::Expr(e) => eval_expr(e, snap).map(Value::Num),
            PluginSource::File(path) => {
                let text = fs::read_to_string(path).ok()?;
                let first = text.lines().next()?.trim();
                Some(match first.parse::<f64>() {
                    Ok(n) => Value::Num(n),
                    Err(_) => Value::Text(first.to_string()),
                })
            }
        },
    );
}

/// Scan a directory for `*.monitor` manifests and register all of them.
/// Returns the keys loaded and the per-file errors (bad manifests are
/// skipped, not fatal — one broken site script must not kill the agent).
pub fn load_dir(registry: &mut Registry, dir: &Path) -> (Vec<String>, Vec<(PathBuf, PluginError)>) {
    let mut loaded = Vec::new();
    let mut errors = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push((dir.to_path_buf(), PluginError::Io(e.to_string())));
            return (loaded, errors);
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "monitor"))
        .collect();
    paths.sort(); // deterministic registration order
    for path in paths {
        match fs::read_to_string(&path) {
            Ok(text) => match parse_manifest(&text) {
                Ok(m) => {
                    loaded.push(m.key.clone());
                    register(registry, m);
                }
                Err(e) => errors.push((path, e)),
            },
            Err(e) => errors.push((path, PluginError::Io(e.to_string()))),
        }
    }
    (loaded, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cwx-plugins-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parses_a_full_manifest() {
        let m = parse_manifest("# comment\nkey = site.rack\nclass = static\nsource = const:7\n")
            .unwrap();
        assert_eq!(m.key, "site.rack");
        assert_eq!(m.class, MonitorClass::Static);
        assert_eq!(m.source, PluginSource::Const(7.0));
    }

    #[test]
    fn rejects_bad_manifests() {
        assert_eq!(
            parse_manifest("source = const:1").unwrap_err(),
            PluginError::Missing("key")
        );
        assert_eq!(
            parse_manifest("key = a").unwrap_err(),
            PluginError::Missing("source")
        );
        assert!(matches!(
            parse_manifest("key=a\nclass=sometimes\nsource=const:1"),
            Err(PluginError::BadClass(_))
        ));
        assert!(matches!(
            parse_manifest("key=a\nsource=telepathy:x"),
            Err(PluginError::BadSource(_))
        ));
        assert!(matches!(
            parse_manifest("key=a\nsource=const:notanumber"),
            Err(PluginError::BadSource(_))
        ));
    }

    #[test]
    fn const_and_expr_plugins_evaluate() {
        let mut reg = Registry::new();
        register(
            &mut reg,
            parse_manifest("key=site.rack\nclass=static\nsource=const:12").unwrap(),
        );
        register(
            &mut reg,
            parse_manifest("key=site.memfree\nsource=expr:mem.free_kb").unwrap(),
        );
        let mut snap = Snapshot::default();
        snap.mem.free_kb = 1234;
        let mut got = std::collections::BTreeMap::new();
        for m in reg.iter_mut() {
            got.insert(m.key.to_string(), m.extract(&snap));
        }
        assert_eq!(got["site.rack"], Some(Value::Num(12.0)));
        assert_eq!(got["site.memfree"], Some(Value::Num(1234.0)));
    }

    #[test]
    fn file_plugin_reads_live_file() {
        let dir = tmpdir("file");
        let status = dir.join("gpfs.status");
        fs::write(&status, "42.5\nsecond line ignored\n").unwrap();
        let mut reg = Registry::new();
        register(
            &mut reg,
            PluginManifest {
                key: "site.gpfs".into(),
                class: MonitorClass::Dynamic,
                unit: "",
                source: PluginSource::File(status.clone()),
            },
        );
        let snap = Snapshot::default();
        let m = reg.iter_mut().next().unwrap();
        assert_eq!(m.extract(&snap), Some(Value::Num(42.5)));
        // site script updates the file; next tick sees the new value
        fs::write(&status, "degraded\n").unwrap();
        assert_eq!(m.extract(&snap), Some(Value::Text("degraded".into())));
        // file vanishes: the monitor yields None, agent keeps running
        fs::remove_file(&status).unwrap();
        assert_eq!(m.extract(&snap), None);
    }

    #[test]
    fn load_dir_recognizes_manifests_automatically() {
        let dir = tmpdir("dir");
        fs::write(
            dir.join("a_rack.monitor"),
            "key=site.rack\nclass=static\nsource=const:3",
        )
        .unwrap();
        fs::write(
            dir.join("b_temp.monitor"),
            "key=site.temp\nsource=expr:sensors.cpu_temp_c",
        )
        .unwrap();
        fs::write(dir.join("broken.monitor"), "key=only").unwrap();
        fs::write(dir.join("notes.txt"), "not a plugin").unwrap();
        let mut reg = Registry::new();
        let (loaded, errors) = load_dir(&mut reg, &dir);
        assert_eq!(
            loaded,
            vec!["site.rack".to_string(), "site.temp".to_string()]
        );
        assert_eq!(
            errors.len(),
            1,
            "the broken manifest is reported, not fatal"
        );
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn missing_directory_is_an_error_not_a_panic() {
        let mut reg = Registry::new();
        let (loaded, errors) = load_dir(&mut reg, Path::new("/nonexistent-cwx-plugins"));
        assert!(loaded.is_empty());
        assert_eq!(errors.len(), 1);
    }
}
