//! The transmission stage (paper §5.3.3).
//!
//! "Since we use the /proc filesystem, monitored data is stored in
//! human-readable form. Although binary formats require less storage, we
//! leave the data in text form because of platform independency and the
//! human-readable nature of the data. Nevertheless, when transmitting
//! the data, we use data compression techniques, which are known to be
//! very effective on text input."
//!
//! Text wire format (one report per datagram):
//!
//! ```text
//! CWX1 node=<u32> seq=<u64> t=<secs>
//! <key>=<value>
//! ...
//! ```
//!
//! compressed with the LZSS coder from `cwx-util` when
//! [`encode_compressed`] is used.
//!
//! # Binary wire format (`CWB1`)
//!
//! The text format is kept as the interoperable baseline, but the hot
//! ingest path uses a binary delta format built on the same varint
//! primitives as the storage engine (`cwx_store::codec`). A
//! [`WireEncoder`]/[`WireDecoder`] pair shares per-connection state: a
//! monitor-key dictionary (keys are transmitted once, then referenced
//! by a small integer id) and a per-key XOR chain over `f64` bit
//! patterns (an unchanged exponent/sign costs one or two bytes).
//!
//! Frame layout, little-endian:
//!
//! ```text
//! 4B   magic "CWB1"
//! u8   flags (bit 0: receiver must reset this node's dictionary)
//! uvarint node | uvarint seq | uvarint f64-bits(time_secs)
//! uvarint n_bindings, then per new key:
//!   uvarint id | uvarint name_len | name bytes
//! uvarint n_values, then per value:
//!   uvarint key_id | u8 tag
//!   tag 0 (Num):  uvarint (prev_bits XOR bits)
//!   tag 1 (Text): uvarint len | bytes
//! u32  crc32 over everything after the magic
//! ```
//!
//! [`decode_auto`] (and [`WireDecoder::decode_auto`]) sniffs the magic
//! and dispatches, so binary, compressed and plain-text senders can
//! coexist on one channel. A decoder keyed by the frame's node id is
//! kept per connection; the stateless free function only decodes
//! self-contained binary frames (first frame after a reset).

use std::collections::HashMap;

use cwx_store::codec::{self, CodecError};
use cwx_util::compress;

use crate::monitor::{MonitorKey, Value};

const BINARY_MAGIC: &[u8; 4] = b"CWB1";
const FLAG_RESET: u8 = 1;
const TAG_NUM: u8 = 0;
const TAG_TEXT: u8 = 1;

/// One agent-to-server report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Reporting node.
    pub node: u32,
    /// Agent sequence number.
    pub seq: u64,
    /// Gather time, seconds.
    pub time_secs: f64,
    /// Values that survived consolidation, in key order.
    pub values: Vec<(MonitorKey, Value)>,
}

/// Wire decoding errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Missing or malformed header line.
    BadHeader,
    /// A value line without `=`.
    BadLine(String),
    /// Compressed envelope failed to decode.
    BadCompression(String),
    /// Payload is not UTF-8.
    NotText,
    /// A binary frame ended early or carried a malformed varint.
    Truncated,
    /// A binary frame's CRC32 did not match its contents.
    BadChecksum,
    /// A binary frame referenced a key id the connection never bound.
    UnknownKey(u32),
    /// A binary frame bound a key id out of sequence.
    BadBinding,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadHeader => write!(f, "bad report header"),
            WireError::BadLine(l) => write!(f, "bad report line: {l}"),
            WireError::BadCompression(e) => write!(f, "bad compression: {e}"),
            WireError::NotText => write!(f, "report payload is not utf-8"),
            WireError::Truncated => write!(f, "binary frame truncated or malformed"),
            WireError::BadChecksum => write!(f, "binary frame checksum mismatch"),
            WireError::UnknownKey(id) => write!(f, "binary frame references unbound key id {id}"),
            WireError::BadBinding => write!(f, "binary frame binds a key id out of sequence"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(_: CodecError) -> Self {
        WireError::Truncated
    }
}

/// Render a report as wire text.
pub fn encode(report: &Report) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(32 + report.values.len() * 24);
    let _ = writeln!(
        s,
        "CWX1 node={} seq={} t={:.3}",
        report.node, report.seq, report.time_secs
    );
    for (k, v) in &report.values {
        let _ = writeln!(s, "{}={}", k, v.render());
    }
    s
}

/// Render and LZSS-compress a report.
pub fn encode_compressed(report: &Report) -> Vec<u8> {
    compress::compress(encode(report).as_bytes())
}

/// Parse wire text back into a report. Values that parse as numbers
/// become [`Value::Num`]; everything else is [`Value::Text`].
pub fn decode(text: &str) -> Result<Report, WireError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(WireError::BadHeader)?;
    let rest = header.strip_prefix("CWX1 ").ok_or(WireError::BadHeader)?;
    let mut node = None;
    let mut seq = None;
    let mut time_secs = None;
    for field in rest.split_whitespace() {
        let (k, v) = field.split_once('=').ok_or(WireError::BadHeader)?;
        match k {
            "node" => node = v.parse::<u32>().ok(),
            "seq" => seq = v.parse::<u64>().ok(),
            "t" => time_secs = v.parse::<f64>().ok(),
            _ => {}
        }
    }
    let (Some(node), Some(seq), Some(time_secs)) = (node, seq, time_secs) else {
        return Err(WireError::BadHeader);
    };
    let mut values = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| WireError::BadLine(line.to_string()))?;
        let value = match v.parse::<f64>() {
            Ok(n) => Value::Num(n),
            Err(_) => Value::Text(v.to_string()),
        };
        values.push((MonitorKey::new(k), value));
    }
    Ok(Report {
        node,
        seq,
        time_secs,
        values,
    })
}

/// Decode a payload in any of the three wire formats (binary `CWB1`,
/// LZSS `CWZ1`, plain text) by sniffing the magic. Stateless: binary
/// frames decode only when self-contained (every referenced key bound
/// in the frame itself, i.e. the first frame after an encoder reset);
/// continuation frames need a per-connection [`WireDecoder`].
pub fn decode_auto(bytes: &[u8]) -> Result<Report, WireError> {
    if bytes.starts_with(BINARY_MAGIC) {
        WireDecoder::new().decode_binary(bytes)
    } else if bytes.starts_with(b"CWZ1") {
        decode_compressed(bytes)
    } else {
        decode(std::str::from_utf8(bytes).map_err(|_| WireError::NotText)?)
    }
}

/// Stateful binary encoder for one agent connection.
///
/// Keeps the key dictionary and per-key XOR chains between frames, so
/// steady-state frames carry only small integer ids and short deltas.
/// [`WireEncoder::encode_into`] reuses the caller's buffer: after the
/// first few frames the encoder performs no allocation per report.
#[derive(Debug, Default)]
pub struct WireEncoder {
    ids: HashMap<String, u32>,
    last_bits: Vec<u64>,
    pending_reset: bool,
    /// Scratch: indices into `report.values` whose keys are new.
    fresh: Vec<usize>,
}

impl WireEncoder {
    /// A fresh encoder. Its first frame carries the reset flag so a
    /// receiver with stale state (agent restart) resynchronizes.
    pub fn new() -> Self {
        WireEncoder {
            pending_reset: true,
            ..WireEncoder::default()
        }
    }

    /// Drop the negotiated dictionary; the next frame rebinds every key
    /// it carries and tells the receiver to do the same.
    pub fn reset(&mut self) {
        self.ids.clear();
        self.last_bits.clear();
        self.pending_reset = true;
    }

    /// Encode a frame into `out` (cleared first). The buffer is the
    /// caller's to reuse across reports.
    pub fn encode_into(&mut self, report: &Report, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(BINARY_MAGIC);
        out.push(if self.pending_reset { FLAG_RESET } else { 0 });
        self.pending_reset = false;
        codec::put_uvarint(out, report.node as u64);
        codec::put_uvarint(out, report.seq);
        codec::put_uvarint(out, report.time_secs.to_bits());
        self.fresh.clear();
        for (i, (k, _)) in report.values.iter().enumerate() {
            if !self.ids.contains_key(k.as_str()) {
                self.ids.insert(k.to_string(), self.last_bits.len() as u32);
                self.last_bits.push(0);
                self.fresh.push(i);
            }
        }
        codec::put_uvarint(out, self.fresh.len() as u64);
        for &i in &self.fresh {
            let name = report.values[i].0.as_str();
            codec::put_uvarint(out, self.ids[name] as u64);
            codec::put_uvarint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
        codec::put_uvarint(out, report.values.len() as u64);
        for (k, v) in &report.values {
            let id = self.ids[k.as_str()];
            codec::put_uvarint(out, id as u64);
            match v {
                Value::Num(x) => {
                    out.push(TAG_NUM);
                    let bits = x.to_bits();
                    let prev = &mut self.last_bits[id as usize];
                    codec::put_uvarint(out, *prev ^ bits);
                    *prev = bits;
                }
                Value::Text(s) => {
                    out.push(TAG_TEXT);
                    codec::put_uvarint(out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        let crc = codec::crc32(&out[BINARY_MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Convenience wrapper allocating a fresh buffer.
    pub fn encode(&mut self, report: &Report) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + report.values.len() * 8);
        self.encode_into(report, &mut out);
        out
    }
}

#[derive(Debug, Default)]
struct NodeTable {
    keys: Vec<MonitorKey>,
    last_bits: Vec<u64>,
}

/// Stateful binary decoder for one ingest connection.
///
/// Dictionary and XOR-chain state is kept per node id (frames carry the
/// node), so one decoder serves a channel that multiplexes many agents.
/// Malformed input of any kind returns a [`WireError`]; the decoder
/// never panics on wire bytes.
#[derive(Debug, Default)]
pub struct WireDecoder {
    nodes: HashMap<u32, NodeTable>,
}

impl WireDecoder {
    /// A decoder with no negotiated state.
    pub fn new() -> Self {
        WireDecoder::default()
    }

    /// Decode any wire payload (binary, compressed or text), updating
    /// per-node dictionary state for binary frames.
    pub fn decode_auto(&mut self, bytes: &[u8]) -> Result<Report, WireError> {
        if bytes.starts_with(BINARY_MAGIC) {
            self.decode_binary(bytes)
        } else {
            decode_auto(bytes)
        }
    }

    /// Decode a `CWB1` frame.
    pub fn decode_binary(&mut self, bytes: &[u8]) -> Result<Report, WireError> {
        let m = BINARY_MAGIC.len();
        if bytes.len() < m + 5 || bytes[..m] != *BINARY_MAGIC {
            return Err(WireError::Truncated);
        }
        let body = &bytes[m..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if codec::crc32(body) != stored {
            return Err(WireError::BadChecksum);
        }
        let mut pos = 1usize;
        let flags = body[0];
        let node =
            u32::try_from(codec::get_uvarint(body, &mut pos)?).map_err(|_| WireError::Truncated)?;
        let seq = codec::get_uvarint(body, &mut pos)?;
        let time_secs = f64::from_bits(codec::get_uvarint(body, &mut pos)?);
        let table = self.nodes.entry(node).or_default();
        if flags & FLAG_RESET != 0 {
            table.keys.clear();
            table.last_bits.clear();
        }
        let n_bind = codec::get_uvarint(body, &mut pos)? as usize;
        if n_bind > body.len().saturating_sub(pos) {
            return Err(WireError::Truncated);
        }
        for _ in 0..n_bind {
            let id = codec::get_uvarint(body, &mut pos)? as usize;
            if id != table.keys.len() {
                return Err(WireError::BadBinding);
            }
            let len = codec::get_uvarint(body, &mut pos)? as usize;
            let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
            let name = body.get(pos..end).ok_or(WireError::Truncated)?;
            pos = end;
            let name = std::str::from_utf8(name).map_err(|_| WireError::NotText)?;
            table.keys.push(MonitorKey::new(name));
            table.last_bits.push(0);
        }
        let n_vals = codec::get_uvarint(body, &mut pos)? as usize;
        if n_vals > body.len().saturating_sub(pos) {
            return Err(WireError::Truncated);
        }
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            let id = codec::get_uvarint(body, &mut pos)? as usize;
            let key = table
                .keys
                .get(id)
                .ok_or(WireError::UnknownKey(id.min(u32::MAX as usize) as u32))?
                .clone();
            let tag = *body.get(pos).ok_or(WireError::Truncated)?;
            pos += 1;
            let value = match tag {
                TAG_NUM => {
                    let bits = table.last_bits[id] ^ codec::get_uvarint(body, &mut pos)?;
                    table.last_bits[id] = bits;
                    Value::Num(f64::from_bits(bits))
                }
                TAG_TEXT => {
                    let len = codec::get_uvarint(body, &mut pos)? as usize;
                    let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
                    let s = body.get(pos..end).ok_or(WireError::Truncated)?;
                    pos = end;
                    Value::Text(
                        std::str::from_utf8(s)
                            .map_err(|_| WireError::NotText)?
                            .to_string(),
                    )
                }
                _ => return Err(WireError::Truncated),
            };
            values.push((key, value));
        }
        if pos != body.len() {
            return Err(WireError::Truncated);
        }
        Ok(Report {
            node,
            seq,
            time_secs,
            values,
        })
    }
}

/// Decompress and parse a report.
pub fn decode_compressed(bytes: &[u8]) -> Result<Report, WireError> {
    let raw = compress::decompress(bytes).map_err(|e| WireError::BadCompression(e.to_string()))?;
    let text = std::str::from_utf8(&raw).map_err(|_| WireError::NotText)?;
    decode(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            node: 17,
            seq: 42,
            time_secs: 123.456,
            values: vec![
                (MonitorKey::new("mem.free"), Value::Num(524288.0)),
                (MonitorKey::new("load.one"), Value::Num(0.42)),
                (
                    MonitorKey::new("cpu.type"),
                    Value::Text("Pentium III".into()),
                ),
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let r = report();
        let text = encode(&r);
        assert!(text.starts_with("CWX1 node=17 seq=42 t=123.456\n"));
        assert!(text.contains("mem.free=524288\n"));
        let back = decode(&text).unwrap();
        assert_eq!(back.node, 17);
        assert_eq!(back.seq, 42);
        assert_eq!(back.values.len(), 3);
        assert_eq!(back.values[0].1, Value::Num(524288.0));
        assert_eq!(back.values[2].1, Value::Text("Pentium III".into()));
    }

    #[test]
    fn compressed_round_trip_and_shrinks_repetitive_reports() {
        // a realistic full report: many keys with shared prefixes
        let mut r = report();
        for i in 0..50 {
            r.values.push((
                MonitorKey::new(format!("net.eth0.counter_{i}")),
                Value::Num(i as f64),
            ));
        }
        let raw = encode(&r);
        let packed = encode_compressed(&r);
        assert!(
            packed.len() < raw.len(),
            "{} !< {}",
            packed.len(),
            raw.len()
        );
        let back = decode_compressed(&packed).unwrap();
        assert_eq!(back.values.len(), r.values.len());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(""), Err(WireError::BadHeader));
        assert_eq!(decode("XYZ node=1"), Err(WireError::BadHeader));
        assert_eq!(decode("CWX1 node=1 seq=2"), Err(WireError::BadHeader)); // missing t
        assert!(matches!(
            decode("CWX1 node=1 seq=2 t=0\nbroken-line"),
            Err(WireError::BadLine(_))
        ));
        assert!(matches!(
            decode_compressed(b"junk"),
            Err(WireError::BadCompression(_))
        ));
    }

    #[test]
    fn empty_report_is_valid() {
        let r = Report {
            node: 1,
            seq: 0,
            time_secs: 0.0,
            values: vec![],
        };
        let back = decode(&encode(&r)).unwrap();
        assert!(back.values.is_empty());
    }

    #[test]
    fn binary_round_trip_and_steady_state_shrinks() {
        let mut enc = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let mut r = report();
        let first = enc.encode(&r);
        assert!(first.starts_with(b"CWB1"));
        assert_eq!(dec.decode_auto(&first).unwrap(), r);
        // steady state: same keys, slightly moved values
        r.seq += 1;
        r.values[1].1 = Value::Num(0.43);
        let next = enc.encode(&r);
        assert_eq!(dec.decode_auto(&next).unwrap(), r);
        // the continuation frame skips all key bindings
        assert!(
            next.len() < first.len(),
            "dictionary amortized: {} !< {}",
            next.len(),
            first.len()
        );
    }

    #[test]
    fn binary_first_frame_is_self_contained() {
        // the stateless decode_auto handles a frame that binds every key
        let mut enc = WireEncoder::new();
        let r = report();
        let frame = enc.encode(&r);
        assert_eq!(decode_auto(&frame).unwrap(), r);
    }

    #[test]
    fn binary_continuation_needs_state() {
        let mut enc = WireEncoder::new();
        let r = report();
        let _first = enc.encode(&r);
        let second = enc.encode(&r);
        assert!(matches!(
            decode_auto(&second),
            Err(WireError::UnknownKey(_))
        ));
    }

    #[test]
    fn binary_reset_resynchronizes_a_fresh_decoder() {
        let mut enc = WireEncoder::new();
        let r = report();
        let _ = enc.encode(&r);
        let _ = enc.encode(&r);
        enc.reset();
        let resync = enc.encode(&r);
        // a decoder that saw none of the earlier frames still decodes
        let mut dec = WireDecoder::new();
        assert_eq!(dec.decode_auto(&resync).unwrap(), r);
    }

    #[test]
    fn binary_rejects_corruption_without_panicking() {
        let mut enc = WireEncoder::new();
        let frame = enc.encode(&report());
        // every truncation point fails cleanly
        for n in 0..frame.len() {
            assert!(decode_auto(&frame[..n]).is_err(), "truncated at {n}");
        }
        // a flipped payload bit fails the checksum
        let mut bad = frame.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(decode_auto(&bad).is_err());
        // garbage behind a valid magic is rejected too
        let mut junk = b"CWB1".to_vec();
        junk.extend_from_slice(&[0xAB; 32]);
        assert!(decode_auto(&junk).is_err());
    }

    #[test]
    fn binary_preserves_time_bits_exactly() {
        let mut enc = WireEncoder::new();
        let r = Report {
            node: 3,
            seq: 9,
            time_secs: 123.456789012345,
            values: vec![],
        };
        let back = decode_auto(&enc.encode(&r)).unwrap();
        assert_eq!(back.time_secs.to_bits(), r.time_secs.to_bits());
    }

    #[test]
    fn text_output_round_trips_through_decode_auto() {
        // backward compat: the old textual encode still decodes
        let r = report();
        let back = decode_auto(encode(&r).as_bytes()).unwrap();
        assert_eq!(back.node, r.node);
        assert_eq!(back.seq, r.seq);
        assert_eq!(back.values.len(), r.values.len());
        let packed = encode_compressed(&r);
        assert_eq!(decode_auto(&packed).unwrap().values.len(), r.values.len());
    }

    #[test]
    fn numeric_text_becomes_num_on_decode() {
        // documented asymmetry of the text format
        let r = Report {
            node: 1,
            seq: 0,
            time_secs: 0.0,
            values: vec![(MonitorKey::new("k"), Value::Text("3.5".into()))],
        };
        let back = decode(&encode(&r)).unwrap();
        assert_eq!(back.values[0].1, Value::Num(3.5));
    }
}
