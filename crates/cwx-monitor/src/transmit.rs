//! The transmission stage (paper §5.3.3).
//!
//! "Since we use the /proc filesystem, monitored data is stored in
//! human-readable form. Although binary formats require less storage, we
//! leave the data in text form because of platform independency and the
//! human-readable nature of the data. Nevertheless, when transmitting
//! the data, we use data compression techniques, which are known to be
//! very effective on text input."
//!
//! Wire format (one report per datagram):
//!
//! ```text
//! CWX1 node=<u32> seq=<u64> t=<secs>
//! <key>=<value>
//! ...
//! ```
//!
//! compressed with the LZSS coder from `cwx-util` when
//! [`encode_compressed`] is used.

use cwx_util::compress;

use crate::monitor::{MonitorKey, Value};

/// One agent-to-server report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Reporting node.
    pub node: u32,
    /// Agent sequence number.
    pub seq: u64,
    /// Gather time, seconds.
    pub time_secs: f64,
    /// Values that survived consolidation, in key order.
    pub values: Vec<(MonitorKey, Value)>,
}

/// Wire decoding errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Missing or malformed header line.
    BadHeader,
    /// A value line without `=`.
    BadLine(String),
    /// Compressed envelope failed to decode.
    BadCompression(String),
    /// Payload is not UTF-8.
    NotText,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadHeader => write!(f, "bad report header"),
            WireError::BadLine(l) => write!(f, "bad report line: {l}"),
            WireError::BadCompression(e) => write!(f, "bad compression: {e}"),
            WireError::NotText => write!(f, "report payload is not utf-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Render a report as wire text.
pub fn encode(report: &Report) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(32 + report.values.len() * 24);
    let _ = writeln!(
        s,
        "CWX1 node={} seq={} t={:.3}",
        report.node, report.seq, report.time_secs
    );
    for (k, v) in &report.values {
        let _ = writeln!(s, "{}={}", k, v.render());
    }
    s
}

/// Render and LZSS-compress a report.
pub fn encode_compressed(report: &Report) -> Vec<u8> {
    compress::compress(encode(report).as_bytes())
}

/// Parse wire text back into a report. Values that parse as numbers
/// become [`Value::Num`]; everything else is [`Value::Text`].
pub fn decode(text: &str) -> Result<Report, WireError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(WireError::BadHeader)?;
    let rest = header.strip_prefix("CWX1 ").ok_or(WireError::BadHeader)?;
    let mut node = None;
    let mut seq = None;
    let mut time_secs = None;
    for field in rest.split_whitespace() {
        let (k, v) = field.split_once('=').ok_or(WireError::BadHeader)?;
        match k {
            "node" => node = v.parse::<u32>().ok(),
            "seq" => seq = v.parse::<u64>().ok(),
            "t" => time_secs = v.parse::<f64>().ok(),
            _ => {}
        }
    }
    let (Some(node), Some(seq), Some(time_secs)) = (node, seq, time_secs) else {
        return Err(WireError::BadHeader);
    };
    let mut values = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| WireError::BadLine(line.to_string()))?;
        let value = match v.parse::<f64>() {
            Ok(n) => Value::Num(n),
            Err(_) => Value::Text(v.to_string()),
        };
        values.push((MonitorKey::new(k), value));
    }
    Ok(Report {
        node,
        seq,
        time_secs,
        values,
    })
}

/// Decode a payload that may or may not be compressed (sniffs the LZSS
/// magic) — what the server does with arriving datagrams.
pub fn decode_auto(bytes: &[u8]) -> Result<Report, WireError> {
    if bytes.starts_with(b"CWZ1") {
        decode_compressed(bytes)
    } else {
        decode(std::str::from_utf8(bytes).map_err(|_| WireError::NotText)?)
    }
}

/// Decompress and parse a report.
pub fn decode_compressed(bytes: &[u8]) -> Result<Report, WireError> {
    let raw = compress::decompress(bytes).map_err(|e| WireError::BadCompression(e.to_string()))?;
    let text = std::str::from_utf8(&raw).map_err(|_| WireError::NotText)?;
    decode(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            node: 17,
            seq: 42,
            time_secs: 123.456,
            values: vec![
                (MonitorKey::new("mem.free"), Value::Num(524288.0)),
                (MonitorKey::new("load.one"), Value::Num(0.42)),
                (
                    MonitorKey::new("cpu.type"),
                    Value::Text("Pentium III".into()),
                ),
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let r = report();
        let text = encode(&r);
        assert!(text.starts_with("CWX1 node=17 seq=42 t=123.456\n"));
        assert!(text.contains("mem.free=524288\n"));
        let back = decode(&text).unwrap();
        assert_eq!(back.node, 17);
        assert_eq!(back.seq, 42);
        assert_eq!(back.values.len(), 3);
        assert_eq!(back.values[0].1, Value::Num(524288.0));
        assert_eq!(back.values[2].1, Value::Text("Pentium III".into()));
    }

    #[test]
    fn compressed_round_trip_and_shrinks_repetitive_reports() {
        // a realistic full report: many keys with shared prefixes
        let mut r = report();
        for i in 0..50 {
            r.values.push((
                MonitorKey::new(format!("net.eth0.counter_{i}")),
                Value::Num(i as f64),
            ));
        }
        let raw = encode(&r);
        let packed = encode_compressed(&r);
        assert!(
            packed.len() < raw.len(),
            "{} !< {}",
            packed.len(),
            raw.len()
        );
        let back = decode_compressed(&packed).unwrap();
        assert_eq!(back.values.len(), r.values.len());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(""), Err(WireError::BadHeader));
        assert_eq!(decode("XYZ node=1"), Err(WireError::BadHeader));
        assert_eq!(decode("CWX1 node=1 seq=2"), Err(WireError::BadHeader)); // missing t
        assert!(matches!(
            decode("CWX1 node=1 seq=2 t=0\nbroken-line"),
            Err(WireError::BadLine(_))
        ));
        assert!(matches!(
            decode_compressed(b"junk"),
            Err(WireError::BadCompression(_))
        ));
    }

    #[test]
    fn empty_report_is_valid() {
        let r = Report {
            node: 1,
            seq: 0,
            time_secs: 0.0,
            values: vec![],
        };
        let back = decode(&encode(&r)).unwrap();
        assert!(back.values.is_empty());
    }

    #[test]
    fn numeric_text_becomes_num_on_decode() {
        // documented asymmetry of the text format
        let r = Report {
            node: 1,
            seq: 0,
            time_secs: 0.0,
            values: vec![(MonitorKey::new("k"), Value::Text("3.5".into()))],
        };
        let back = decode(&encode(&r)).unwrap();
        assert_eq!(back.values[0].1, Value::Num(3.5));
    }
}
