//! Agent-process fault model for chaos campaigns.
//!
//! The monitoring agent is a user-space daemon; in a real cluster it
//! crashes, wedges, and falls behind independently of the node it runs
//! on. The fault state lives here (next to the agent it afflicts) and is
//! consulted by the integration layer on every agent tick: a faulted
//! agent's reports are dropped, delayed or duplicated *before* they
//! reach the wire, exactly like a sick daemon — the node's OS and
//! workload keep running underneath.

use cwx_util::time::{SimDuration, SimTime};

/// The ways an agent process misbehaves without its node going down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgentFault {
    /// The daemon is dead: no reports until the agent restarts (a node
    /// reboot restarts it, as does an explicit restore).
    Crashed,
    /// The daemon is wedged (stuck syscall, livelock): no reports while
    /// hung; if `until` is set it un-wedges by itself at that time.
    Hung {
        /// Self-recovery time; `None` hangs until restored.
        until: Option<SimTime>,
    },
    /// Reports leave the node late by `extra` (paging, CPU starvation).
    DelayedReports {
        /// Added to every report's delivery latency.
        extra: SimDuration,
    },
    /// Every report is transmitted twice (retry bug in the daemon's
    /// sender) — the server must tolerate duplicates.
    DuplicatedReports,
}

impl AgentFault {
    /// Whether the agent produces any report at `now` under this fault.
    pub fn silences(&self, now: SimTime) -> bool {
        match self {
            AgentFault::Crashed => true,
            AgentFault::Hung { until } => until.map(|t| now < t).unwrap_or(true),
            _ => false,
        }
    }

    /// Whether the fault has expired on its own by `now` (a timed hang
    /// that un-wedged).
    pub fn expired(&self, now: SimTime) -> bool {
        matches!(self, AgentFault::Hung { until: Some(t) } if now >= *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn crash_and_indefinite_hang_silence_forever() {
        assert!(AgentFault::Crashed.silences(t(1_000_000)));
        assert!(AgentFault::Hung { until: None }.silences(t(1_000_000)));
        assert!(!AgentFault::Crashed.expired(t(1_000_000)));
    }

    #[test]
    fn timed_hang_unwedges() {
        let f = AgentFault::Hung { until: Some(t(60)) };
        assert!(f.silences(t(59)));
        assert!(!f.silences(t(60)));
        assert!(f.expired(t(60)));
        assert!(!f.expired(t(59)));
    }

    #[test]
    fn delay_and_duplicate_do_not_silence() {
        let d = AgentFault::DelayedReports {
            extra: SimDuration::from_secs(3),
        };
        assert!(!d.silences(t(0)));
        assert!(!AgentFault::DuplicatedReports.silences(t(0)));
    }
}
