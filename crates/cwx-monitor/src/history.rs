//! Server-side time-series storage for historical graphing.
//!
//! "Historical graphing allows the administrator to chart monitoring
//! values over time. The administrator can view cluster use and
//! performance trends over a selected time interval, analyze the
//! relationships between monitored values, or compare performance
//! between nodes." (paper §5.1)
//!
//! [`HistoryStore`] keeps a bounded ring of `(time, value)` samples per
//! `(node, monitor)` series and answers range queries, latest-value
//! queries and fixed-bucket downsampling (what a chart widget pulls).

use std::collections::{BTreeMap, VecDeque};

use cwx_util::time::SimTime;

use crate::monitor::MonitorKey;

/// One stored sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub time: SimTime,
    /// Numeric value (text monitors store their last value elsewhere;
    /// charts are numeric).
    pub value: f64,
}

/// A downsampled chart bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Samples that landed in the bucket.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
}

/// Bounded per-series time-series store.
#[derive(Debug)]
pub struct HistoryStore {
    series: BTreeMap<(u32, MonitorKey), VecDeque<Sample>>,
    capacity_per_series: usize,
    total_samples: u64,
}

impl HistoryStore {
    /// A store retaining at most `capacity_per_series` samples per
    /// `(node, monitor)` series.
    pub fn new(capacity_per_series: usize) -> Self {
        assert!(capacity_per_series > 0);
        HistoryStore { series: BTreeMap::new(), capacity_per_series, total_samples: 0 }
    }

    /// Record a sample (drops the oldest when the series is full).
    pub fn record(&mut self, node: u32, key: &MonitorKey, time: SimTime, value: f64) {
        let q = self.series.entry((node, key.clone())).or_default();
        if q.len() == self.capacity_per_series {
            q.pop_front();
        }
        q.push_back(Sample { time, value });
        self.total_samples += 1;
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total samples ever recorded (including evicted ones).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The latest sample of a series.
    pub fn latest(&self, node: u32, key: &MonitorKey) -> Option<Sample> {
        self.series.get(&(node, key.clone())).and_then(|q| q.back().copied())
    }

    /// Samples within `[from, to]`, oldest first.
    pub fn range(&self, node: u32, key: &MonitorKey, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.series
            .get(&(node, key.clone()))
            .map(|q| q.iter().filter(|s| s.time >= from && s.time <= to).copied().collect())
            .unwrap_or_default()
    }

    /// Downsample a range into `buckets` fixed-width buckets (chart
    /// rendering). Empty buckets are omitted.
    pub fn downsample(
        &self,
        node: u32,
        key: &MonitorKey,
        from: SimTime,
        to: SimTime,
        buckets: usize,
    ) -> Vec<Bucket> {
        if buckets == 0 || to <= from {
            return Vec::new();
        }
        let span = to.since(from).as_nanos();
        let width = (span / buckets as u64).max(1);
        let samples = self.range(node, key, from, to);
        let mut out: Vec<Bucket> = Vec::new();
        for s in samples {
            let idx = ((s.time.since(from).as_nanos()) / width).min(buckets as u64 - 1);
            let start = SimTime::from_nanos(from.as_nanos() + idx * width);
            match out.last_mut() {
                Some(b) if b.start == start => {
                    b.count += 1;
                    b.min = b.min.min(s.value);
                    b.max = b.max.max(s.value);
                    // incremental mean
                    b.mean += (s.value - b.mean) / b.count as f64;
                }
                _ => out.push(Bucket { start, count: 1, min: s.value, mean: s.value, max: s.value }),
            }
        }
        out
    }

    /// Compare the latest values of one monitor across nodes ("compare
    /// performance between nodes").
    pub fn latest_across_nodes(&self, key: &MonitorKey) -> Vec<(u32, Sample)> {
        self.series
            .iter()
            .filter(|((_, k), _)| k == key)
            .filter_map(|((n, _), q)| q.back().map(|s| (*n, *s)))
            .collect()
    }

    /// Drop a node's series (node removed from the cluster).
    pub fn forget_node(&mut self, node: u32) {
        self.series.retain(|(n, _), _| *n != node);
    }

    /// Export one series as CSV (`time_secs,value` rows with a header) —
    /// the egress path for external charting tools.
    pub fn export_csv(&self, node: u32, key: &MonitorKey) -> String {
        use std::fmt::Write;
        let mut out = String::from("time_secs,value\n");
        for s in self.range(node, key, SimTime::ZERO, SimTime::MAX) {
            let _ = writeln!(out, "{:.3},{}", s.time.as_secs_f64(), s.value);
        }
        out
    }

    /// Export every series of a node as CSV (`monitor,time_secs,value`).
    pub fn export_node_csv(&self, node: u32) -> String {
        use std::fmt::Write;
        let mut out = String::from("monitor,time_secs,value\n");
        for ((n, key), q) in &self.series {
            if *n != node {
                continue;
            }
            for s in q {
                let _ = writeln!(out, "{},{:.3},{}", key, s.time.as_secs_f64(), s.value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn key() -> MonitorKey {
        MonitorKey::new("cpu.util_pct")
    }

    #[test]
    fn record_and_latest() {
        let mut h = HistoryStore::new(100);
        h.record(1, &key(), t(1), 10.0);
        h.record(1, &key(), t(2), 20.0);
        let latest = h.latest(1, &key()).unwrap();
        assert_eq!(latest.time, t(2));
        assert_eq!(latest.value, 20.0);
        assert!(h.latest(2, &key()).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = HistoryStore::new(3);
        for i in 0..5 {
            h.record(1, &key(), t(i), i as f64);
        }
        let all = h.range(1, &key(), t(0), t(100));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].value, 2.0);
        assert_eq!(h.total_samples(), 5);
    }

    #[test]
    fn range_is_inclusive() {
        let mut h = HistoryStore::new(100);
        for i in 0..10 {
            h.record(1, &key(), t(i), i as f64);
        }
        let r = h.range(1, &key(), t(3), t(6));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].value, 3.0);
        assert_eq!(r[3].value, 6.0);
    }

    #[test]
    fn downsample_buckets_min_mean_max() {
        let mut h = HistoryStore::new(1000);
        // 100 samples over 100s, values 0..99
        for i in 0..100 {
            h.record(1, &key(), t(i), i as f64);
        }
        let buckets = h.downsample(1, &key(), t(0), t(100), 10);
        assert_eq!(buckets.len(), 10);
        let b0 = &buckets[0];
        assert_eq!(b0.count, 10);
        assert_eq!(b0.min, 0.0);
        assert_eq!(b0.max, 9.0);
        assert!((b0.mean - 4.5).abs() < 1e-9);
    }

    #[test]
    fn downsample_edge_cases() {
        let h = HistoryStore::new(10);
        assert!(h.downsample(1, &key(), t(0), t(10), 0).is_empty());
        assert!(h.downsample(1, &key(), t(10), t(0), 5).is_empty());
        assert!(h.downsample(1, &key(), t(0), t(10), 5).is_empty(), "no data -> no buckets");
    }

    #[test]
    fn cross_node_comparison() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(1), 10.0);
        h.record(2, &key(), t(1), 90.0);
        h.record(2, &MonitorKey::new("mem.free"), t(1), 5.0);
        let rows = h.latest_across_nodes(&key());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|(n, s)| *n == 2 && s.value == 90.0));
    }

    #[test]
    fn csv_export_round_trips_visually() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(5), 42.5);
        h.record(1, &key(), t(10), 43.0);
        h.record(1, &MonitorKey::new("mem.free"), t(5), 1000.0);
        let csv = h.export_csv(1, &key());
        assert_eq!(csv, "time_secs,value\n5.000,42.5\n10.000,43\n");
        let all = h.export_node_csv(1);
        assert!(all.starts_with("monitor,time_secs,value\n"));
        assert!(all.contains("cpu.util_pct,5.000,42.5"));
        assert!(all.contains("mem.free,5.000,1000"));
        assert_eq!(h.export_csv(9, &key()), "time_secs,value\n");
    }

    #[test]
    fn forget_node_removes_series() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(1), 1.0);
        h.record(2, &key(), t(1), 2.0);
        h.forget_node(1);
        assert!(h.latest(1, &key()).is_none());
        assert!(h.latest(2, &key()).is_some());
        assert_eq!(h.series_count(), 1);
    }
}
