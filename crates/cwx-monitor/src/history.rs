//! Server-side time-series storage for historical graphing.
//!
//! "Historical graphing allows the administrator to chart monitoring
//! values over time. The administrator can view cluster use and
//! performance trends over a selected time interval, analyze the
//! relationships between monitored values, or compare performance
//! between nodes." (paper §5.1)
//!
//! [`HistoryStore`] is a façade over a [`cwx_store::Store`] backend: the
//! volatile in-memory ring (`HistoryStore::new`, what the deterministic
//! simulation uses) or the persistent sharded engine
//! (`HistoryStore::with_backend` over a `cwx_store::disk::DiskStore`,
//! what real deployments use so history survives a server restart). The
//! chart-facing API — range queries, latest-value queries, fixed-bucket
//! downsampling — is identical either way.

use cwx_store::{Resolution, Store};
use cwx_util::time::SimTime;

use crate::monitor::MonitorKey;

pub use cwx_store::Sample;

/// A downsampled chart bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Samples that landed in the bucket.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
    /// Last (most recent) value — step-line charts draw this.
    pub last: f64,
}

/// Time-series store behind the server's charting queries.
#[derive(Debug)]
pub struct HistoryStore {
    backend: Box<dyn Store>,
}

impl HistoryStore {
    /// A volatile store retaining at most `capacity_per_series` samples
    /// per `(node, monitor)` series.
    pub fn new(capacity_per_series: usize) -> Self {
        HistoryStore {
            backend: Box::new(cwx_store::mem::MemStore::new(capacity_per_series)),
        }
    }

    /// A store over any [`Store`] backend — pass an
    /// `Arc<cwx_store::disk::DiskStore>` for durable history.
    pub fn with_backend(backend: Box<dyn Store>) -> Self {
        HistoryStore { backend }
    }

    /// The backend (restart-recovery inspection, tiered queries).
    pub fn backend(&self) -> &dyn Store {
        &*self.backend
    }

    /// Record a sample (volatile backend drops the oldest when a series
    /// is full; the persistent backend acknowledges durability on
    /// return).
    pub fn record(&mut self, node: u32, key: &MonitorKey, time: SimTime, value: f64) {
        self.backend.append(node, key.as_str(), time, value);
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.backend.series().len()
    }

    /// Total samples ever recorded (including evicted ones).
    pub fn total_samples(&self) -> u64 {
        self.backend.total_samples()
    }

    /// The latest sample of a series.
    pub fn latest(&self, node: u32, key: &MonitorKey) -> Option<Sample> {
        self.backend.latest(node, key.as_str())
    }

    /// Samples within `[from, to]`, oldest first.
    pub fn range(&self, node: u32, key: &MonitorKey, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.backend.range(node, key.as_str(), from, to)
    }

    /// Pre-aggregated buckets at a storage tier (persistent backends
    /// serve compacted tiers; volatile ones aggregate on the fly).
    pub fn range_agg(
        &self,
        node: u32,
        key: &MonitorKey,
        from: SimTime,
        to: SimTime,
        res: Resolution,
    ) -> Vec<cwx_store::AggBucket> {
        self.backend.range_agg(node, key.as_str(), from, to, res)
    }

    /// Run a windowed, grouped aggregation query against the backend.
    /// Disk-backed stores answer from the coarsest stored tier that
    /// satisfies the window; volatile backends stream raw samples
    /// through the same query layer.
    pub fn query(
        &self,
        spec: &cwx_store::QuerySpec,
    ) -> Result<cwx_store::QueryResult, cwx_store::QueryError> {
        self.backend.query(spec)
    }

    /// Downsample a range into at most `buckets` fixed-width buckets
    /// (chart rendering). Empty buckets are omitted; an empty range, a
    /// zero bucket count or an inverted range yield no buckets, and a
    /// single-timestamp range (`from == to`) buckets whatever sits at
    /// that instant.
    pub fn downsample(
        &self,
        node: u32,
        key: &MonitorKey,
        from: SimTime,
        to: SimTime,
        buckets: usize,
    ) -> Vec<Bucket> {
        if buckets == 0 || to < from {
            return Vec::new();
        }
        let span = to.since(from).as_nanos();
        // a degenerate span still gets a well-defined 1ns bucket width
        let width = (span / buckets as u64).max(1);
        let samples = self.range(node, key, from, to);
        let mut out: Vec<Bucket> = Vec::new();
        for s in samples {
            let idx = ((s.time.since(from).as_nanos()) / width).min(buckets as u64 - 1);
            let start = SimTime::from_nanos(from.as_nanos() + idx * width);
            match out.last_mut() {
                Some(b) if b.start == start => {
                    b.count += 1;
                    b.min = b.min.min(s.value);
                    b.max = b.max.max(s.value);
                    // incremental mean: no count*mean products to overflow
                    b.mean += (s.value - b.mean) / b.count as f64;
                    b.last = s.value;
                }
                _ => out.push(Bucket {
                    start,
                    count: 1,
                    min: s.value,
                    mean: s.value,
                    max: s.value,
                    last: s.value,
                }),
            }
        }
        out
    }

    /// Compare the latest values of one monitor across nodes ("compare
    /// performance between nodes").
    pub fn latest_across_nodes(&self, key: &MonitorKey) -> Vec<(u32, Sample)> {
        self.backend
            .series()
            .into_iter()
            .filter(|(_, k)| k.as_str() == key.as_str())
            .filter_map(|(n, k)| self.backend.latest(n, &k).map(|s| (n, s)))
            .collect()
    }

    /// Drop a node's series (node removed from the cluster).
    pub fn forget_node(&mut self, node: u32) {
        self.backend.forget_node(node);
    }

    /// Flush buffered state to durable storage (no-op for the volatile
    /// backend).
    pub fn flush(&self) {
        self.backend.flush();
    }

    /// Export one series as CSV (`time_secs,value` rows with a header) —
    /// the egress path for external charting tools.
    pub fn export_csv(&self, node: u32, key: &MonitorKey) -> String {
        use std::fmt::Write;
        let mut out = String::from("time_secs,value\n");
        for s in self.range(node, key, SimTime::ZERO, SimTime::MAX) {
            let _ = writeln!(out, "{:.3},{}", s.time.as_secs_f64(), s.value);
        }
        out
    }

    /// Export every series of a node as CSV (`monitor,time_secs,value`).
    pub fn export_node_csv(&self, node: u32) -> String {
        use std::fmt::Write;
        let mut out = String::from("monitor,time_secs,value\n");
        for (n, key) in self.backend.series() {
            if n != node {
                continue;
            }
            for s in self.backend.range(n, &key, SimTime::ZERO, SimTime::MAX) {
                let _ = writeln!(out, "{},{:.3},{}", key, s.time.as_secs_f64(), s.value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn key() -> MonitorKey {
        MonitorKey::new("cpu.util_pct")
    }

    #[test]
    fn record_and_latest() {
        let mut h = HistoryStore::new(100);
        h.record(1, &key(), t(1), 10.0);
        h.record(1, &key(), t(2), 20.0);
        let latest = h.latest(1, &key()).unwrap();
        assert_eq!(latest.time, t(2));
        assert_eq!(latest.value, 20.0);
        assert!(h.latest(2, &key()).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = HistoryStore::new(3);
        for i in 0..5 {
            h.record(1, &key(), t(i), i as f64);
        }
        let all = h.range(1, &key(), t(0), t(100));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].value, 2.0);
        assert_eq!(h.total_samples(), 5);
    }

    #[test]
    fn range_is_inclusive() {
        let mut h = HistoryStore::new(100);
        for i in 0..10 {
            h.record(1, &key(), t(i), i as f64);
        }
        let r = h.range(1, &key(), t(3), t(6));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].value, 3.0);
        assert_eq!(r[3].value, 6.0);
    }

    #[test]
    fn downsample_buckets_min_mean_max_last() {
        let mut h = HistoryStore::new(1000);
        // 100 samples over 100s, values 0..99
        for i in 0..100 {
            h.record(1, &key(), t(i), i as f64);
        }
        let buckets = h.downsample(1, &key(), t(0), t(100), 10);
        assert_eq!(buckets.len(), 10);
        let b0 = &buckets[0];
        assert_eq!(b0.count, 10);
        assert_eq!(b0.min, 0.0);
        assert_eq!(b0.max, 9.0);
        assert_eq!(b0.last, 9.0);
        assert!((b0.mean - 4.5).abs() < 1e-9);
    }

    #[test]
    fn downsample_edge_cases() {
        let h = HistoryStore::new(10);
        assert!(h.downsample(1, &key(), t(0), t(10), 0).is_empty());
        assert!(h.downsample(1, &key(), t(10), t(0), 5).is_empty());
        assert!(
            h.downsample(1, &key(), t(0), t(10), 5).is_empty(),
            "no data -> no buckets"
        );
    }

    #[test]
    fn downsample_single_timestamp_range() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(5), 2.0);
        h.record(1, &key(), t(5), 4.0);
        // from == to: degenerate span must neither panic nor divide by
        // zero, and the samples at that instant land in one bucket
        let buckets = h.downsample(1, &key(), t(5), t(5), 8);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(
            (buckets[0].min, buckets[0].max, buckets[0].last),
            (2.0, 4.0, 4.0)
        );
        assert!((buckets[0].mean - 3.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_more_buckets_than_span_nanos() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(0), 1.0);
        let a = SimTime::from_nanos(t(0).as_nanos());
        let b = SimTime::from_nanos(t(0).as_nanos() + 3);
        // span of 3ns into 10 buckets: width clamps to 1ns, no panic
        let buckets = h.downsample(1, &key(), a, b, 10);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].count, 1);
    }

    #[test]
    fn cross_node_comparison() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(1), 10.0);
        h.record(2, &key(), t(1), 90.0);
        h.record(2, &MonitorKey::new("mem.free"), t(1), 5.0);
        let rows = h.latest_across_nodes(&key());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|(n, s)| *n == 2 && s.value == 90.0));
    }

    #[test]
    fn csv_export_round_trips_visually() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(5), 42.5);
        h.record(1, &key(), t(10), 43.0);
        h.record(1, &MonitorKey::new("mem.free"), t(5), 1000.0);
        let csv = h.export_csv(1, &key());
        assert_eq!(csv, "time_secs,value\n5.000,42.5\n10.000,43\n");
        let all = h.export_node_csv(1);
        assert!(all.starts_with("monitor,time_secs,value\n"));
        assert!(all.contains("cpu.util_pct,5.000,42.5"));
        assert!(all.contains("mem.free,5.000,1000"));
        assert_eq!(h.export_csv(9, &key()), "time_secs,value\n");
    }

    #[test]
    fn forget_node_removes_series() {
        let mut h = HistoryStore::new(10);
        h.record(1, &key(), t(1), 1.0);
        h.record(2, &key(), t(1), 2.0);
        h.forget_node(1);
        assert!(h.latest(1, &key()).is_none());
        assert!(h.latest(2, &key()).is_some());
        assert_eq!(h.series_count(), 1);
    }

    #[test]
    fn persistent_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("cwx-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cwx_store::disk::StoreConfig::default();
        {
            let disk = cwx_store::disk::DiskStore::open(&dir, cfg.clone()).unwrap();
            let mut h = HistoryStore::with_backend(Box::new(disk));
            for i in 0..10 {
                h.record(1, &key(), t(i), i as f64);
            }
        }
        let disk = cwx_store::disk::DiskStore::open(&dir, cfg).unwrap();
        let h = HistoryStore::with_backend(Box::new(disk));
        assert_eq!(h.range(1, &key(), t(0), t(100)).len(), 10);
        assert_eq!(h.latest(1, &key()).unwrap().value, 9.0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
