//! The consolidation stage (paper §5.3.2).
//!
//! "The consolidation stage is responsible for bringing the data from
//! multiple sources together to determine if values have changed, and
//! for filtering. In the interest of efficiency this task is exclusively
//! performed on a node ... The consolidation process distinguishes
//! between static and dynamic monitoring data and transmits only data
//! that has changed since the last transmission. This reduces the
//! amount of transferred data substantially. Furthermore, monitor data
//! is cached so that simultaneous requests can be served using the same
//! set of data."

use std::collections::HashMap;

use crate::monitor::{MonitorClass, MonitorKey, Value};

/// Counters explaining where the byte savings came from (experiment E7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidationStats {
    /// Values evaluated.
    pub evaluated: u64,
    /// Values suppressed because they were static and already sent.
    pub suppressed_static: u64,
    /// Values suppressed because they had not changed.
    pub suppressed_unchanged: u64,
    /// Values passed to transmission.
    pub emitted: u64,
    /// Requests served from the snapshot cache without re-gathering.
    pub cache_hits: u64,
}

/// Per-monitor change tracking.
///
/// Keys are interned once into a dense id space; the steady-state
/// [`Consolidator::offer`] path is a hash lookup plus two `Vec` index
/// reads and performs no cloning or allocation when the sample is
/// suppressed (the overwhelmingly common case — see the
/// `alloc_regression` integration test).
#[derive(Debug, Default)]
pub struct Consolidator {
    /// Key → dense id, populated on first sight of a key.
    ids: HashMap<MonitorKey, u32>,
    /// id → last transmitted value.
    last_sent: Vec<Option<Value>>,
    /// id → whether the static value was already sent.
    static_sent: Vec<bool>,
    delta_enabled: bool,
    stats: ConsolidationStats,
}

impl Consolidator {
    /// A consolidator with delta suppression enabled (the product
    /// behaviour). Pass `delta_enabled = false` for the E7 ablation
    /// (every value transmitted every tick).
    pub fn new(delta_enabled: bool) -> Self {
        Consolidator {
            delta_enabled,
            ..Default::default()
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ConsolidationStats {
        self.stats
    }

    /// Record a cache-served request (the agent increments this when a
    /// second consumer asks within the cache window).
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Decide whether `(key, value)` must be transmitted this tick, and
    /// record it as sent if so. Suppressed offers clone nothing.
    pub fn offer(&mut self, key: &MonitorKey, class: MonitorClass, value: &Value) -> bool {
        self.stats.evaluated += 1;
        if !self.delta_enabled {
            self.stats.emitted += 1;
            return true;
        }
        let id = match self.ids.get(key) {
            Some(&id) => id as usize,
            None => {
                let id = self.last_sent.len();
                self.ids.insert(key.clone(), id as u32);
                self.last_sent.push(None);
                self.static_sent.push(false);
                id
            }
        };
        match class {
            MonitorClass::Static => {
                if self.static_sent[id] {
                    self.stats.suppressed_static += 1;
                    false
                } else {
                    self.static_sent[id] = true;
                    self.last_sent[id] = Some(value.clone());
                    self.stats.emitted += 1;
                    true
                }
            }
            MonitorClass::Dynamic => match &self.last_sent[id] {
                Some(prev) if prev.same_as(value) => {
                    self.stats.suppressed_unchanged += 1;
                    false
                }
                _ => {
                    self.last_sent[id] = Some(value.clone());
                    self.stats.emitted += 1;
                    true
                }
            },
        }
    }

    /// Forget everything sent (e.g. after the server asks for a full
    /// resync or the node reboots): the next tick retransmits every
    /// value. The key interner survives — ids are stable for the life
    /// of the consolidator.
    pub fn reset(&mut self) {
        self.last_sent.iter_mut().for_each(|v| *v = None);
        self.static_sent.iter_mut().for_each(|s| *s = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> MonitorKey {
        MonitorKey::new(s)
    }

    #[test]
    fn static_values_sent_exactly_once() {
        let mut c = Consolidator::new(true);
        let k = key("mem.total");
        assert!(c.offer(&k, MonitorClass::Static, &Value::Num(1024.0)));
        for _ in 0..10 {
            assert!(!c.offer(&k, MonitorClass::Static, &Value::Num(1024.0)));
        }
        assert_eq!(c.stats().suppressed_static, 10);
        assert_eq!(c.stats().emitted, 1);
    }

    #[test]
    fn dynamic_values_sent_on_change_only() {
        let mut c = Consolidator::new(true);
        let k = key("mem.free");
        assert!(c.offer(&k, MonitorClass::Dynamic, &Value::Num(100.0)));
        assert!(!c.offer(&k, MonitorClass::Dynamic, &Value::Num(100.0)));
        assert!(c.offer(&k, MonitorClass::Dynamic, &Value::Num(90.0)));
        assert!(!c.offer(&k, MonitorClass::Dynamic, &Value::Num(90.0)));
        assert_eq!(c.stats().emitted, 2);
        assert_eq!(c.stats().suppressed_unchanged, 2);
    }

    #[test]
    fn ablation_mode_transmits_everything() {
        let mut c = Consolidator::new(false);
        let k = key("mem.free");
        for _ in 0..5 {
            assert!(c.offer(&k, MonitorClass::Dynamic, &Value::Num(1.0)));
        }
        let k2 = key("mem.total");
        for _ in 0..5 {
            assert!(c.offer(&k2, MonitorClass::Static, &Value::Num(1.0)));
        }
        assert_eq!(c.stats().emitted, 10);
        assert_eq!(c.stats().suppressed_unchanged, 0);
        assert_eq!(c.stats().suppressed_static, 0);
    }

    #[test]
    fn reset_forces_full_retransmission() {
        let mut c = Consolidator::new(true);
        let ks = key("mem.total");
        let kd = key("mem.free");
        assert!(c.offer(&ks, MonitorClass::Static, &Value::Num(1.0)));
        assert!(c.offer(&kd, MonitorClass::Dynamic, &Value::Num(2.0)));
        c.reset();
        assert!(c.offer(&ks, MonitorClass::Static, &Value::Num(1.0)));
        assert!(c.offer(&kd, MonitorClass::Dynamic, &Value::Num(2.0)));
    }

    #[test]
    fn text_values_delta_compare() {
        let mut c = Consolidator::new(true);
        let k = key("site.status");
        assert!(c.offer(&k, MonitorClass::Dynamic, &Value::Text("ok".into())));
        assert!(!c.offer(&k, MonitorClass::Dynamic, &Value::Text("ok".into())));
        assert!(c.offer(&k, MonitorClass::Dynamic, &Value::Text("degraded".into())));
    }

    #[test]
    fn stats_add_up() {
        let mut c = Consolidator::new(true);
        let k = key("x");
        c.offer(&k, MonitorClass::Dynamic, &Value::Num(1.0));
        c.offer(&k, MonitorClass::Dynamic, &Value::Num(1.0));
        c.offer(&k, MonitorClass::Dynamic, &Value::Num(2.0));
        let s = c.stats();
        assert_eq!(s.evaluated, 3);
        assert_eq!(
            s.emitted + s.suppressed_unchanged + s.suppressed_static,
            s.evaluated
        );
    }
}
