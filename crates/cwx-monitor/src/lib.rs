//! The ClusterWorX monitoring pipeline (paper §5.1 and §5.3).
//!
//! "To address these two issues [CPU cycles and network bandwidth], we
//! divide cluster monitoring into three stages: gathering, consolidation,
//! and transmission."
//!
//! * **Gathering** ([`snapshot`], using `cwx-proc`): the agent reads
//!   `/proc` with the keep-open zero-allocation gatherers and samples the
//!   hardware sensors, producing one [`snapshot::Snapshot`] per tick.
//! * **Consolidation** ([`consolidate`]): monitors extract values from
//!   the snapshot; the consolidator splits them into static and dynamic
//!   data, transmits "only data that has changed since the last
//!   transmission", and caches the snapshot so simultaneous requests are
//!   served from the same data.
//! * **Transmission** ([`transmit`]): changed values are rendered in a
//!   human-readable text wire format ("we leave the data in text form
//!   because of platform independency") and compressed with the LZSS
//!   coder from `cwx-util`.
//!
//! [`monitor`] holds the monitor registry: the 40+ built-in monitors the
//! product shipped with ("comes standard with over 40 monitors built
//! in") plus the plug-in mechanism ("a plugin itself can be any program
//! or script ... it will be recognized by the system automatically").
//! [`agent`] ties the stages into the per-node agent; [`history`] is the
//! server-side time-series store behind historical graphing.

#![warn(missing_docs)]

pub mod agent;
pub mod consolidate;
pub mod fault;
pub mod history;
pub mod monitor;
pub mod plugins;
pub mod snapshot;
pub mod transmit;

pub use agent::{Agent, AgentConfig, AgentStats};
pub use fault::AgentFault;
pub use monitor::{MonitorClass, MonitorDef, MonitorKey, Registry, Value};
pub use snapshot::{Sensors, Snapshot};
