//! One gathering tick's worth of node state.

use cwx_proc::diskstats::DiskStats;
use cwx_proc::loadavg::LoadAvg;
use cwx_proc::meminfo::MemInfo;
use cwx_proc::netdev::IfStats;
use cwx_proc::stat::Stat;
use cwx_proc::uptime::Uptime;
use cwx_util::time::SimTime;

/// Hardware sensor readings delivered out-of-band (ICE Box probes and
/// lm_sensors-style on-board sensors; paper §5.1: "in combination with
/// additional sensor packages it is possible to monitor fans, CPU and
/// board temperature, although temperature monitoring is usually
/// accomplished using the ICE Box sensors").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sensors {
    /// CPU temperature, °C.
    pub cpu_temp_c: f64,
    /// Board temperature, °C.
    pub board_temp_c: f64,
    /// CPU fan speed, RPM.
    pub fan_rpm: f64,
    /// Node power draw, watts.
    pub power_watts: f64,
    /// Did the UDP echo probe answer? ("The UDP echo port is used to
    /// ensure network connectivity.")
    pub udp_echo_ok: bool,
}

/// Everything the agent gathered in one tick, plus the previous tick for
/// rate computation. Monitors are pure functions of this struct — that
/// is what lets the consolidation stage serve "simultaneous requests ...
/// using the same set of data".
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Gather time.
    pub time: SimTime,
    /// Seconds since the previous snapshot (0 on the first).
    pub dt_secs: f64,
    /// Parsed `/proc/meminfo`.
    pub mem: MemInfo,
    /// Parsed `/proc/stat`.
    pub stat: Stat,
    /// Previous tick's `/proc/stat` (for utilisation/rates).
    pub prev_stat: Stat,
    /// Parsed `/proc/loadavg`.
    pub load: LoadAvg,
    /// Parsed `/proc/uptime`.
    pub uptime: Uptime,
    /// Parsed `/proc/net/dev`.
    pub net: Vec<IfStats>,
    /// Previous tick's interfaces.
    pub prev_net: Vec<IfStats>,
    /// Parsed `/proc/diskstats` (empty when the source has none).
    pub disks: Vec<DiskStats>,
    /// Previous tick's disks.
    pub prev_disks: Vec<DiskStats>,
    /// Sensor readings.
    pub sensors: Sensors,
}

impl Snapshot {
    /// CPU utilisation since the previous snapshot, `[0,1]`.
    pub fn cpu_utilization(&self) -> f64 {
        self.stat.total.utilization_since(&self.prev_stat.total)
    }

    /// Context switches per second since the previous snapshot.
    pub fn ctxt_rate(&self) -> f64 {
        if self.dt_secs <= 0.0 {
            return 0.0;
        }
        self.stat.ctxt.saturating_sub(self.prev_stat.ctxt) as f64 / self.dt_secs
    }

    /// Forks per second since the previous snapshot.
    pub fn fork_rate(&self) -> f64 {
        if self.dt_secs <= 0.0 {
            return 0.0;
        }
        self.stat.processes.saturating_sub(self.prev_stat.processes) as f64 / self.dt_secs
    }

    /// Aggregate disk operation rate (reads+writes per second).
    pub fn disk_io_rate(&self) -> f64 {
        if self.dt_secs <= 0.0 {
            return 0.0;
        }
        let ops = |ds: &[DiskStats]| ds.iter().map(|d| d.reads + d.writes).sum::<u64>();
        ops(&self.disks).saturating_sub(ops(&self.prev_disks)) as f64 / self.dt_secs
    }

    /// Aggregate disk throughput in bytes/second (512 B sectors).
    pub fn disk_byte_rate(&self) -> f64 {
        if self.dt_secs <= 0.0 {
            return 0.0;
        }
        let sect = |ds: &[DiskStats]| {
            ds.iter()
                .map(|d| d.sectors_read + d.sectors_written)
                .sum::<u64>()
        };
        sect(&self.disks).saturating_sub(sect(&self.prev_disks)) as f64 * 512.0 / self.dt_secs
    }

    /// Byte rate for an interface column since the previous snapshot.
    /// `rx` selects receive vs transmit.
    pub fn if_rate(&self, name: &str, rx: bool) -> f64 {
        if self.dt_secs <= 0.0 {
            return 0.0;
        }
        let cur = self.net.iter().find(|i| i.name == name);
        let prev = self.prev_net.iter().find(|i| i.name == name);
        match (cur, prev) {
            (Some(c), Some(p)) => {
                let (a, b) = if rx {
                    (c.rx_bytes, p.rx_bytes)
                } else {
                    (c.tx_bytes, p.tx_bytes)
                };
                a.saturating_sub(b) as f64 / self.dt_secs
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit field setup reads clearer in tests
mod tests {
    use super::*;
    use cwx_proc::netdev::{IfName, IfStats};
    use cwx_proc::stat::CpuTimes;

    fn iface(name: &str, rx: u64, tx: u64) -> IfStats {
        IfStats {
            name: IfName::new(name.as_bytes()),
            rx_bytes: rx,
            tx_bytes: tx,
            ..Default::default()
        }
    }

    #[test]
    fn cpu_utilization_from_deltas() {
        let mut s = Snapshot::default();
        s.prev_stat.total = CpuTimes {
            user: 100,
            nice: 0,
            system: 0,
            idle: 900,
        };
        s.stat.total = CpuTimes {
            user: 150,
            nice: 0,
            system: 50,
            idle: 900,
        };
        assert!((s.cpu_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rates_need_elapsed_time() {
        let mut s = Snapshot::default();
        s.stat.ctxt = 500;
        s.prev_stat.ctxt = 0;
        s.dt_secs = 0.0;
        assert_eq!(s.ctxt_rate(), 0.0);
        s.dt_secs = 5.0;
        assert_eq!(s.ctxt_rate(), 100.0);
    }

    #[test]
    fn fork_rate_counts_processes() {
        let mut s = Snapshot::default();
        s.dt_secs = 2.0;
        s.prev_stat.processes = 10;
        s.stat.processes = 20;
        assert_eq!(s.fork_rate(), 5.0);
    }

    #[test]
    fn if_rate_by_name_and_direction() {
        let mut s = Snapshot::default();
        s.dt_secs = 2.0;
        s.prev_net = vec![iface("eth0", 1000, 0), iface("lo", 0, 0)];
        s.net = vec![iface("eth0", 3000, 500), iface("lo", 10, 10)];
        assert_eq!(s.if_rate("eth0", true), 1000.0);
        assert_eq!(s.if_rate("eth0", false), 250.0);
        assert_eq!(s.if_rate("lo", true), 5.0);
        assert_eq!(s.if_rate("wlan0", true), 0.0, "unknown interface is 0");
    }

    #[test]
    fn counter_reset_saturates_to_zero() {
        let mut s = Snapshot::default();
        s.dt_secs = 1.0;
        s.prev_stat.ctxt = 1000;
        s.stat.ctxt = 50; // rebooted node
        assert_eq!(s.ctxt_rate(), 0.0);
    }
}
