//! The monitor registry: built-in monitors and plug-ins.
//!
//! "ClusterWorX can virtually monitor any system function including CPU
//! usage, CPU type, network bandwidth, memory usage, disk I/O and system
//! uptime. It comes standard with over 40 monitors built in. ... In
//! addition, ClusterWorX offers plug-in support so administrators can
//! include their own monitors. ... as long as it resides in the
//! ClusterWorX plug-in directory it will be recognized by the system
//! automatically."

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::snapshot::Snapshot;

/// A monitor's identity, e.g. `"cpu.util"` or `"net.eth0.rx_rate"`.
///
/// Internally a shared `Arc<str>`: keys flow through every report, every
/// per-node last-value map and every decoder dictionary, so cloning them
/// must be a refcount bump, not a heap allocation — at tens of thousands
/// of agent connections the difference is tens of megabytes of resident
/// duplicate strings and an allocation per value on the ingest hot path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorKey(Arc<str>);

impl MonitorKey {
    /// Build from anything stringy.
    pub fn new(s: impl AsRef<str>) -> Self {
        MonitorKey(Arc::from(s.as_ref()))
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for MonitorKey {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for MonitorKey {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MonitorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Whether a value ever changes after boot. The consolidation stage
/// "distinguishes between static and dynamic monitoring data" and sends
/// static values once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorClass {
    /// Fixed for the life of the boot (total RAM, CPU count, CPU type).
    Static,
    /// Changes over time.
    Dynamic,
}

/// A monitored value. Text keeps the platform-independent,
/// human-readable representation the paper insists on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A numeric reading.
    Num(f64),
    /// A textual reading (CPU type, kernel version, ...).
    Text(String),
}

impl Value {
    /// Numeric accessor.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Text(_) => None,
        }
    }

    /// Render for the text wire format.
    pub fn render(&self) -> String {
        match self {
            // trim trailing zeros so unchanged values render identically
            Value::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x:.3}")
                }
            }
            Value::Text(s) => s.clone(),
        }
    }

    /// Equality for change detection (numeric values compare exactly;
    /// the gatherers produce bit-identical numbers for unchanged
    /// sources).
    pub fn same_as(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

/// The extraction function of a monitor: a pure function of the
/// snapshot. Plug-ins are exactly this signature, which models "any
/// program, script (shell, perl, etc.)" producing a value.
pub type ExtractFn = Box<dyn FnMut(&Snapshot) -> Option<Value> + Send>;

/// A registered monitor.
pub struct MonitorDef {
    /// Identity.
    pub key: MonitorKey,
    /// Static/dynamic classification.
    pub class: MonitorClass,
    /// Unit label for display ("kB", "%", "°C", ...).
    pub unit: &'static str,
    /// Whether this came from the plug-in directory.
    pub plugin: bool,
    extract: ExtractFn,
}

impl fmt::Debug for MonitorDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorDef")
            .field("key", &self.key)
            .field("class", &self.class)
            .field("unit", &self.unit)
            .field("plugin", &self.plugin)
            .finish_non_exhaustive()
    }
}

impl MonitorDef {
    /// Evaluate the monitor against a snapshot.
    pub fn extract(&mut self, snap: &Snapshot) -> Option<Value> {
        (self.extract)(snap)
    }
}

/// The set of monitors an agent evaluates each tick.
#[derive(Debug, Default)]
pub struct Registry {
    monitors: BTreeMap<MonitorKey, MonitorDef>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry with all built-in monitors for the given interface
    /// names (typically `["lo", "eth0"]`).
    pub fn with_builtins(interfaces: &[&str]) -> Self {
        let mut r = Self::new();
        r.install_builtins(interfaces);
        r
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True when no monitors are registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Iterate (in key order — deterministic wire layout).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MonitorDef> {
        self.monitors.values_mut()
    }

    /// Look up a monitor.
    pub fn get(&self, key: &str) -> Option<&MonitorDef> {
        self.monitors.get(&MonitorKey::new(key))
    }

    /// Register a monitor (replacing any previous one with the key).
    pub fn register(
        &mut self,
        key: &str,
        class: MonitorClass,
        unit: &'static str,
        f: impl FnMut(&Snapshot) -> Option<Value> + Send + 'static,
    ) {
        self.monitors.insert(
            MonitorKey::new(key),
            MonitorDef {
                key: MonitorKey::new(key),
                class,
                unit,
                plugin: false,
                extract: Box::new(f),
            },
        );
    }

    /// Register an administrator plug-in. Identical surface to built-ins
    /// — "this flexible concept of plug-ins allows ClusterWorX to fit
    /// the needs of any system".
    pub fn register_plugin(
        &mut self,
        key: &str,
        class: MonitorClass,
        unit: &'static str,
        f: impl FnMut(&Snapshot) -> Option<Value> + Send + 'static,
    ) {
        self.monitors.insert(
            MonitorKey::new(key),
            MonitorDef {
                key: MonitorKey::new(key),
                class,
                unit,
                plugin: true,
                extract: Box::new(f),
            },
        );
    }

    /// Remove a monitor; true if it existed.
    pub fn unregister(&mut self, key: &str) -> bool {
        self.monitors.remove(&MonitorKey::new(key)).is_some()
    }

    fn install_builtins(&mut self, interfaces: &[&str]) {
        use MonitorClass::{Dynamic, Static};
        let pct = |x: f64| Value::Num((x * 100.0 * 10.0).round() / 10.0);

        // --- CPU ---
        self.register("cpu.util_pct", Dynamic, "%", move |s| {
            Some(pct(s.cpu_utilization()))
        });
        self.register("cpu.user", Dynamic, "jiffies", |s| {
            Some(Value::Num(s.stat.total.user as f64))
        });
        self.register("cpu.nice", Dynamic, "jiffies", |s| {
            Some(Value::Num(s.stat.total.nice as f64))
        });
        self.register("cpu.system", Dynamic, "jiffies", |s| {
            Some(Value::Num(s.stat.total.system as f64))
        });
        self.register("cpu.idle", Dynamic, "jiffies", |s| {
            Some(Value::Num(s.stat.total.idle as f64))
        });
        self.register("cpu.count", Static, "", |s| {
            Some(Value::Num(s.stat.ncpu.max(1) as f64))
        });
        self.register("cpu.type", Static, "", |_| {
            Some(Value::Text("Pentium III (Coppermine) 1000MHz".into()))
        });
        self.register("kernel.ctxt_rate", Dynamic, "/s", |s| {
            Some(Value::Num(s.ctxt_rate().round()))
        });
        self.register("kernel.fork_rate", Dynamic, "/s", |s| {
            Some(Value::Num(s.fork_rate().round()))
        });
        self.register("kernel.btime", Static, "s", |s| {
            Some(Value::Num(s.stat.btime as f64))
        });

        // --- load / tasks ---
        self.register("load.one", Dynamic, "", |s| Some(Value::Num(s.load.one)));
        self.register("load.five", Dynamic, "", |s| Some(Value::Num(s.load.five)));
        self.register("load.fifteen", Dynamic, "", |s| {
            Some(Value::Num(s.load.fifteen))
        });
        self.register("procs.running", Dynamic, "", |s| {
            Some(Value::Num(s.load.running as f64))
        });
        self.register("procs.total", Dynamic, "", |s| {
            Some(Value::Num(s.load.total as f64))
        });
        self.register("procs.blocked", Dynamic, "", |s| {
            Some(Value::Num(s.stat.procs_blocked as f64))
        });
        self.register("procs.last_pid", Dynamic, "", |s| {
            Some(Value::Num(s.load.last_pid as f64))
        });

        // --- memory ---
        self.register("mem.total", Static, "kB", |s| {
            Some(Value::Num(s.mem.total_kb as f64))
        });
        self.register("mem.free", Dynamic, "kB", |s| {
            Some(Value::Num(s.mem.free_kb as f64))
        });
        self.register("mem.used", Dynamic, "kB", |s| {
            Some(Value::Num(s.mem.used_kb() as f64))
        });
        self.register("mem.used_pct", Dynamic, "%", move |s| {
            Some(pct(s.mem.used_fraction()))
        });
        self.register("mem.buffers", Dynamic, "kB", |s| {
            Some(Value::Num(s.mem.buffers_kb as f64))
        });
        self.register("mem.cached", Dynamic, "kB", |s| {
            Some(Value::Num(s.mem.cached_kb as f64))
        });
        self.register("swap.total", Static, "kB", |s| {
            Some(Value::Num(s.mem.swap_total_kb as f64))
        });
        self.register("swap.free", Dynamic, "kB", |s| {
            Some(Value::Num(s.mem.swap_free_kb as f64))
        });
        self.register("swap.used", Dynamic, "kB", |s| {
            Some(Value::Num(
                s.mem.swap_total_kb.saturating_sub(s.mem.swap_free_kb) as f64,
            ))
        });

        // --- uptime ---
        self.register("uptime.secs", Dynamic, "s", |s| {
            Some(Value::Num(s.uptime.uptime_secs))
        });
        self.register("uptime.idle_secs", Dynamic, "s", |s| {
            Some(Value::Num(s.uptime.idle_secs))
        });

        // --- network, per interface ---
        for &ifc in interfaces {
            let name = ifc.to_string();
            self.register(&format!("net.{ifc}.rx_bytes"), Dynamic, "B", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.rx_bytes as f64))
                }
            });
            self.register(&format!("net.{ifc}.tx_bytes"), Dynamic, "B", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.tx_bytes as f64))
                }
            });
            self.register(&format!("net.{ifc}.rx_packets"), Dynamic, "", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.rx_packets as f64))
                }
            });
            self.register(&format!("net.{ifc}.tx_packets"), Dynamic, "", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.tx_packets as f64))
                }
            });
            self.register(&format!("net.{ifc}.rx_errs"), Dynamic, "", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.rx_errs as f64))
                }
            });
            self.register(&format!("net.{ifc}.tx_errs"), Dynamic, "", {
                let name = name.clone();
                move |s: &Snapshot| {
                    s.net
                        .iter()
                        .find(|i| i.name == name.as_str())
                        .map(|i| Value::Num(i.tx_errs as f64))
                }
            });
            self.register(&format!("net.{ifc}.rx_rate"), Dynamic, "B/s", {
                let name = name.clone();
                move |s: &Snapshot| Some(Value::Num(s.if_rate(&name, true).round()))
            });
            self.register(&format!("net.{ifc}.tx_rate"), Dynamic, "B/s", {
                let name = name.clone();
                move |s: &Snapshot| Some(Value::Num(s.if_rate(&name, false).round()))
            });
        }

        // --- disk I/O (aggregate over block devices) ---
        self.register("disk.reads", Dynamic, "", |s| {
            Some(Value::Num(
                s.disks.iter().map(|d| d.reads).sum::<u64>() as f64
            ))
        });
        self.register("disk.writes", Dynamic, "", |s| {
            Some(Value::Num(
                s.disks.iter().map(|d| d.writes).sum::<u64>() as f64
            ))
        });
        self.register("disk.io_rate", Dynamic, "ops/s", |s| {
            Some(Value::Num(s.disk_io_rate().round()))
        });
        self.register("disk.byte_rate", Dynamic, "B/s", |s| {
            Some(Value::Num(s.disk_byte_rate().round()))
        });
        self.register("disk.count", Static, "", |s| {
            Some(Value::Num(s.disks.len() as f64))
        });

        // --- sensors (ICE Box probes / lm_sensors) ---
        self.register("temp.cpu", Dynamic, "C", |s| {
            Some(Value::Num((s.sensors.cpu_temp_c * 10.0).round() / 10.0))
        });
        self.register("temp.board", Dynamic, "C", |s| {
            Some(Value::Num((s.sensors.board_temp_c * 10.0).round() / 10.0))
        });
        self.register("fan.cpu_rpm", Dynamic, "rpm", |s| {
            Some(Value::Num(s.sensors.fan_rpm.round()))
        });
        self.register("power.watts", Dynamic, "W", |s| {
            Some(Value::Num(s.sensors.power_watts.round()))
        });
        self.register("net.connectivity", Dynamic, "", |s| {
            Some(Value::Num(s.sensors.udp_echo_ok as u8 as f64))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_exceed_forty_monitors() {
        let r = Registry::with_builtins(&["lo", "eth0"]);
        assert!(
            r.len() > 40,
            "paper: 'over 40 monitors built in', got {}",
            r.len()
        );
    }

    #[test]
    fn static_and_dynamic_both_present() {
        let r = Registry::with_builtins(&["eth0"]);
        assert_eq!(r.get("mem.total").unwrap().class, MonitorClass::Static);
        assert_eq!(r.get("mem.free").unwrap().class, MonitorClass::Dynamic);
        assert_eq!(r.get("cpu.type").unwrap().class, MonitorClass::Static);
    }

    #[test]
    fn extraction_reads_snapshot() {
        let mut r = Registry::with_builtins(&["eth0"]);
        let mut snap = Snapshot::default();
        snap.mem.total_kb = 1_048_576;
        snap.mem.free_kb = 524_288;
        let mut values = BTreeMap::new();
        for m in r.iter_mut() {
            if let Some(v) = m.extract(&snap) {
                values.insert(m.key.clone(), v);
            }
        }
        assert_eq!(
            values.get(&MonitorKey::new("mem.total")),
            Some(&Value::Num(1_048_576.0))
        );
        assert_eq!(
            values.get(&MonitorKey::new("mem.used_pct")),
            Some(&Value::Num(50.0))
        );
    }

    #[test]
    fn plugin_registration_and_removal() {
        let mut r = Registry::new();
        r.register_plugin("site.gpfs_health", MonitorClass::Dynamic, "", |_| {
            Some(Value::Text("ok".into()))
        });
        assert_eq!(r.len(), 1);
        assert!(r.get("site.gpfs_health").unwrap().plugin);
        assert!(r.unregister("site.gpfs_health"));
        assert!(!r.unregister("site.gpfs_health"));
    }

    #[test]
    fn value_rendering() {
        assert_eq!(Value::Num(42.0).render(), "42");
        assert_eq!(Value::Num(0.5).render(), "0.500");
        assert_eq!(Value::Text("x y".into()).render(), "x y");
    }

    #[test]
    fn value_same_as_semantics() {
        assert!(Value::Num(1.0).same_as(&Value::Num(1.0)));
        assert!(!Value::Num(1.0).same_as(&Value::Num(1.0001)));
        assert!(Value::Num(f64::NAN).same_as(&Value::Num(f64::NAN)));
        assert!(Value::Text("a".into()).same_as(&Value::Text("a".into())));
        assert!(!Value::Num(1.0).same_as(&Value::Text("1".into())));
    }

    #[test]
    fn missing_interface_yields_none() {
        let mut r = Registry::with_builtins(&["myri0"]);
        let snap = Snapshot::default(); // no interfaces at all
        let mut got_any = false;
        for m in r.iter_mut() {
            if m.key.as_str() == "net.myri0.rx_bytes" {
                got_any = true;
                assert!(m.extract(&snap).is_none());
            }
        }
        assert!(got_any);
    }
}
