//! The per-node monitoring agent: gather → consolidate → transmit.

use std::io;

use cwx_proc::gather::{
    DiskStatsGatherer, GatherLevel, LoadAvgGatherer, MemInfoGatherer, NetDevGatherer, StatGatherer,
    UptimeGatherer,
};
use cwx_proc::source::ProcSource;
use cwx_util::time::SimTime;

use crate::consolidate::{ConsolidationStats, Consolidator};
use crate::monitor::Registry;
use crate::snapshot::{Sensors, Snapshot};
use crate::transmit::{self, Report};

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Node id used in report headers.
    pub node: u32,
    /// Interfaces to monitor.
    pub interfaces: Vec<String>,
    /// Delta consolidation on (product behaviour) or off (E7 ablation).
    pub delta_enabled: bool,
    /// LZSS-compress reports (product behaviour) or send raw text.
    pub compress: bool,
    /// Emit the binary `CWB1` delta wire format instead of text
    /// (overrides `compress`; the binary format is already compact).
    pub binary: bool,
    /// Serve repeat requests from the snapshot cache within this window.
    pub cache_ttl_secs: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            node: 0,
            interfaces: vec!["lo".into(), "eth0".into()],
            delta_enabled: true,
            compress: true,
            binary: false,
            cache_ttl_secs: 0.5,
        }
    }
}

/// Counters accumulated by an agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Gather ticks executed.
    pub ticks: u64,
    /// Reports emitted (one per tick).
    pub reports: u64,
    /// Bytes of wire text before compression.
    pub raw_bytes: u64,
    /// Bytes actually handed to the network.
    pub wire_bytes: u64,
    /// Individual proc-file reads performed.
    pub gather_calls: u64,
}

/// One tick's output.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutput {
    /// The decoded report (what the server will see).
    pub report: Report,
    /// Wire text length before compression.
    pub raw_len: usize,
    /// Payload length actually transmitted.
    pub wire_len: usize,
    /// The bytes to hand to the network (compressed or raw text
    /// depending on [`AgentConfig::compress`]).
    pub payload: Vec<u8>,
}

/// The monitoring agent for one node.
pub struct Agent<S: ProcSource> {
    cfg: AgentConfig,
    mem: MemInfoGatherer<S>,
    stat: StatGatherer<S>,
    load: LoadAvgGatherer<S>,
    up: UptimeGatherer<S>,
    netdev: NetDevGatherer<S>,
    /// disk I/O is optional: not every source exposes diskstats
    disk: Option<DiskStatsGatherer<S>>,
    registry: Registry,
    consolidator: Consolidator,
    encoder: transmit::WireEncoder,
    wire_buf: Vec<u8>,
    snap: Snapshot,
    have_snapshot: bool,
    seq: u64,
    stats: AgentStats,
}

impl<S: ProcSource> Agent<S> {
    /// Build an agent over a proc source. Opens the keep-open gatherers
    /// (the paper's fastest configuration) immediately.
    pub fn new(source: S, cfg: AgentConfig) -> io::Result<Self>
    where
        S: Clone,
    {
        let ifaces: Vec<&str> = cfg.interfaces.iter().map(String::as_str).collect();
        Ok(Agent {
            mem: MemInfoGatherer::new(source.clone(), GatherLevel::KeepOpen)?,
            stat: StatGatherer::new(&source)?,
            load: LoadAvgGatherer::new(&source)?,
            up: UptimeGatherer::new(&source)?,
            netdev: NetDevGatherer::new(&source)?,
            disk: DiskStatsGatherer::new(&source).ok(),
            registry: Registry::with_builtins(&ifaces),
            consolidator: Consolidator::new(cfg.delta_enabled),
            encoder: transmit::WireEncoder::new(),
            wire_buf: Vec::new(),
            snap: Snapshot::default(),
            have_snapshot: false,
            seq: 0,
            stats: AgentStats::default(),
            cfg,
        })
    }

    /// Access the monitor registry (e.g. to add plug-ins).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Accumulated counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Consolidation counters.
    pub fn consolidation_stats(&self) -> ConsolidationStats {
        self.consolidator.stats()
    }

    /// The most recent snapshot, served from cache if it is younger than
    /// the TTL (the "simultaneous requests" path). `None` when stale or
    /// no snapshot was gathered yet.
    pub fn cached_snapshot(&mut self, now: SimTime) -> Option<&Snapshot> {
        if self.have_snapshot && now.since(self.snap.time).as_secs_f64() <= self.cfg.cache_ttl_secs
        {
            self.consolidator.note_cache_hit();
            Some(&self.snap)
        } else {
            None
        }
    }

    /// Force a full retransmission on the next tick (server resync).
    /// The wire dictionary is renegotiated along with the values.
    pub fn resync(&mut self) {
        self.consolidator.reset();
        self.encoder.reset();
    }

    /// Run one gather/consolidate/transmit cycle.
    pub fn tick(&mut self, now: SimTime, sensors: Sensors) -> io::Result<AgentOutput> {
        // --- gather ---
        let mem = self.mem.sample()?;
        let stat = self.stat.sample()?;
        let load = self.load.sample()?;
        let up = self.up.sample()?;
        let net = self.netdev.sample()?.to_vec();
        let disks = match self.disk.as_mut() {
            Some(g) => {
                self.stats.gather_calls += 1;
                g.sample()?.to_vec()
            }
            None => Vec::new(),
        };
        self.stats.gather_calls += 5;

        let prev_stat = if self.have_snapshot {
            self.snap.stat
        } else {
            stat
        };
        let prev_net = if self.have_snapshot {
            std::mem::take(&mut self.snap.net)
        } else {
            net.clone()
        };
        let prev_disks = if self.have_snapshot {
            std::mem::take(&mut self.snap.disks)
        } else {
            disks.clone()
        };
        let dt_secs = if self.have_snapshot {
            now.since(self.snap.time).as_secs_f64()
        } else {
            0.0
        };
        self.snap = Snapshot {
            time: now,
            dt_secs,
            mem,
            stat,
            prev_stat,
            load,
            uptime: up,
            net,
            prev_net,
            disks,
            prev_disks,
            sensors,
        };
        self.have_snapshot = true;

        // --- consolidate ---
        let mut values = Vec::new();
        for m in self.registry.iter_mut() {
            if let Some(v) = m.extract(&self.snap) {
                if self.consolidator.offer(&m.key, m.class, &v) {
                    values.push((m.key.clone(), v));
                }
            }
        }

        // --- transmit ---
        let report = Report {
            node: self.cfg.node,
            seq: self.seq,
            time_secs: now.as_secs_f64(),
            values,
        };
        self.seq += 1;
        let (raw_len, payload) = if self.cfg.binary {
            // binary frames are handed out as-is; raw == wire
            self.encoder.encode_into(&report, &mut self.wire_buf);
            (self.wire_buf.len(), self.wire_buf.clone())
        } else {
            let raw = transmit::encode(&report);
            let raw_len = raw.len();
            let payload = if self.cfg.compress {
                transmit::encode_compressed(&report)
            } else {
                raw.into_bytes()
            };
            (raw_len, payload)
        };
        let wire_len = payload.len();
        self.stats.ticks += 1;
        self.stats.reports += 1;
        self.stats.raw_bytes += raw_len as u64;
        self.stats.wire_bytes += wire_len as u64;
        Ok(AgentOutput {
            report,
            raw_len,
            wire_len,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_proc::synthetic::SyntheticProc;
    use cwx_util::time::SimDuration;

    fn agent(proc_: &SyntheticProc, delta: bool, compress: bool) -> Agent<SyntheticProc> {
        Agent::new(
            proc_.clone(),
            AgentConfig {
                delta_enabled: delta,
                compress,
                ..AgentConfig::default()
            },
        )
        .unwrap()
    }

    fn tick_n(
        agent: &mut Agent<SyntheticProc>,
        proc_: &SyntheticProc,
        n: usize,
    ) -> Vec<AgentOutput> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::from_secs(i as u64 + 1);
            proc_.with_state(|s| s.tick(1.0, 0.3));
            out.push(agent.tick(t, Sensors::default()).unwrap());
        }
        out
    }

    #[test]
    fn first_report_carries_everything() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, false);
        let out = a.tick(SimTime::ZERO, Sensors::default()).unwrap();
        assert!(
            out.report.values.len() > 40,
            "first tick sends all monitors"
        );
    }

    #[test]
    fn steady_state_reports_shrink_with_delta() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, false);
        let outs = tick_n(&mut a, &proc_, 10);
        let first = &outs[0];
        let later = &outs[9];
        assert!(
            later.report.values.len() < first.report.values.len() / 2,
            "delta consolidation must shrink steady-state reports: {} vs {}",
            later.report.values.len(),
            first.report.values.len()
        );
        // static values never reappear
        assert!(later
            .report
            .values
            .iter()
            .all(|(k, _)| k.as_str() != "mem.total"));
    }

    #[test]
    fn ablation_sends_everything_every_tick() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, false, false);
        let outs = tick_n(&mut a, &proc_, 5);
        let n = outs[0].report.values.len();
        assert!(outs.iter().all(|o| o.report.values.len() == n));
        assert!(n > 40);
    }

    #[test]
    fn delta_plus_compression_cuts_wire_bytes() {
        let proc2 = SyntheticProc::default();
        let mut full = agent(&proc2, false, false);
        let mut opt = agent(&proc2, true, true);
        let mut full_bytes = 0;
        let mut opt_bytes = 0;
        for i in 0..20 {
            let t = SimTime::ZERO + SimDuration::from_secs(i + 1);
            proc2.with_state(|s| s.tick(1.0, 0.3));
            full_bytes += full.tick(t, Sensors::default()).unwrap().wire_len;
            opt_bytes += opt.tick(t, Sensors::default()).unwrap().wire_len;
        }
        assert!(
            opt_bytes * 2 < full_bytes,
            "pipeline must cut bytes substantially: {opt_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn reports_decode_on_the_server_side() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, true);
        proc_.with_state(|s| s.tick(1.0, 0.5));
        let out = a
            .tick(
                SimTime::ZERO + SimDuration::from_secs(1),
                Sensors::default(),
            )
            .unwrap();
        let packed = transmit::encode_compressed(&out.report);
        assert_eq!(packed.len(), out.wire_len);
        let decoded = transmit::decode_compressed(&packed).unwrap();
        assert_eq!(decoded.node, out.report.node);
        assert_eq!(decoded.values.len(), out.report.values.len());
    }

    #[test]
    fn binary_agent_reports_decode_and_beat_text() {
        let proc_ = SyntheticProc::default();
        let mut bin = Agent::new(
            proc_.clone(),
            AgentConfig {
                binary: true,
                compress: false,
                ..AgentConfig::default()
            },
        )
        .unwrap();
        let mut txt = agent(&proc_, true, false);
        let mut dec = transmit::WireDecoder::new();
        let mut bin_bytes = 0usize;
        let mut txt_bytes = 0usize;
        for i in 0..10 {
            let t = SimTime::ZERO + SimDuration::from_secs(i + 1);
            proc_.with_state(|s| s.tick(1.0, 0.3));
            let out = bin.tick(t, Sensors::default()).unwrap();
            let decoded = dec.decode_auto(&out.payload).unwrap();
            assert_eq!(decoded, out.report, "binary frame round-trips");
            bin_bytes += out.wire_len;
            txt_bytes += txt.tick(t, Sensors::default()).unwrap().wire_len;
        }
        // Changed floats XOR-delta to near-full-width varints, so the
        // byte win over text is modest; the real payoff (measured in
        // benches/wire.rs) is skipping float formatting and parsing.
        assert!(
            bin_bytes < txt_bytes,
            "binary wire must undercut raw text: {bin_bytes} vs {txt_bytes}"
        );
    }

    #[test]
    fn cache_serves_fresh_snapshots_only() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, false);
        let t0 = SimTime::ZERO + SimDuration::from_secs(10);
        assert!(
            a.cached_snapshot(t0).is_none(),
            "no snapshot before first tick"
        );
        a.tick(t0, Sensors::default()).unwrap();
        assert!(a
            .cached_snapshot(t0 + SimDuration::from_millis(100))
            .is_some());
        assert!(
            a.cached_snapshot(t0 + SimDuration::from_secs(5)).is_none(),
            "stale"
        );
        assert_eq!(a.consolidation_stats().cache_hits, 1);
    }

    #[test]
    fn resync_retransmits_statics() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, false);
        tick_n(&mut a, &proc_, 3);
        a.resync();
        let out = tick_n(&mut a, &proc_, 1);
        assert!(out[0]
            .report
            .values
            .iter()
            .any(|(k, _)| k.as_str() == "mem.total"));
    }

    #[test]
    fn sensors_flow_into_reports() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, false);
        let sensors = Sensors {
            cpu_temp_c: 61.5,
            fan_rpm: 0.0,
            udp_echo_ok: true,
            ..Default::default()
        };
        let out = a.tick(SimTime::ZERO, sensors).unwrap();
        let temp = out
            .report
            .values
            .iter()
            .find(|(k, _)| k.as_str() == "temp.cpu")
            .unwrap();
        assert_eq!(temp.1.render(), "61.500");
        let fan = out
            .report
            .values
            .iter()
            .find(|(k, _)| k.as_str() == "fan.cpu_rpm")
            .unwrap();
        assert_eq!(fan.1.render(), "0");
    }

    #[test]
    fn stats_accumulate() {
        let proc_ = SyntheticProc::default();
        let mut a = agent(&proc_, true, true);
        tick_n(&mut a, &proc_, 7);
        let s = a.stats();
        assert_eq!(s.ticks, 7);
        assert_eq!(s.reports, 7);
        // 6 proc files per tick (disk I/O included on synthetic)
        assert_eq!(s.gather_calls, 42);
        assert!(s.wire_bytes < s.raw_bytes);
    }
}
