//! Property tests for the `CWB1` binary wire codec: arbitrary reports
//! round-trip bit-exactly through the stateful encoder/decoder pair
//! across frames, resets resynchronize, several agents multiplex over
//! one decoder, and no corruption of wire bytes can ever panic the
//! decoder — truncations, bit flips and garbage all surface as
//! `WireError`.

use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{decode_auto, Report, WireDecoder, WireEncoder};
use proptest::prelude::*;

/// A small key universe so frames exercise both the "bind a new key"
/// and "reference an existing id" paths.
fn key(sel: u64) -> MonitorKey {
    MonitorKey::new(format!("group{}.monitor_{}", sel % 5, sel % 23))
}

/// Build a value from raw generator output: mostly numbers (covering
/// NaN, infinities and denormals via raw bits), sometimes text.
fn value(tag: u64, bits: u64) -> Value {
    if tag.is_multiple_of(4) {
        Value::Text(format!("state-{:x}", bits % 4096))
    } else {
        Value::Num(f64::from_bits(bits))
    }
}

fn report(node: u32, seq: u64, values: &[(u64, u64, u64)]) -> Report {
    Report {
        node,
        seq,
        time_secs: f64::from_bits(seq.wrapping_mul(0x9e3779b97f4a7c15)),
        values: values
            .iter()
            .map(|&(sel, tag, bits)| (key(sel), value(tag, bits)))
            .collect(),
    }
}

/// Bit-exact report comparison: `Report`'s derived `PartialEq` uses
/// `f64 ==`, which NaN values (legitimately on the wire) would fail.
fn assert_reports_eq(got: &Report, want: &Report) {
    assert_eq!(got.node, want.node);
    assert_eq!(got.seq, want.seq);
    assert_eq!(got.time_secs.to_bits(), want.time_secs.to_bits());
    assert_eq!(got.values.len(), want.values.len());
    for ((gk, gv), (wk, wv)) in got.values.iter().zip(&want.values) {
        assert_eq!(gk, wk);
        match (gv, wv) {
            (Value::Num(g), Value::Num(w)) => assert_eq!(g.to_bits(), w.to_bits()),
            _ => assert_eq!(gv, wv),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of reports round-trips through one encoder/decoder
    /// pair, with the dictionary and XOR chains evolving across frames.
    #[test]
    fn frame_sequences_round_trip(
        frames in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..12),
            1..8,
        ),
        node in 0u32..1000,
    ) {
        let mut enc = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let mut buf = Vec::new();
        for (seq, frame) in frames.iter().enumerate() {
            let r = report(node, seq as u64, frame);
            enc.encode_into(&r, &mut buf);
            let back = dec.decode_auto(&buf).expect("valid frame decodes");
            assert_reports_eq(&back, &r);
        }
    }

    /// After `reset()` the next frame is self-contained: a decoder that
    /// missed every earlier frame (receiver restart) still decodes it,
    /// and the stateless `decode_auto` does too.
    #[test]
    fn reset_resynchronizes_any_stream(
        before in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..10),
            1..5,
        ),
        after in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..10),
    ) {
        let mut enc = WireEncoder::new();
        for (seq, frame) in before.iter().enumerate() {
            let _ = enc.encode(&report(9, seq as u64, frame));
        }
        enc.reset();
        let r = report(9, before.len() as u64, &after);
        let resync = enc.encode(&r);
        assert_reports_eq(&WireDecoder::new().decode_auto(&resync).unwrap(), &r);
        assert_reports_eq(&decode_auto(&resync).unwrap(), &r);
    }

    /// A session that survives a disconnect/reconnect resets its key
    /// dictionary correctly: frames encoded during the outage never
    /// reach the decoder, the reconnecting encoder calls `reset()`, and
    /// from the resync frame on the old decoder — whose dictionary
    /// still holds the pre-outage bindings — decodes the entire new
    /// dictionary epoch bit-exactly. This is the exact sequence the
    /// federation sub-server performs on uplink loss.
    #[test]
    fn reconnect_resets_key_dictionary(
        before in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8),
            1..5,
        ),
        lost in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8),
            1..5,
        ),
        after in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8),
            1..5,
        ),
    ) {
        let mut enc = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let mut seq = 0u64;
        // healthy session: decoder tracks the growing dictionary
        for frame in &before {
            let r = report(3, seq, frame);
            assert_reports_eq(&dec.decode_auto(&enc.encode(&r)).unwrap(), &r);
            seq += 1;
        }
        // outage: these frames are encoded but never delivered, so the
        // encoder's dictionary drifts ahead of the decoder's
        for frame in &lost {
            let _ = enc.encode(&report(3, seq, frame));
            seq += 1;
        }
        // reconnect: the session resets and the stale decoder must
        // follow the whole new epoch, not just the resync frame
        enc.reset();
        for frame in &after {
            let r = report(3, seq, frame);
            let back = dec.decode_auto(&enc.encode(&r)).unwrap();
            assert_reports_eq(&back, &r);
            seq += 1;
        }
    }

    /// One decoder serves many agents: per-node dictionary state never
    /// bleeds between nodes even when frames interleave arbitrarily.
    #[test]
    fn multiplexed_nodes_keep_state_separate(
        frames_a in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8),
            1..5,
        ),
        frames_b in collection::vec(
            collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8),
            1..5,
        ),
    ) {
        let mut enc_a = WireEncoder::new();
        let mut enc_b = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let rounds = frames_a.len().max(frames_b.len());
        for i in 0..rounds {
            if let Some(frame) = frames_a.get(i) {
                let r = report(1, i as u64, frame);
                let back = dec.decode_auto(&enc_a.encode(&r)).unwrap();
                assert_reports_eq(&back, &r);
            }
            if let Some(frame) = frames_b.get(i) {
                let r = report(2, i as u64, frame);
                let back = dec.decode_auto(&enc_b.encode(&r)).unwrap();
                assert_reports_eq(&back, &r);
            }
        }
    }

    /// Every truncation of a valid frame — first or continuation — is
    /// rejected without panicking, by both the free function and a
    /// stateful decoder, and a poisoned attempt never corrupts the
    /// decoder's state for the frames that follow.
    #[test]
    fn every_truncation_fails_cleanly(
        frame in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..10),
    ) {
        let mut enc = WireEncoder::new();
        let mut dec = WireDecoder::new();
        let r0 = report(5, 0, &frame);
        let first = enc.encode(&r0);
        let r1 = report(5, 1, &frame);
        let second = enc.encode(&r1);
        assert_reports_eq(&dec.decode_auto(&first).unwrap(), &r0);
        for bytes in [&first, &second] {
            for n in 0..bytes.len() {
                prop_assert!(decode_auto(&bytes[..n]).is_err(), "truncated at {n}");
                prop_assert!(dec.decode_auto(&bytes[..n]).is_err(), "truncated at {n}");
            }
        }
        // the decoder still accepts the intact continuation frame
        assert_reports_eq(&dec.decode_auto(&second).unwrap(), &r1);
    }

    /// Any single-byte corruption of a valid frame is detected: the
    /// magic check catches the header, the CRC everything else.
    #[test]
    fn any_single_byte_corruption_is_detected(
        frame in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..10),
        flip_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut enc = WireEncoder::new();
        let mut bytes = enc.encode(&report(7, 0, &frame));
        let idx = (flip_seed % bytes.len() as u64) as usize;
        bytes[idx] ^= xor;
        prop_assert!(decode_auto(&bytes).is_err());
        prop_assert!(WireDecoder::new().decode_auto(&bytes).is_err());
    }

    /// Arbitrary bytes behind a valid magic never panic the decoder.
    #[test]
    fn garbage_after_magic_never_panics(
        junk in collection::vec(any::<u64>(), 0..40),
    ) {
        let mut bytes = b"CWB1".to_vec();
        for w in &junk {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        // a random payload passing a 32-bit checksum is out of reach;
        // the property is simply "returns Err, never panics"
        prop_assert!(decode_auto(&bytes).is_err());
        prop_assert!(WireDecoder::new().decode_auto(&bytes).is_err());
    }
}
