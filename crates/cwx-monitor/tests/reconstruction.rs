//! The delta-consolidation soundness invariant: a server that applies
//! every (possibly delta-suppressed) report in order reconstructs
//! exactly the same monitor values a non-consolidating agent would have
//! sent. Losing this property would mean the bandwidth savings of paper
//! §5.3.2 silently corrupt the monitoring data.

use std::collections::BTreeMap;

use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::monitor::MonitorKey;
use cwx_monitor::snapshot::Sensors;
use cwx_monitor::transmit::{decode_auto, Report};
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Apply a report to a server-side key→rendered-value view.
fn apply(view: &mut BTreeMap<MonitorKey, String>, report: &Report) {
    for (k, v) in &report.values {
        view.insert(k.clone(), v.render());
    }
}

fn run_pair(
    activity: &[(f64, f64)],
) -> (BTreeMap<MonitorKey, String>, BTreeMap<MonitorKey, String>) {
    // two agents over IDENTICAL state evolution: one delta, one full
    let mk = || SyntheticProc::default();
    let (proc_a, proc_b) = (mk(), mk());
    let mut delta_agent = Agent::new(
        proc_a.clone(),
        AgentConfig {
            delta_enabled: true,
            compress: true,
            ..AgentConfig::default()
        },
    )
    .unwrap();
    let mut full_agent = Agent::new(
        proc_b.clone(),
        AgentConfig {
            delta_enabled: false,
            compress: false,
            ..AgentConfig::default()
        },
    )
    .unwrap();

    let mut view_delta = BTreeMap::new();
    let mut view_full = BTreeMap::new();
    let mut now = SimTime::ZERO;
    for &(dt, util) in activity {
        now += SimDuration::from_secs_f64(dt.max(0.1));
        proc_a.with_state(|s| s.tick(dt.max(0.1), util));
        proc_b.with_state(|s| s.tick(dt.max(0.1), util));
        let sensors = Sensors {
            cpu_temp_c: 30.0 + 40.0 * util,
            board_temp_c: 28.0,
            fan_rpm: 6000.0,
            power_watts: 90.0 + 100.0 * util,
            udp_echo_ok: true,
        };
        // ship the delta agent's bytes through the codec like the wire
        let out = delta_agent.tick(now, sensors).unwrap();
        let decoded = decode_auto(&out.payload).unwrap();
        apply(&mut view_delta, &decoded);
        apply(
            &mut view_full,
            &full_agent.tick(now, sensors).unwrap().report,
        );
    }
    (view_delta, view_full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn delta_view_equals_full_view(
        activity in proptest::collection::vec((0.1f64..20.0, 0.0f64..1.0), 1..25)
    ) {
        let (delta, full) = run_pair(&activity);
        prop_assert_eq!(delta, full);
    }
}

#[test]
fn reconstruction_after_resync_mid_stream() {
    // simulate a server restart: it loses its view; the agent resyncs
    let proc_ = SyntheticProc::default();
    let mut agent = Agent::new(
        proc_.clone(),
        AgentConfig {
            delta_enabled: true,
            compress: false,
            ..AgentConfig::default()
        },
    )
    .unwrap();
    let mut now = SimTime::ZERO;
    let mut view = BTreeMap::new();
    for i in 0..5 {
        now += SimDuration::from_secs(5);
        proc_.with_state(|s| s.tick(5.0, 0.2 + 0.1 * i as f64));
        apply(
            &mut view,
            &agent.tick(now, Sensors::default()).unwrap().report,
        );
    }
    let full_view = view.clone();

    // server restarts with empty state; without resync it would miss
    // every static and unchanged value
    let mut fresh = BTreeMap::new();
    agent.resync();
    now += SimDuration::from_secs(5);
    proc_.with_state(|s| s.tick(5.0, 0.7));
    apply(
        &mut fresh,
        &agent.tick(now, Sensors::default()).unwrap().report,
    );
    // after resync a single report restores the complete key set
    assert_eq!(
        fresh.keys().collect::<Vec<_>>(),
        full_view.keys().collect::<Vec<_>>(),
        "resync must retransmit every monitor"
    );
}
