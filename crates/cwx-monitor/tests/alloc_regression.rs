//! Allocation regression test for the per-tick hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! test warms up the consolidator and the binary wire encoder, then
//! asserts the steady state — suppressed `offer` calls and
//! `encode_into` onto a reused buffer — performs zero heap
//! allocations. This pins the two perf properties the interning and
//! encode-into-buffer work bought: losing either shows up here as a
//! counted alloc, not as a silent throughput regression.
//!
//! The counter is thread-local: the libtest harness's main thread
//! allocates on its own schedule (output buffering, timing), and a
//! process-global counter races those allocations into the measurement
//! window, making the test flaky. Per-thread counting pins the hot
//! path without seeing the harness. The `const`-initialised `Cell`
//! registers no TLS destructor, so the allocator may touch it at any
//! point in a thread's life.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cwx_monitor::consolidate::Consolidator;
use cwx_monitor::monitor::{MonitorClass, MonitorKey, Value};
use cwx_monitor::transmit::{Report, WireEncoder};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is side-effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_hot_path_does_not_allocate() {
    const KEYS: usize = 48;
    let keys: Vec<MonitorKey> = (0..KEYS)
        .map(|i| MonitorKey::new(format!("group{}.monitor_{i}", i % 5)))
        .collect();

    // --- consolidator: a suppressed offer must not touch the heap ---
    let mut cons = Consolidator::new(true);
    for k in &keys {
        // warmup binds every key into the interner and sends it once
        assert!(cons.offer(k, MonitorClass::Dynamic, &Value::Num(1.0)));
    }
    let before = allocs();
    for _ in 0..256 {
        for k in &keys {
            let sent = cons.offer(k, MonitorClass::Dynamic, &Value::Num(1.0));
            assert!(!sent, "unchanged value must be suppressed");
        }
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "suppressed offers allocated on the hot path"
    );

    // --- binary encoder: steady-state frames reuse the caller buffer ---
    let mut enc = WireEncoder::new();
    let mut buf = Vec::new();
    let mut r = Report {
        node: 3,
        seq: 0,
        time_secs: 100.0,
        values: keys.iter().map(|k| (k.clone(), Value::Num(0.5))).collect(),
    };
    // warmup: dictionary negotiation + buffer growth happen here
    enc.encode_into(&r, &mut buf);
    let before = allocs();
    for i in 1..256u64 {
        r.seq = i;
        r.time_secs = 100.0 + i as f64;
        for (j, (_, v)) in r.values.iter_mut().enumerate() {
            *v = Value::Num(0.5 + (i + j as u64) as f64);
        }
        enc.encode_into(&r, &mut buf);
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state encode_into allocated despite a warm buffer"
    );
}
