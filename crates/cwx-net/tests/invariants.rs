//! Property tests on the network model's invariants.

use cwx_net::{
    wire_bytes_for, GroupId, Network, NodeAddr, SegmentId, FAST_ETHERNET_BPS, FRAME_OVERHEAD,
    FRAME_PAYLOAD,
};
use cwx_util::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Accounting conservation: every offered packet is either delivered
    /// or lost, per receiver.
    #[test]
    fn conservation_under_random_traffic(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        sends in proptest::collection::vec((0u32..8, 0u32..8, 1u64..100_000), 1..80)
    ) {
        let mut net: Network<u32> = Network::single_segment(seed, 8, FAST_ETHERNET_BPS, loss);
        let mut delivered = 0u64;
        for (i, &(from, to, size)) in sends.iter().enumerate() {
            if from == to { continue; }
            delivered += net
                .unicast(SimTime::ZERO, NodeAddr(from), NodeAddr(to), size, i as u32)
                .len() as u64;
        }
        let s = net.stats();
        prop_assert_eq!(s.delivered, delivered);
        prop_assert_eq!(s.delivered + s.lost, s.sent);
    }

    /// Same-segment FIFO: deliveries from one sender to one receiver
    /// arrive in send order (the cloning protocol relies on this for the
    /// repairs-before-poll ordering).
    #[test]
    fn fifo_per_segment(sizes in proptest::collection::vec(1u64..50_000, 2..40)) {
        let mut net: Network<usize> = Network::single_segment(1, 2, FAST_ETHERNET_BPS, 0.0);
        let mut arrivals = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let ds = net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), size, i);
            prop_assert_eq!(ds.len(), 1);
            arrivals.push((ds[0].at, ds[0].msg));
        }
        for w in arrivals.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "later send must not arrive earlier");
            prop_assert!(w[0].1 < w[1].1);
        }
    }

    /// Wire-byte accounting matches the frame model exactly.
    #[test]
    fn wire_bytes_match_frame_model(payloads in proptest::collection::vec(0u64..2_000_000, 1..30)) {
        let mut net: Network<u32> = Network::single_segment(2, 2, FAST_ETHERNET_BPS, 0.0);
        let mut expect = 0u64;
        for &p in &payloads {
            net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), p, 0);
            expect += wire_bytes_for(p);
        }
        prop_assert_eq!(net.segment(SegmentId(0)).wire_bytes(), expect);
    }

    /// Multicast beats repeated unicast on wall-clock for any group size
    /// above one, and uses strictly less wire.
    #[test]
    fn multicast_dominates_unicast(n in 2u32..40, payload in 1u64..500_000) {
        let mut uni: Network<u32> = Network::single_segment(3, n + 1, FAST_ETHERNET_BPS, 0.0);
        let mut last_uni = SimTime::ZERO;
        for i in 1..=n {
            let ds = uni.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(i), payload, 0);
            last_uni = last_uni.max(ds[0].at);
        }
        let mut mc: Network<u32> = Network::single_segment(3, n + 1, FAST_ETHERNET_BPS, 0.0);
        let g = GroupId(0);
        for i in 1..=n {
            mc.join(g, NodeAddr(i));
        }
        let ds = mc.multicast(SimTime::ZERO, NodeAddr(0), g, payload, 0);
        let last_mc = ds.iter().map(|d| d.at).max().unwrap();
        prop_assert!(last_mc <= last_uni);
        prop_assert!(
            mc.segment(SegmentId(0)).wire_bytes() < uni.segment(SegmentId(0)).wire_bytes()
        );
    }

    /// Frame math: overhead grows exactly with the fragment count.
    #[test]
    fn fragmentation_overhead_exact(payload in 0u64..10_000_000) {
        let frames = payload.div_ceil(FRAME_PAYLOAD).max(1);
        prop_assert_eq!(wire_bytes_for(payload), payload + frames * FRAME_OVERHEAD);
    }
}
