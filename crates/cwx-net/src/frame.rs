//! Length-prefixed frame streams over nonblocking sockets.
//!
//! Both realtime wire protocols in this workspace — `CWB1` monitoring
//! reports on agent uplinks and `CWF1` federation frames — travel as
//! `u32` little-endian length-prefixed frames over TCP. This module
//! holds the per-connection state machine a readiness reactor needs:
//!
//! * [`FrameBuffer`] accumulates wire bytes across readiness events in
//!   one reused buffer and yields complete frames as borrowed slices —
//!   a partial frame survives to the next event, and a complete frame
//!   is handed to the decoder without a copy.
//! * [`FrameConn`] pairs a nonblocking [`TcpStream`] with a
//!   [`FrameBuffer`] and a bounded outbound queue, surfacing explicit
//!   [`ConnError`]s — oversized frames, receive-buffer overflow,
//!   send-queue overflow (a peer that stopped draining) — instead of
//!   blocking a thread.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Bytes of length prefix before every frame.
pub const LEN_PREFIX: usize = 4;

/// How many bytes one `read` call asks the socket for.
const READ_CHUNK: usize = 16 * 1024;

/// Per-connection resource bounds.
#[derive(Debug, Clone, Copy)]
pub struct ConnLimits {
    /// Largest accepted frame body; a corrupt or hostile length prefix
    /// must not allocate gigabytes.
    pub max_frame: usize,
    /// Most unparsed inbound bytes buffered before the connection is
    /// declared misbehaving.
    pub max_read_buffer: usize,
    /// Most outbound bytes queued for a peer that is not draining its
    /// socket before [`ConnError::SendOverflow`].
    pub max_write_buffer: usize,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_frame: 1 << 20,
            max_read_buffer: 1 << 20,
            max_write_buffer: 4 << 20,
        }
    }
}

/// Why a connection must be closed.
#[derive(Debug)]
pub enum ConnError {
    /// Transport error.
    Io(io::Error),
    /// A frame announced a body larger than `max_frame`.
    Oversize {
        /// The announced length.
        len: usize,
    },
    /// The peer sent faster than frames were consumed past
    /// `max_read_buffer`.
    RecvOverflow,
    /// The peer stopped draining and the outbound queue passed
    /// `max_write_buffer`.
    SendOverflow,
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Io(e) => write!(f, "connection i/o error: {e}"),
            ConnError::Oversize { len } => write!(f, "oversized frame ({len} bytes)"),
            ConnError::RecvOverflow => write!(f, "inbound buffer overflow"),
            ConnError::SendOverflow => write!(f, "outbound queue overflow (slow consumer)"),
        }
    }
}

impl std::error::Error for ConnError {}

impl From<io::Error> for ConnError {
    fn from(e: io::Error) -> Self {
        ConnError::Io(e)
    }
}

/// Outcome of one readiness-driven read pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadState {
    /// The socket would block; everything available was consumed.
    Drained,
    /// The peer closed the stream (all buffered complete frames were
    /// still delivered).
    Eof,
    /// The per-pass byte budget was spent with data still pending; the
    /// level-triggered poller will fire again (fairness between
    /// connections).
    HasMore,
}

/// Incremental assembler for `u32`-LE length-prefixed frames.
///
/// Feed it wire bytes in arbitrary fragments; it yields each complete
/// frame body exactly once, as a slice into its internal buffer. The
/// buffer is reused for the life of the connection: steady state does
/// no allocation, and compaction is amortized.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameBuffer {
    /// An empty buffer accepting frames up to `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Unconsumed bytes currently buffered (partial frames and frames
    /// not yet pulled with [`FrameBuffer::next_frame`]).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.start);
        }
        self.start = 0;
    }

    /// Append raw wire bytes (test entry; the reactor path uses
    /// [`FrameBuffer::read_from`]).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Read once from `r` into the buffer. Returns the byte count (0 =
    /// EOF). `WouldBlock` surfaces as the io error — callers on a
    /// readiness loop treat it as "drained".
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Release buffer capacity when no partial frame is held across
    /// events. At tens of thousands of mostly-idle connections the
    /// retained `READ_CHUNK` capacities dominate the server's resident
    /// set; re-growing on the next readiness event is one allocation,
    /// far cheaper than keeping the memory resident per connection.
    pub fn shrink_idle(&mut self) {
        if self.buffered() == 0 && self.buf.capacity() > LEN_PREFIX {
            self.compact();
            self.buf.shrink_to(0);
        }
    }

    /// Pull the next complete frame body, if one is fully buffered.
    /// Returns `Err` when the stream announces a frame larger than
    /// `max_frame` (the connection is unrecoverable: framing is lost).
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, ConnError> {
        let avail = self.buf.len() - self.start;
        if avail < LEN_PREFIX {
            return Ok(None);
        }
        let p = self.start;
        let len = u32::from_le_bytes(self.buf[p..p + LEN_PREFIX].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(ConnError::Oversize { len });
        }
        if avail < LEN_PREFIX + len {
            return Ok(None);
        }
        let body_start = p + LEN_PREFIX;
        self.start = body_start + len;
        Ok(Some(&self.buf[body_start..body_start + len]))
    }
}

/// Encode `body` as one length-prefixed frame appended to `out`.
pub fn put_frame(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
}

/// A nonblocking framed TCP connection driven by a readiness reactor.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    wstart: usize,
    limits: ConnLimits,
}

impl FrameConn {
    /// Adopt an accepted (or connected) stream: switches it to
    /// nonblocking and disables Nagle.
    pub fn new(stream: TcpStream, limits: ConnLimits) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(FrameConn {
            stream,
            rbuf: FrameBuffer::new(limits.max_frame),
            wbuf: Vec::new(),
            wstart: 0,
            limits,
        })
    }

    /// The underlying stream (for fd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Consume readable data, invoking `on_frame` for every complete
    /// frame. Bounded work per call: at most ~256 KiB is read before
    /// returning [`ReadState::HasMore`] so one firehose connection
    /// cannot starve the rest of the fleet.
    pub fn read_frames(&mut self, mut on_frame: impl FnMut(&[u8])) -> Result<ReadState, ConnError> {
        let mut budget = 16; // READ_CHUNK-sized reads per pass
        loop {
            match self.rbuf.read_from(&mut self.stream) {
                Ok(0) => {
                    // EOF: deliver what is complete, then report close
                    while let Some(frame) = self.rbuf.next_frame()? {
                        on_frame(frame);
                    }
                    return Ok(ReadState::Eof);
                }
                Ok(_) => {
                    while let Some(frame) = self.rbuf.next_frame()? {
                        on_frame(frame);
                    }
                    if self.rbuf.buffered() > self.limits.max_read_buffer {
                        return Err(ConnError::RecvOverflow);
                    }
                    budget -= 1;
                    if budget == 0 {
                        return Ok(ReadState::HasMore);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.shrink_idle();
                    return Ok(ReadState::Drained);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
    }

    /// Queue one outbound frame and try to flush. Fails with
    /// [`ConnError::SendOverflow`] when the peer has let the queue grow
    /// past the configured bound — the caller's cue to evict the slow
    /// consumer rather than buffer without limit.
    pub fn queue_frame(&mut self, body: &[u8]) -> Result<(), ConnError> {
        if self.pending_write() + LEN_PREFIX + body.len() > self.limits.max_write_buffer {
            return Err(ConnError::SendOverflow);
        }
        put_frame(&mut self.wbuf, body);
        self.flush()?;
        Ok(())
    }

    /// Push queued bytes into the socket. Returns `true` when the queue
    /// is empty (write interest can be dropped).
    pub fn flush(&mut self) -> Result<bool, ConnError> {
        while self.wstart < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wstart..]) {
                Ok(0) => {
                    return Err(ConnError::Io(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer window closed",
                    )))
                }
                Ok(n) => self.wstart += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
        self.wbuf.clear();
        self.wstart = 0;
        Ok(true)
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wstart
    }

    /// Whether the reactor should keep write interest registered.
    pub fn wants_write(&self) -> bool {
        self.pending_write() > 0
    }

    /// Unparsed inbound bytes held across readiness events.
    pub fn read_buffered(&self) -> usize {
        self.rbuf.buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(bodies: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for b in bodies {
            put_frame(&mut out, b);
        }
        out
    }

    #[test]
    fn frames_survive_arbitrary_fragmentation() {
        let wire = framed(&[b"alpha", b"", b"gamma-gamma"]);
        // feed one byte at a time — worst case fragmentation
        let mut fb = FrameBuffer::new(1024);
        let mut got: Vec<Vec<u8>> = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f.to_vec());
            }
        }
        assert_eq!(
            got,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-gamma".to_vec()]
        );
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn oversize_prefix_is_rejected_not_allocated() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(ConnError::Oversize { len }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn partial_tail_waits_for_more_bytes() {
        let wire = framed(&[b"hello"]);
        let mut fb = FrameBuffer::new(1024);
        fb.extend(&wire[..wire.len() - 2]);
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.buffered(), wire.len() - 2);
        fb.extend(&wire[wire.len() - 2..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"hello");
    }

    #[test]
    fn conn_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut cconn = FrameConn::new(client, ConnLimits::default()).unwrap();
        let mut sconn = FrameConn::new(server, ConnLimits::default()).unwrap();

        cconn.queue_frame(b"report-1").unwrap();
        cconn.queue_frame(b"report-2").unwrap();
        while !cconn.flush().unwrap() {}

        let mut got = Vec::new();
        // readiness loop stand-in: retry until both frames arrive
        for _ in 0..100 {
            match sconn.read_frames(|f| got.push(f.to_vec())) {
                Ok(_) => {}
                Err(e) => panic!("read failed: {e}"),
            }
            if got.len() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(got, vec![b"report-1".to_vec(), b"report-2".to_vec()]);
    }

    #[test]
    fn slow_consumer_overflows_the_send_queue() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // the peer never reads; our queue bound is tiny
        let limits = ConnLimits {
            max_write_buffer: 64 * 1024,
            ..ConnLimits::default()
        };
        let mut sconn = FrameConn::new(server, limits).unwrap();
        let frame = vec![0xAB; 32 * 1024];
        let mut overflowed = false;
        for _ in 0..1000 {
            match sconn.queue_frame(&frame) {
                Ok(()) => {}
                Err(ConnError::SendOverflow) => {
                    overflowed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(overflowed, "bounded queue must trip, not balloon");
        drop(client);
    }
}
