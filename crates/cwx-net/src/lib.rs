//! Simulated cluster network (substrate for paper §4 and §5.3).
//!
//! The paper's cloning result — "even a single fast ethernet is
//! sufficient to clone several hundred nodes simultaneously" — is a
//! statement about *shared-medium contention*: a unicast push to N nodes
//! puts N copies of the image on the wire, a multicast push puts one.
//! This crate models exactly that physics and nothing more:
//!
//! * [`Network`] is a set of shared [`Segment`]s (e.g. one 100 Mbit/s
//!   fast-Ethernet segment for the whole cluster, like the LLNL machine),
//!   optionally joined by a backbone segment.
//! * Each segment serializes transmissions: a packet occupies the wire
//!   for `wire_bytes / bandwidth`, and later sends queue behind it
//!   (`busy_until`).
//! * Deliveries happen after the transmission completes plus propagation
//!   latency; each receiver independently loses the packet with the
//!   segment's loss probability (seeded, deterministic).
//! * Multicast transmits **once per segment** that has subscribed
//!   members; unicast transmits once per hop.
//!
//! The network is pure: `unicast`/`multicast` return the list of
//! [`Delivery`] records and the caller (the cloning or monitoring
//! protocol) schedules them on the discrete-event simulator.

#![warn(missing_docs)]

pub mod frame;
pub mod reactor;

use std::collections::{BTreeMap, BTreeSet};

use cwx_util::rng::chance;
use cwx_util::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Identifies a node's network attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u32);

/// Identifies a shared segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u16);

/// Identifies a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u16);

/// Ethernet + IP + UDP framing overhead per frame, in bytes.
pub const FRAME_OVERHEAD: u64 = 58;
/// Maximum payload bytes per frame (Ethernet MTU minus IP/UDP headers).
pub const FRAME_PAYLOAD: u64 = 1458;

/// 100 Mbit/s fast Ethernet (in bytes/s), the paper's cloning medium.
pub const FAST_ETHERNET_BPS: u64 = 100_000_000 / 8;
/// Gigabit Ethernet (in bytes/s), for sweeps.
pub const GIGABIT_BPS: u64 = 1_000_000_000 / 8;

/// A shared broadcast medium.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// One-way propagation + switch latency.
    pub latency: SimDuration,
    /// Independent per-receiver loss probability in `[0,1]`.
    pub loss: f64,
    partitioned: bool,
    busy_until: SimTime,
    wire_bytes: u64,
    packets: u64,
}

impl Segment {
    fn new(bandwidth_bps: u64, latency: SimDuration, loss: f64) -> Self {
        assert!(bandwidth_bps > 0, "segment bandwidth must be nonzero");
        Segment {
            bandwidth_bps,
            latency,
            loss: loss.clamp(0.0, 1.0),
            partitioned: false,
            busy_until: SimTime::ZERO,
            wire_bytes: 0,
            packets: 0,
        }
    }

    /// Whether the segment is currently partitioned from the network.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Total bytes (incl. framing) this segment has carried.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Total packets carried.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Time the wire is occupied transmitting `payload` bytes, including
    /// per-frame overhead and fragmentation.
    pub fn tx_time(&self, payload: u64) -> SimDuration {
        let wire = wire_bytes_for(payload);
        SimDuration::from_secs_f64(wire as f64 / self.bandwidth_bps as f64)
    }

    /// Reserve the wire starting no earlier than `now`; returns the time
    /// the transmission completes.
    fn transmit(&mut self, now: SimTime, payload: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let end = start + self.tx_time(payload);
        self.busy_until = end;
        self.wire_bytes += wire_bytes_for(payload);
        self.packets += 1;
        end
    }
}

/// Bytes on the wire for a payload, with fragmentation and per-frame
/// overhead.
pub fn wire_bytes_for(payload: u64) -> u64 {
    let frames = payload.div_ceil(FRAME_PAYLOAD).max(1);
    payload + frames * FRAME_OVERHEAD
}

/// A message delivery computed by the network: give `msg` to `to` at
/// `at` (schedule it on the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Delivery time.
    pub at: SimTime,
    /// Receiving node.
    pub to: NodeAddr,
    /// The message.
    pub msg: M,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets offered to the network.
    pub sent: u64,
    /// Per-receiver deliveries that succeeded.
    pub delivered: u64,
    /// Per-receiver deliveries lost.
    pub lost: u64,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network<M> {
    segments: Vec<Segment>,
    backbone: Option<SegmentId>,
    attachment: BTreeMap<NodeAddr, SegmentId>,
    groups: BTreeMap<GroupId, BTreeSet<NodeAddr>>,
    rng: StdRng,
    stats: NetStats,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Clone> Network<M> {
    /// An empty network with a deterministic loss RNG.
    pub fn new(seed: u64) -> Self {
        Network {
            segments: Vec::new(),
            backbone: None,
            attachment: BTreeMap::new(),
            groups: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Convenience: one shared fast-Ethernet-style segment with `n` nodes
    /// attached at addresses `0..n` — the LLNL cloning topology.
    pub fn single_segment(seed: u64, n: u32, bandwidth_bps: u64, loss: f64) -> Self {
        let mut net = Network::new(seed);
        let seg = net.add_segment(bandwidth_bps, SimDuration::from_micros(100), loss);
        for i in 0..n {
            net.attach(NodeAddr(i), seg);
        }
        net
    }

    /// Add a segment, returning its id.
    pub fn add_segment(
        &mut self,
        bandwidth_bps: u64,
        latency: SimDuration,
        loss: f64,
    ) -> SegmentId {
        let id = SegmentId(self.segments.len() as u16);
        self.segments
            .push(Segment::new(bandwidth_bps, latency, loss));
        id
    }

    /// Declare `seg` the backbone joining all other segments.
    pub fn set_backbone(&mut self, seg: SegmentId) {
        assert!((seg.0 as usize) < self.segments.len());
        self.backbone = Some(seg);
    }

    /// Attach a node to a segment (replacing any previous attachment).
    pub fn attach(&mut self, node: NodeAddr, seg: SegmentId) {
        assert!((seg.0 as usize) < self.segments.len());
        self.attachment.insert(node, seg);
    }

    /// The segment a node is attached to.
    pub fn segment_of(&self, node: NodeAddr) -> Option<SegmentId> {
        self.attachment.get(&node).copied()
    }

    /// Segment accessor (for reporting).
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0 as usize]
    }

    /// Number of segments in the network.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Change a segment's per-receiver loss probability at runtime
    /// (degraded cabling, a dying switch port). Clamped to `[0,1]`.
    pub fn set_loss(&mut self, id: SegmentId, loss: f64) {
        self.segments[id.0 as usize].loss = loss.clamp(0.0, 1.0);
    }

    /// Change a segment's bandwidth at runtime (auto-negotiation
    /// fallback, half-duplex collapse). Panics on zero.
    pub fn set_bandwidth(&mut self, id: SegmentId, bandwidth_bps: u64) {
        assert!(bandwidth_bps > 0, "segment bandwidth must be nonzero");
        self.segments[id.0 as usize].bandwidth_bps = bandwidth_bps;
    }

    /// Partition a segment: until [`Network::heal`], every packet that
    /// would cross it is dropped (uplink unplugged / switch dead).
    /// Transmissions never start, so nothing is charged to the wire.
    pub fn partition(&mut self, id: SegmentId) {
        self.segments[id.0 as usize].partitioned = true;
    }

    /// Heal a partitioned segment.
    pub fn heal(&mut self, id: SegmentId) {
        self.segments[id.0 as usize].partitioned = false;
    }

    /// Canonical digest of the network's complete state: every segment
    /// (bandwidth, latency, loss, partition flag, busy-until horizon,
    /// traffic counters), topology, delivery counters, and the loss
    /// RNG's stream position (probed by clone, not perturbed). Used by
    /// the snapshot subsystem to verify replayed network state.
    pub fn state_digest(&self) -> u64 {
        use cwx_util::hash::{fnv1a_fold, fnv1a_fold_u64 as f, FNV_OFFSET};
        use cwx_util::rng::stream_probe;
        let mut h = FNV_OFFSET;
        h = f(h, self.segments.len() as u64);
        for s in &self.segments {
            h = f(h, s.bandwidth_bps);
            h = f(h, s.latency.as_nanos());
            h = f(h, s.loss.to_bits());
            h = f(h, s.partitioned as u64);
            h = f(h, s.busy_until.as_nanos());
            h = f(h, s.wire_bytes);
            h = f(h, s.packets);
        }
        h = fnv1a_fold(h, format!("{:?}", self.backbone).as_bytes());
        h = fnv1a_fold(h, format!("{:?}", self.attachment).as_bytes());
        h = fnv1a_fold(h, format!("{:?}", self.groups).as_bytes());
        h = f(h, self.stats.sent);
        h = f(h, self.stats.delivered);
        h = f(h, self.stats.lost);
        f(h, stream_probe(&self.rng, 4))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Subscribe `node` to `group`.
    pub fn join(&mut self, group: GroupId, node: NodeAddr) {
        self.groups.entry(group).or_default().insert(node);
    }

    /// Unsubscribe `node` from `group`.
    pub fn leave(&mut self, group: GroupId, node: NodeAddr) {
        if let Some(g) = self.groups.get_mut(&group) {
            g.remove(&node);
        }
    }

    /// Current members of a group.
    pub fn members(&self, group: GroupId) -> impl Iterator<Item = NodeAddr> + '_ {
        self.groups.get(&group).into_iter().flatten().copied()
    }

    /// The sequence of segments a packet crosses from `a` to `b`.
    fn route(&self, a: SegmentId, b: SegmentId) -> Vec<SegmentId> {
        if a == b {
            vec![a]
        } else {
            match self.backbone {
                Some(bb) if bb == a || bb == b => vec![a, b],
                Some(bb) => vec![a, bb, b],
                None => vec![a, b], // direct switch-to-switch link
            }
        }
    }

    /// Send `payload` bytes from `from` to `to`. Returns the delivery
    /// (empty if lost or either endpoint is detached).
    pub fn unicast(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        to: NodeAddr,
        payload: u64,
        msg: M,
    ) -> Vec<Delivery<M>> {
        let (Some(sa), Some(sb)) = (self.segment_of(from), self.segment_of(to)) else {
            return Vec::new();
        };
        self.stats.sent += 1;
        if self
            .route(sa, sb)
            .iter()
            .any(|seg| self.segments[seg.0 as usize].partitioned)
        {
            self.stats.lost += 1;
            return Vec::new();
        }
        let mut t = now;
        let mut ok = true;
        for seg in self.route(sa, sb) {
            let s = &mut self.segments[seg.0 as usize];
            t = s.transmit(t, payload) + s.latency;
            if chance(&mut self.rng, s.loss) {
                ok = false;
            }
        }
        if ok {
            self.stats.delivered += 1;
            vec![Delivery { at: t, to, msg }]
        } else {
            self.stats.lost += 1;
            Vec::new()
        }
    }

    /// Multicast `payload` bytes from `from` to every member of `group`
    /// (excluding the sender). One wire transmission per segment with
    /// members; loss is independent per receiver.
    pub fn multicast(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        group: GroupId,
        payload: u64,
        msg: M,
    ) -> Vec<Delivery<M>> {
        let Some(src_seg) = self.segment_of(from) else {
            return Vec::new();
        };
        let members: Vec<NodeAddr> = self.members(group).filter(|&n| n != from).collect();
        if members.is_empty() {
            return Vec::new();
        }
        self.stats.sent += 1;

        // group receivers by segment
        let mut by_seg: BTreeMap<SegmentId, Vec<NodeAddr>> = BTreeMap::new();
        for n in members {
            if let Some(seg) = self.segment_of(n) {
                by_seg.entry(seg).or_default().push(n);
            }
        }

        if self.segments[src_seg.0 as usize].partitioned {
            // the sender's own segment is cut off: nothing leaves the port
            self.stats.lost += by_seg.values().map(|v| v.len() as u64).sum::<u64>();
            return Vec::new();
        }

        // Transmit once on the source segment; remote segments receive a
        // forwarded copy (source tx -> backbone tx -> leaf tx).
        let src_done = self.segments[src_seg.0 as usize].transmit(now, payload);

        let mut out = Vec::new();
        for (seg, nodes) in by_seg {
            if self
                .route(src_seg, seg)
                .iter()
                .any(|s| self.segments[s.0 as usize].partitioned)
            {
                self.stats.lost += nodes.len() as u64;
                continue;
            }
            // arrival time of the stream on this segment
            let arrival = if seg == src_seg {
                src_done + self.segments[seg.0 as usize].latency
            } else {
                let mut t = src_done + self.segments[src_seg.0 as usize].latency;
                if let Some(bb) = self.backbone {
                    if bb != src_seg && bb != seg {
                        let b = &mut self.segments[bb.0 as usize];
                        t = b.transmit(t, payload) + b.latency;
                    }
                }
                let s = &mut self.segments[seg.0 as usize];
                s.transmit(t, payload) + s.latency
            };
            let loss = self.segments[seg.0 as usize].loss;
            for n in nodes {
                if chance(&mut self.rng, loss) {
                    self.stats.lost += 1;
                } else {
                    self.stats.delivered += 1;
                    out.push(Delivery {
                        at: arrival,
                        to: n,
                        msg: msg.clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(n: u32) -> Network<u32> {
        Network::single_segment(1, n, FAST_ETHERNET_BPS, 0.0)
    }

    #[test]
    fn wire_bytes_fragmentation() {
        assert_eq!(wire_bytes_for(0), FRAME_OVERHEAD);
        assert_eq!(wire_bytes_for(100), 100 + FRAME_OVERHEAD);
        assert_eq!(
            wire_bytes_for(FRAME_PAYLOAD),
            FRAME_PAYLOAD + FRAME_OVERHEAD
        );
        assert_eq!(
            wire_bytes_for(FRAME_PAYLOAD + 1),
            FRAME_PAYLOAD + 1 + 2 * FRAME_OVERHEAD
        );
    }

    #[test]
    fn unicast_delivers_with_latency_and_tx_time() {
        let mut net = lossless(2);
        let d = net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 1000, 7u32);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, NodeAddr(1));
        assert_eq!(d[0].msg, 7);
        let tx = net.segment(SegmentId(0)).tx_time(1000);
        assert_eq!(d[0].at, SimTime::ZERO + tx + SimDuration::from_micros(100));
    }

    #[test]
    fn shared_segment_serializes_transmissions() {
        let mut net = lossless(3);
        let d1 = net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 10_000, 0u32);
        let d2 = net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(2), 10_000, 1u32);
        // second packet queues behind the first
        assert!(d2[0].at > d1[0].at);
        let gap = d2[0].at - d1[0].at;
        assert_eq!(gap, net.segment(SegmentId(0)).tx_time(10_000));
    }

    #[test]
    fn multicast_transmits_once_for_all_members() {
        let mut net = lossless(10);
        let g = GroupId(0);
        for i in 1..10 {
            net.join(g, NodeAddr(i));
        }
        let ds = net.multicast(SimTime::ZERO, NodeAddr(0), g, 10_000, 0u32);
        assert_eq!(ds.len(), 9);
        // all receivers get it at the same instant — one wire transmission
        for d in &ds {
            assert_eq!(d.at, ds[0].at);
        }
        assert_eq!(net.segment(SegmentId(0)).packets(), 1);
    }

    #[test]
    fn multicast_excludes_sender() {
        let mut net = lossless(3);
        let g = GroupId(0);
        for i in 0..3 {
            net.join(g, NodeAddr(i));
        }
        let ds = net.multicast(SimTime::ZERO, NodeAddr(0), g, 100, 0u32);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.to != NodeAddr(0)));
    }

    #[test]
    fn unicast_to_n_uses_n_times_the_wire_of_multicast() {
        let n = 50;
        let payload = 100_000u64;
        let mut uni = lossless(n + 1);
        for i in 1..=n {
            uni.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(i), payload, 0u32);
        }
        let mut mc = lossless(n + 1);
        let g = GroupId(0);
        for i in 1..=n {
            mc.join(g, NodeAddr(i));
        }
        mc.multicast(SimTime::ZERO, NodeAddr(0), g, payload, 0u32);
        let wire_uni = uni.segment(SegmentId(0)).wire_bytes();
        let wire_mc = mc.segment(SegmentId(0)).wire_bytes();
        assert_eq!(wire_uni, wire_mc * n as u64);
    }

    #[test]
    fn loss_is_deterministic_per_seed_and_roughly_calibrated() {
        let run = |seed| {
            let mut net: Network<u32> = Network::single_segment(seed, 2, FAST_ETHERNET_BPS, 0.3);
            let mut delivered = 0;
            for _ in 0..1000 {
                delivered += net
                    .unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 100, 0u32)
                    .len();
            }
            (delivered, net.stats())
        };
        let (d1, s1) = run(42);
        let (d2, _) = run(42);
        assert_eq!(d1, d2, "same seed must reproduce");
        assert!(
            (600..=800).contains(&d1),
            "expected ~70% delivery, got {d1}"
        );
        assert_eq!(s1.delivered + s1.lost, s1.sent);
    }

    #[test]
    fn cross_segment_route_traverses_backbone() {
        let mut net: Network<u32> = Network::new(9);
        let a = net.add_segment(FAST_ETHERNET_BPS, SimDuration::from_micros(50), 0.0);
        let bb = net.add_segment(GIGABIT_BPS, SimDuration::from_micros(10), 0.0);
        let b = net.add_segment(FAST_ETHERNET_BPS, SimDuration::from_micros(50), 0.0);
        net.set_backbone(bb);
        net.attach(NodeAddr(1), a);
        net.attach(NodeAddr(2), b);
        let d = net.unicast(SimTime::ZERO, NodeAddr(1), NodeAddr(2), 1000, 0u32);
        assert_eq!(d.len(), 1);
        assert_eq!(net.segment(a).packets(), 1);
        assert_eq!(net.segment(bb).packets(), 1);
        assert_eq!(net.segment(b).packets(), 1);
        // three hops: slower than a same-segment send
        let mut net2 = lossless(2);
        let d2 = net2.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 1000, 0u32);
        assert!(d[0].at > d2[0].at);
    }

    #[test]
    fn detached_nodes_cannot_send_or_receive() {
        let mut net = lossless(1);
        assert!(net
            .unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(99), 10, 0u32)
            .is_empty());
        assert!(net
            .unicast(SimTime::ZERO, NodeAddr(99), NodeAddr(0), 10, 0u32)
            .is_empty());
    }

    #[test]
    fn empty_group_multicast_is_noop() {
        let mut net = lossless(2);
        assert!(net
            .multicast(SimTime::ZERO, NodeAddr(0), GroupId(5), 10, 0u32)
            .is_empty());
        assert_eq!(net.stats().sent, 0);
    }

    #[test]
    fn partition_drops_and_heal_restores() {
        let mut net = lossless(3);
        let g = GroupId(0);
        net.join(g, NodeAddr(1));
        net.join(g, NodeAddr(2));
        net.partition(SegmentId(0));
        assert!(net.segment(SegmentId(0)).is_partitioned());
        assert!(net
            .unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 100, 0u32)
            .is_empty());
        assert!(net
            .multicast(SimTime::ZERO, NodeAddr(0), g, 100, 0u32)
            .is_empty());
        // partitioned traffic never occupied the wire
        assert_eq!(net.segment(SegmentId(0)).packets(), 0);
        let s = net.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.lost, 3, "1 unicast + 2 multicast receivers lost");
        net.heal(SegmentId(0));
        assert_eq!(
            net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 100, 0u32)
                .len(),
            1
        );
        assert_eq!(
            net.multicast(SimTime::ZERO, NodeAddr(0), g, 100, 0u32)
                .len(),
            2
        );
    }

    #[test]
    fn partitioned_leaf_segment_loses_only_its_receivers() {
        let mut net: Network<u32> = Network::new(11);
        let a = net.add_segment(FAST_ETHERNET_BPS, SimDuration::from_micros(50), 0.0);
        let b = net.add_segment(FAST_ETHERNET_BPS, SimDuration::from_micros(50), 0.0);
        net.attach(NodeAddr(0), a);
        net.attach(NodeAddr(1), a);
        net.attach(NodeAddr(2), b);
        let g = GroupId(0);
        net.join(g, NodeAddr(1));
        net.join(g, NodeAddr(2));
        net.partition(b);
        let ds = net.multicast(SimTime::ZERO, NodeAddr(0), g, 100, 0u32);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to, NodeAddr(1));
        assert!(net
            .unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(2), 100, 0u32)
            .is_empty());
    }

    #[test]
    fn runtime_loss_and_bandwidth_mutation_take_effect() {
        let mut net = lossless(2);
        net.set_loss(SegmentId(0), 1.0);
        assert!(net
            .unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 100, 0u32)
            .is_empty());
        net.set_loss(SegmentId(0), 0.0);
        let before = net.unicast(SimTime::ZERO, NodeAddr(0), NodeAddr(1), 100_000, 0u32);
        net.set_bandwidth(SegmentId(0), FAST_ETHERNET_BPS / 10);
        let t0 = net.segment(SegmentId(0)).busy_until;
        let after = net.unicast(t0, NodeAddr(0), NodeAddr(1), 100_000, 0u32);
        let fast = before[0].at - SimTime::ZERO;
        let slow = after[0].at - t0;
        assert!(slow > fast * 9, "tenth the bandwidth, ~10x the tx time");
    }

    #[test]
    fn leave_removes_member() {
        let mut net = lossless(3);
        let g = GroupId(0);
        net.join(g, NodeAddr(1));
        net.join(g, NodeAddr(2));
        net.leave(g, NodeAddr(1));
        let ds = net.multicast(SimTime::ZERO, NodeAddr(0), g, 10, 0u32);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to, NodeAddr(2));
    }
}
