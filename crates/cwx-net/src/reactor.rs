//! A thin readiness reactor: level-triggered I/O multiplexing over
//! `epoll` (Linux) or `poll(2)` (other Unixes), with no dependency
//! beyond the libc the platform already links.
//!
//! This is the substrate for connection-dense servers in this
//! workspace: the realtime ingest plane (`clusterworx::ingest`) and the
//! federation head's TCP runtime (`cwx_fed::net`) both drive tens of
//! thousands of sockets from one thread through a [`Poller`]. The API
//! is deliberately the `mio` shape — register a raw fd with a
//! [`Token`] and an [`Interest`], then [`Poller::poll`] returns the
//! [`Event`]s that are ready — so the real crate could be swapped in
//! without touching the callers.
//!
//! Cross-thread wakeups go through a [`Waker`], a loopback UDP socket
//! registered like any other fd: flush workers nudge the reactor when
//! a backpressured queue drains, and shutdown paths interrupt a
//! sleeping `poll`.

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered fd; `poll` hands
/// it back in every [`Event`] for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither: the fd stays registered but produces no events (a
    /// paused connection under backpressure).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// Readable now.
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup: the connection should be read to EOF and
    /// closed.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::fd::{FromRawFd, OwnedFd};

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// `epoll`-backed poller.
    pub struct Poller {
        ep: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Poller {
        /// Create the epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; a negative return is an error.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                // SAFETY: fd is a freshly created, owned epoll fd.
                ep: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token.0 as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// Start watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stop watching `fd` (closing the fd also deregisters it).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Token(0), Interest::NONE)
        }

        /// Wait for readiness, appending to `out`. `None` blocks
        /// indefinitely.
        pub fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let ms = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                // SAFETY: buf is a live, correctly-sized event array.
                let n = unsafe {
                    epoll_wait(
                        self.ep.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: Token(ev.data as usize),
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // saturated: grow so a dense fleet drains in one call
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::collections::BTreeMap;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed fallback poller for non-Linux Unixes.
    pub struct Poller {
        registered: BTreeMap<RawFd, (Token, Interest)>,
        buf: Vec<PollFd>,
    }

    impl Poller {
        /// Create the poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: BTreeMap::new(),
                buf: Vec::new(),
            })
        }

        /// Start watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        /// Stop watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        /// Wait for readiness, appending to `out`.
        pub fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            self.buf.clear();
            for (&fd, &(_, interest)) in &self.registered {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let ms = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            // SAFETY: buf is a live, correctly-sized pollfd array.
            let n = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as u64, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for pfd in &self.buf {
                if pfd.revents == 0 {
                    continue;
                }
                if let Some(&(token, _)) = self.registered.get(&pfd.fd) {
                    out.push(Event {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        closed: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// Cross-thread wakeup for a [`Poller`]: a nonblocking loopback UDP
/// socket connected to itself. Register [`Waker::as_raw_fd`] readable
/// under a reserved token; any thread holding a clone can interrupt
/// `poll` with [`Waker::wake`].
#[derive(Clone)]
pub struct Waker {
    sock: Arc<UdpSocket>,
}

impl Waker {
    /// Create the waker socket.
    pub fn new() -> io::Result<Waker> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.connect(sock.local_addr()?)?;
        sock.set_nonblocking(true)?;
        Ok(Waker {
            sock: Arc::new(sock),
        })
    }

    /// The fd to register with the poller.
    pub fn as_raw_fd(&self) -> RawFd {
        self.sock.as_raw_fd()
    }

    /// Nudge the poller. A full socket buffer means a wakeup is already
    /// pending, so `WouldBlock` is success.
    pub fn wake(&self) {
        let _ = self.sock.send(&[1]);
    }

    /// Drain pending wakeups after the poller reports this fd readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.sock.recv(&mut buf).is_ok() {}
    }
}

/// Raise this process's open-file soft limit to its hard limit
/// (connection-dense servers outgrow the common 1024 default fast).
/// Returns `(soft, hard)` after the attempt; on non-Linux the limits
/// are reported unchanged.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    #[cfg(target_os = "linux")]
    {
        const RLIMIT_NOFILE: i32 = 7;
        #[repr(C)]
        struct Rlimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
        }
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: lim is a live out-parameter of the correct layout.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur < lim.max {
            let want = Rlimit {
                cur: lim.max,
                max: lim.max,
            };
            // SAFETY: want is a live in-parameter of the correct layout.
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
                lim.cur = lim.max;
            }
        }
        Ok((lim.cur, lim.max))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok((u64::MAX, u64::MAX))
    }
}

/// Widen an already-listening socket's accept backlog. `std`'s
/// `TcpListener::bind` hardcodes 128; a simultaneous connect storm from
/// thousands of agents (cluster-wide power-on, head failover) overflows
/// that, and the dropped SYNs turn into whole-second retransmit stalls.
/// On Linux a second `listen(2)` call updates the backlog in place; on
/// other platforms this is a no-op.
pub fn widen_listen_backlog(listener: &std::net::TcpListener, backlog: i32) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        extern "C" {
            fn listen(fd: RawFd, backlog: i32) -> i32;
        }
        // SAFETY: the fd is a live listening socket owned by `listener`
        // for the duration of the call.
        if unsafe { listen(listener.as_raw_fd(), backlog) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (listener, backlog);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");

        client.write_all(b"hi").unwrap();
        events.clear();
        poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
    }

    #[test]
    fn reregister_to_none_silences_a_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(!events.is_empty());

        // pause: data still pending, but no more events
        poller
            .reregister(server.as_raw_fd(), Token(1), Interest::NONE)
            .unwrap();
        events.clear();
        poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "paused fd must stay silent");

        // resume: the level-triggered readiness comes right back
        poller
            .reregister(server.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        events.clear();
        poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        let mut b = [0u8; 1];
        (&server).read_exact(&mut b).unwrap();
    }

    #[test]
    fn waker_interrupts_poll_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.as_raw_fd(), Token(0), Interest::READABLE)
            .unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
        });
        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(0));
        waker.drain();
        // drained: next poll times out quietly
        events.clear();
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported_as_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed || events[0].readable);
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let (soft, hard) = raise_nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
    }
}
