//! Property tests on allocation invariants: whatever the trace, the
//! controller must never double-book a node, leak an allocation, or
//! lose a job.

use std::collections::BTreeMap;

use cwx_util::rng::rng;
use proptest::prelude::*;
use slurm_lite::controller::NodeAllocState;
use slurm_lite::trace::{generate, TraceConfig};
use slurm_lite::{Controller, JobState, SchedulerKind};

/// Check structural invariants at one instant.
fn check_invariants(c: &Controller, n_nodes: u32) {
    // 1. exclusive allocations are consistent both ways
    let mut node_owner: BTreeMap<u32, slurm_lite::JobId> = BTreeMap::new();
    for (i, st) in c.nodes().iter().enumerate() {
        if let NodeAllocState::Allocated(id) = st {
            node_owner.insert(i as u32, *id);
        }
    }
    for job in c.jobs() {
        match job.state {
            JobState::Running => {
                assert_eq!(
                    job.allocation.len() as u32,
                    job.request.nodes,
                    "running job holds exactly what it asked for"
                );
                if job.request.exclusive {
                    for n in &job.allocation {
                        assert_eq!(
                            node_owner.get(n),
                            Some(&job.id),
                            "exclusive node {n} must map back to {:?}",
                            job.id
                        );
                    }
                } else {
                    for n in &job.allocation {
                        assert!(
                            c.shared_jobs(*n).contains(&job.id),
                            "shared slot must list the job"
                        );
                        assert!(
                            !matches!(c.nodes()[*n as usize], NodeAllocState::Allocated(_)),
                            "shared job on an exclusively-held node"
                        );
                    }
                }
            }
            _ => assert!(job.allocation.is_empty(), "non-running jobs hold nothing"),
        }
    }
    // 2. every exclusively-held node's owner is running
    for (n, id) in &node_owner {
        let job = c.job(*id).expect("owner exists");
        assert_eq!(
            job.state,
            JobState::Running,
            "node {n} held by non-running job"
        );
    }
    // 3. shared slot lists only running jobs, within capacity
    for n in 0..n_nodes {
        for id in c.shared_jobs(n) {
            assert_eq!(c.job(*id).unwrap().state, JobState::Running);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_traces_never_violate_allocation_invariants(
        seed in any::<u64>(),
        n_nodes in 4u32..48,
        jobs in 10usize..80,
        backfill in any::<bool>(),
    ) {
        let cfg = TraceConfig {
            cluster_nodes: n_nodes,
            mean_interarrival_secs: 60.0,
            ..TraceConfig::default()
        };
        let trace = generate(&mut rng(seed), &cfg, jobs);
        let kind = if backfill { SchedulerKind::Backfill } else { SchedulerKind::Fifo };
        let mut c = Controller::new(n_nodes, kind);
        let mut i = 0;
        // interleave submissions and completions, checking at each step
        loop {
            let next_submit = trace.get(i).map(|j| j.submit);
            let next_done = c.next_completion();
            let now = match (next_submit, next_done) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            while i < trace.len() && trace[i].submit <= now {
                let _ = c.submit(now, trace[i].request.clone());
                i += 1;
            }
            c.advance(now);
            check_invariants(&c, n_nodes);
        }
        // drained: everything terminal, all nodes free
        prop_assert!(c.jobs().all(|j| j.state.is_terminal()));
        prop_assert!(c.nodes().iter().all(|n| *n == NodeAllocState::Idle));
        let s = c.stats();
        prop_assert_eq!(s.completed + s.timed_out + s.cancelled + s.node_failed, s.submitted);
    }

    #[test]
    fn random_node_failures_never_strand_jobs(
        seed in any::<u64>(),
        failures in proptest::collection::vec((0u32..16, 1u64..5000), 1..10),
    ) {
        let cfg = TraceConfig { cluster_nodes: 16, ..TraceConfig::default() };
        let trace = generate(&mut rng(seed), &cfg, 30);
        let mut c = Controller::new(16, SchedulerKind::Backfill);
        let mut i = 0;
        let mut fail_iter = failures.iter();
        let mut next_fail = fail_iter.next();
        loop {
            let next_submit = trace.get(i).map(|j| j.submit);
            let next_done = c.next_completion();
            let now = match (next_submit, next_done) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if let Some(&(node, at_secs)) = next_fail {
                let at = cwx_util::time::SimTime::ZERO
                    + cwx_util::time::SimDuration::from_secs(at_secs);
                if at <= now {
                    c.node_fail(at, node);
                    c.node_resume(node); // technician swaps it straight away
                    next_fail = fail_iter.next();
                    c.advance(now);
                    check_invariants(&c, 16);
                    continue;
                }
            }
            while i < trace.len() && trace[i].submit <= now {
                let _ = c.submit(now, trace[i].request.clone());
                i += 1;
            }
            c.advance(now);
            check_invariants(&c, 16);
        }
        prop_assert!(c.jobs().all(|j| j.state.is_terminal()), "no job left behind");
    }
}
