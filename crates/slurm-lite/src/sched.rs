//! Scheduling policies and the external-scheduler hook.

use cwx_util::time::SimTime;

use crate::job::Job;

/// Built-in scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Strict first-in-first-out: the head of the queue blocks everyone
    /// behind it.
    Fifo,
    /// EASY backfill: later jobs may start immediately if they cannot
    /// delay the head job's reservation.
    Backfill,
}

/// The external-scheduler integration point ("an API for integration
/// with external schedulers such as The Maui Scheduler"): a priority
/// function over pending jobs. Higher runs earlier; ties break by
/// submission order. A plain `fn` pointer so controller state stays
/// `Clone` for failover replication.
pub type PriorityFn = fn(&Job, SimTime) -> i64;

/// The default priority: pure FIFO (everything ties, submit order
/// decides).
pub fn fifo_priority(_job: &Job, _now: SimTime) -> i64 {
    0
}

/// A Maui-flavoured example policy: favour short and small jobs, age
/// waiting jobs upward so nothing starves.
pub fn maui_like_priority(job: &Job, now: SimTime) -> i64 {
    let wait_secs = now.since(job.submitted).as_secs_f64();
    let size_penalty = (job.request.nodes as i64) * 10;
    let length_penalty = (job.request.time_limit.as_secs_f64() / 60.0) as i64;
    (wait_secs / 30.0) as i64 * 25 - size_penalty - length_penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobRequest, JobState};
    use cwx_util::time::SimDuration;

    fn job(nodes: u32, limit: u64, submitted_s: u64) -> Job {
        Job {
            id: JobId(1),
            request: JobRequest::batch("u", nodes, limit, limit),
            state: JobState::Pending,
            submitted: SimTime::ZERO + SimDuration::from_secs(submitted_s),
            started: None,
            ended: None,
            allocation: vec![],
            backfilled: false,
        }
    }

    #[test]
    fn fifo_priority_is_flat() {
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(
            fifo_priority(&job(1, 60, 0), now),
            fifo_priority(&job(64, 86_400, 99), now)
        );
    }

    #[test]
    fn maui_like_prefers_small_short_jobs() {
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        let small = maui_like_priority(&job(1, 600, 50), now);
        let big = maui_like_priority(&job(32, 86_400, 50), now);
        assert!(small > big);
    }

    #[test]
    fn maui_like_ages_waiting_jobs() {
        let now = SimTime::ZERO + SimDuration::from_secs(7200);
        let old = maui_like_priority(&job(32, 3600, 0), now);
        let new = maui_like_priority(&job(32, 3600, 7100), now);
        assert!(old > new, "aged job must outrank a fresh identical one");
    }
}
