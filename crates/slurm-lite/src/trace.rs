//! Synthetic job-trace generation for the scheduling experiments.
//!
//! A Poisson arrival process with log-uniform-ish runtimes and a mix of
//! small and wide jobs — the shape of early-2000s HPC workloads (lots of
//! small short jobs, a tail of wide long ones).

use cwx_util::rng::{chance, exponential};
use cwx_util::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::job::JobRequest;

/// Trace generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Mean job inter-arrival time, seconds.
    pub mean_interarrival_secs: f64,
    /// Cluster size (bounds job widths).
    pub cluster_nodes: u32,
    /// Fraction of jobs that are "wide" (up to half the cluster).
    pub wide_fraction: f64,
    /// Minimum runtime, seconds.
    pub min_runtime_secs: f64,
    /// Maximum runtime, seconds.
    pub max_runtime_secs: f64,
    /// Fraction of jobs that underestimate their limit (and time out).
    pub underestimate_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mean_interarrival_secs: 120.0,
            cluster_nodes: 64,
            wide_fraction: 0.15,
            min_runtime_secs: 60.0,
            max_runtime_secs: 14_400.0,
            underestimate_fraction: 0.05,
        }
    }
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJob {
    /// Submission time.
    pub submit: SimTime,
    /// The request.
    pub request: JobRequest,
}

/// Generate `n` jobs.
pub fn generate(rng: &mut StdRng, cfg: &TraceConfig, n: usize) -> Vec<TraceJob> {
    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for i in 0..n {
        t += exponential(rng, 1.0 / cfg.mean_interarrival_secs);
        // log-uniform runtime
        let lo = cfg.min_runtime_secs.ln();
        let hi = cfg.max_runtime_secs.ln();
        let runtime = (lo + rng.random::<f64>() * (hi - lo)).exp();
        let nodes = if chance(rng, cfg.wide_fraction) {
            // wide: 25%..50% of the cluster
            let max = (cfg.cluster_nodes / 2).max(1);
            let min = (cfg.cluster_nodes / 4).max(1);
            rng.random_range(min..=max)
        } else {
            // small: 1..8 nodes
            rng.random_range(1..=8u32.min(cfg.cluster_nodes))
        };
        // users typically over-declare their limit 2-3x; a few under
        let limit = if chance(rng, cfg.underestimate_fraction) {
            runtime * 0.7
        } else {
            runtime * (2.0 + rng.random::<f64>())
        };
        out.push(TraceJob {
            submit: SimTime::ZERO + SimDuration::from_secs_f64(t),
            request: JobRequest {
                user: format!("user{:02}", i % 17),
                partition: String::new(),
                nodes,
                time_limit: SimDuration::from_secs_f64(limit),
                actual_runtime: SimDuration::from_secs_f64(runtime),
                exclusive: true,
            },
        });
    }
    out
}

/// Run a trace to completion on a controller; returns the makespan.
pub fn run_trace(controller: &mut crate::Controller, trace: &[TraceJob]) -> SimTime {
    let mut now = SimTime::ZERO;
    let mut i = 0;
    loop {
        // next interesting instant: next submission or next completion
        let next_submit = trace.get(i).map(|j| j.submit);
        let next_done = controller.next_completion();
        let next = match (next_submit, next_done) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        now = next;
        while i < trace.len() && trace[i].submit <= now {
            let _ = controller.submit(now, trace[i].request.clone());
            i += 1;
        }
        controller.advance(now);
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Controller, JobState, SchedulerKind};
    use cwx_util::rng::rng;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let cfg = TraceConfig::default();
        let a = generate(&mut rng(5), &cfg, 50);
        let b = generate(&mut rng(5), &cfg, 50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert!(a
            .iter()
            .all(|j| j.request.nodes >= 1 && j.request.nodes <= 32));
    }

    #[test]
    fn run_trace_completes_every_job() {
        let cfg = TraceConfig {
            cluster_nodes: 16,
            mean_interarrival_secs: 60.0,
            ..Default::default()
        };
        let trace = generate(&mut rng(9), &cfg, 100);
        let mut c = Controller::new(16, SchedulerKind::Backfill);
        let makespan = run_trace(&mut c, &trace);
        assert!(makespan > SimTime::ZERO);
        assert!(
            c.jobs().all(|j| j.state.is_terminal()),
            "every job reaches a terminal state"
        );
        let s = c.stats();
        assert_eq!(s.submitted, 100);
        assert_eq!(s.completed + s.timed_out, 100);
    }

    #[test]
    fn backfill_beats_fifo_on_wait_time() {
        let cfg = TraceConfig {
            cluster_nodes: 32,
            mean_interarrival_secs: 30.0,
            ..Default::default()
        };
        let trace = generate(&mut rng(11), &cfg, 200);
        let run = |kind| {
            let mut c = Controller::new(32, kind);
            run_trace(&mut c, &trace);
            let s = c.stats();
            (s.total_wait_secs / s.submitted as f64, s.backfilled)
        };
        let (fifo_wait, fifo_bf) = run(SchedulerKind::Fifo);
        let (bf_wait, bf_bf) = run(SchedulerKind::Backfill);
        assert_eq!(fifo_bf, 0);
        assert!(bf_bf > 0, "backfill must actually backfill");
        assert!(
            bf_wait < fifo_wait,
            "backfill should reduce mean wait: {bf_wait:.0}s vs {fifo_wait:.0}s"
        );
    }

    #[test]
    fn some_jobs_time_out_by_design() {
        let cfg = TraceConfig {
            underestimate_fraction: 0.3,
            ..Default::default()
        };
        let trace = generate(&mut rng(3), &cfg, 100);
        let mut c = Controller::new(64, SchedulerKind::Backfill);
        run_trace(&mut c, &trace);
        assert!(c.stats().timed_out > 0);
        assert!(c.jobs().any(|j| j.state == JobState::TimedOut));
    }
}
